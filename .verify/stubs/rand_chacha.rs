//! Offline typecheck stub for `rand_chacha` (xoshiro-based stand-in with the
//! same trait surface: deterministic, seedable, clonable independent streams).

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    fn next(&mut self) -> u64 {
        // xoshiro256** — plenty uniform for local test runs.
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next().to_le_bytes();
            for (b, src) in chunk.iter_mut().zip(v) {
                *b = src;
            }
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut v = [0u8; 8];
            v.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(v);
        }
        // Avoid the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        ChaCha8Rng { s }
    }
}

pub type ChaCha12Rng = ChaCha8Rng;
pub type ChaCha20Rng = ChaCha8Rng;
