//! Offline typecheck stub for `serde_json`.
//!
//! `Value` is a real (small) JSON document model with a working parser, so
//! binaries that parse config JSON still run locally. Generic serialization
//! of arbitrary `T: Serialize` returns a placeholder (the real crate is used
//! by CI / the driver environment).

use std::collections::BTreeMap;
use std::fmt;

/// Parse/serialize error.
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Error({})", self.0)
    }
}
impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.get(key),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) => write!(f, "{n}"),
            Value::String(s) => write!(f, "{:?}", s),
            Value::Array(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(o) => {
                write!(f, "{{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{:?}:{v}", k)?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Conversion from a parsed `Value` — implemented only for `Value` itself,
/// which is the only `from_str` target type this workspace uses.
pub trait FromJson: Sized {
    fn from_json(v: Value) -> Result<Self>;
}
impl FromJson for Value {
    fn from_json(v: Value) -> Result<Value> {
        Ok(v)
    }
}

pub fn from_str<'a, T: FromJson + serde::Deserialize<'a>>(s: &'a str) -> Result<T> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error("trailing characters".into()));
    }
    T::from_json(v)
}

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok("{}".to_string())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }
    fn eat(&mut self, c: u8) -> Result<()> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at {}", c as char, self.i)))
        }
    }
    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error("expected , or ]".into())),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut map = BTreeMap::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let k = self.string()?;
                    self.skip_ws();
                    self.eat(b':')?;
                    let v = self.value()?;
                    map.insert(k, v);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error("expected , or }".into())),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {:?}", other.map(|c| c as char)))),
        }
    }
    fn lit(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at {}", self.i)))
        }
    }
    fn string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error("bad \\u".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| Error("bad \\u".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(Error("bad escape".into())),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("bad utf8".into()))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
                None => return Err(Error("unterminated string".into())),
            }
        }
    }
    fn number(&mut self) -> Result<Value> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .map(|c| c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
            .unwrap_or(false)
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| Error("bad num".into()))?;
        s.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("bad number {s:?}")))
    }
}
