//! Offline typecheck stub for `serde_derive`.
//!
//! The derive macros expand to nothing; the companion `serde` stub provides
//! blanket implementations of the `Serialize` / `Deserialize` traits, so
//! `#[derive(Serialize, Deserialize)]` on any type still typechecks exactly
//! like the real crate for the API surface this workspace uses.
extern crate proc_macro;
use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
