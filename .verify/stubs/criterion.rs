//! Offline typecheck stub for `criterion` (compile-only; "benchmarks" run
//! each closure once).

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(f(setup()));
    }
}

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Debug, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {}::{:?}", self.name, id);
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench {}::{:?}", self.name, id);
        f(&mut Bencher, input);
        self
    }
    pub fn finish(&mut self) {}
}

pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        eprintln!("bench {id}");
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        eprintln!("bench {id:?}");
        f(&mut Bencher, input);
        self
    }
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
    pub fn sample_size(mut self, _n: usize) -> Self {
        self.noop();
        self
    }
    fn noop(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
