//! Offline typecheck stub for `serde`.
//!
//! `Serialize` / `Deserialize` are blanket-implemented so derived bounds are
//! always satisfied. This is sufficient to typecheck (and run, minus real
//! serialization) the whole workspace without network access.
pub use serde_derive::{Deserialize, Serialize};

/// Blanket-satisfied serialization marker.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Blanket-satisfied deserialization marker.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub use super::Deserialize;
    /// Blanket-satisfied owned-deserialization marker.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use super::Serialize;
}
