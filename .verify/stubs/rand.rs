//! Offline typecheck stub for `rand` 0.8 (API subset used by this workspace).

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// RNG error (never produced by the stub implementations).
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}
impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand::Error")
    }
}
impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        // SplitMix64 expansion, like the real rand crate.
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            for (b, src) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = src;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types samplable "from the standard distribution" (`Rng::gen`).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}
impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Types samplable uniformly from a range (`Rng::gen_range`).
pub trait UniformSample: PartialOrd + Copy {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = if inclusive { hi_w - lo_w + 1 } else { hi_w - lo_w };
                assert!(span > 0, "empty range in gen_range");
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                (lo_w + draw) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + frac * (hi - lo)
    }
}
impl UniformSample for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        let frac = (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32;
        lo + frac * (hi - lo)
    }
}

/// Ranges acceptable to `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}
impl<T: UniformSample> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let x: f64 = self.gen();
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    pub use super::*;
}

pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}
