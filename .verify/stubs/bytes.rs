//! Offline typecheck stub for `bytes` (functional subset: big-endian framed
//! reads/writes, cheap clones via `Arc`).

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// Immutable shared byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
    pub fn len(&self) -> usize {
        self.end - self.start
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = self.slice(0..at);
        self.start += at;
        head
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.len())
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }
    pub fn len(&self) -> usize {
        self.data.len()
    }
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.data.extend_from_slice(other);
    }
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}
impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}
impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential big-endian reads.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt;
    }
}

/// Sequential big-endian writes.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
