//! Offline typecheck stub for `proptest`.
//!
//! Implements a miniature but *working* property-testing engine covering the
//! API subset this workspace uses: range / tuple / `Just` / `any` strategies,
//! `prop_map` / `prop_flat_map`, `proptest::collection::{vec, btree_set}`,
//! `prop::sample::Index`, `prop::bool::ANY`, weighted `prop_oneof!`, and the
//! `proptest! { #[test] fn f(x in strat) { .. } }` macro with
//! `#![proptest_config(...)]`. No shrinking; failures report the case number.

pub mod test_runner {
    /// Deterministic RNG for test-case generation (SplitMix64).
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
        pub fn usize_in(&mut self, lo: usize, hi_excl: usize) -> usize {
            assert!(hi_excl > lo);
            lo + (self.next_u64() as usize) % (hi_excl - lo)
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    /// Runner configuration (`#![proptest_config(..)]`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, dynamically-dispatched strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Boxing helper used by `prop_oneof!`.
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }
    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }
    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        f: F,
    }
    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive candidates");
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);
    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(hi > lo, "empty range strategy");
                    let span = (hi - lo) as u128;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo + draw as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(hi >= lo, "empty range strategy");
                    let span = (hi - lo) as u128 + 1;
                    let draw = (rng.next_u64() as u128) % span;
                    (lo + draw as i128) as $t
                }
            }
        )*};
    }
    impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let frac = rng.next_f64() as $t;
                    self.start + frac * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let frac = rng.next_f64() as $t;
                    self.start() + frac * (self.end() - self.start())
                }
            }
        )*};
    }
    impl_float_range!(f32, f64);

    /// String strategies from regex literals (`"[a-z]{1,12}"`). The stub
    /// ignores the pattern and produces short lowercase identifiers, which is
    /// representative enough for local smoke runs.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let len = 1 + (rng.next_u64() % 12) as usize;
            (0..len)
                .map(|_| (b'a' + (rng.next_u64() % 26) as u8) as char)
                .collect()
        }
    }

    macro_rules! impl_tuple {
        ($(($($s:ident/$idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple! {
        (A/0)
        (A/0, B/1)
        (A/0, B/1, C/2)
        (A/0, B/1, C/2, D/3)
        (A/0, B/1, C/2, D/3, E/4)
        (A/0, B/1, C/2, D/3, E/4, F/5)
    }

    /// Weighted union, the expansion target of `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }
    impl<V> Union<V> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            assert!(!arms.is_empty());
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            Union { arms, total }
        }
    }
    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut draw = rng.next_u64() % self.total;
            for (w, s) in &self.arms {
                if draw < *w as u64 {
                    return s.generate(rng);
                }
                draw -= *w as u64;
            }
            self.arms.last().unwrap().1.generate(rng)
        }
    }

    /// `any::<T>()` support.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_f64() * 2e6 - 1e6
        }
    }
    impl Arbitrary for super::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            super::sample::Index(rng.next_u64())
        }
    }

    pub struct Any<T>(PhantomData<T>);
    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;

    /// Size specifications accepted by `vec` / `btree_set`.
    pub trait SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }
    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }
    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(self.start, self.end)
        }
    }
    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.usize_in(*self.start(), *self.end() + 1)
        }
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }
    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }
    impl<S: Strategy, R: SizeRange> Strategy for BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..n * 4 {
                if out.len() >= n {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    pub fn btree_set<S: Strategy, R: SizeRange>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

pub mod sample {
    /// An abstract index into a collection of as-yet-unknown size.
    #[derive(Clone, Copy, Debug)]
    pub struct Index(pub(crate) u64);

    impl Index {
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "Index::index on empty collection");
            (self.0 % size as u64) as usize
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;
    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    /// Uniform true/false.
    pub const ANY: BoolAny = BoolAny;
}

pub mod num {
    pub use super::strategy::Strategy;
}

pub mod prelude {
    pub use super::collection;
    pub use super::sample;
    pub use super::strategy::{any, boxed, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use super::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::sample::Index`, `prop::bool::ANY`, …).
    pub mod prop {
        pub use super::super::bool;
        pub use super::super::collection;
        pub use super::super::num;
        pub use super::super::sample;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::Fail(format!(
                        "assertion failed: {} == {} ({:?} vs {:?})",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return Err($crate::test_runner::TestCaseError::Fail(format!(
                        "assertion failed: {} != {}",
                        stringify!($left),
                        stringify!($right)
                    )));
                }
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cases = ($cfg).cases; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cases = 64u32; $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    (cases = $cases:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases: u32 = $cases;
                let mut seed = 0xC0FF_EE00u64;
                for b in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(b as u64);
                }
                let mut rng = $crate::test_runner::TestRng::new(seed);
                for case in 0..cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(
                                let $pat =
                                    $crate::strategy::Strategy::generate(&($strat), &mut rng);
                            )*
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                        }
                    }
                }
            }
        )*
    };
}
