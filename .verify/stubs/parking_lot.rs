//! Offline typecheck stub for `parking_lot` (std-backed, panic on poison).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap()
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap()
    }
}

#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap()
    }
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap()
    }
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap()
    }
}
