#!/usr/bin/env bash
# Offline verification harness.
#
# The container has no network access and no vendored cargo registry, so
# `cargo build` cannot resolve crates.io dependencies locally. This script
# compiles the whole workspace with plain `rustc` against the API-compatible
# stub crates in .verify/stubs/, in dependency order, and runs every unit,
# proptest and integration test binary. CI / the driver environment (with
# network) still uses the real crates via `cargo build --release && cargo
# test -q`; this harness exists so sessions in the offline container can
# typecheck and smoke-run their changes.
#
# Usage:
#   .verify/check.sh           # build everything + run all tests
#   .verify/check.sh build     # build everything only
#   .verify/check.sh quiet     # build + tests, print only failures
set -u
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
OUT="$ROOT/.verify/out"
STUBS="$ROOT/.verify/stubs"
MODE="${1:-all}"
mkdir -p "$OUT"

# `-D deprecated` mirrors CI's RUSTFLAGS: internal code must not call the
# deprecated pre-builder `run_*_with` shims or the old `Scenario` alias.
RUSTC="rustc --edition 2021 -O -C debuginfo=0 -D deprecated -L $OUT"
FAILED=0

note() { echo "== $*"; }
die_soft() { echo "FAILED: $*" >&2; FAILED=1; }

compile() {
  # compile <what> <args...>
  local what="$1"; shift
  if ! $RUSTC "$@" 2> "$OUT/last_err.txt"; then
    echo "---- rustc errors for $what ----" >&2
    cat "$OUT/last_err.txt" >&2
    die_soft "compile $what"
    return 1
  fi
  # Surface warnings (but not the noisy ones from stub mismatch).
  if [ -s "$OUT/last_err.txt" ]; then
    grep -E "^warning" -A4 "$OUT/last_err.txt" | head -40 || true
  fi
  return 0
}

run_test() {
  # run_test <name> <binary>
  local name="$1" bin="$2"
  if [ "$MODE" = build ]; then return 0; fi
  local log="$OUT/run_$name.log"
  # Tests that genuinely need the real serde/serde_json (the stubs do not
  # serialize arbitrary types); they run in CI with the real crates.
  local skips=""
  case "$name" in
    unit_harness) skips="--skip report::tests::json_shape" ;;
  esac
  # shellcheck disable=SC2086
  if ! "$bin" --test-threads=4 $skips > "$log" 2>&1; then
    echo "---- test failures in $name ----" >&2
    tail -40 "$log" >&2
    die_soft "tests $name"
    return 1
  fi
  if [ "$MODE" != quiet ]; then
    tail -1 "$log"
  fi
  return 0
}

# ---------------------------------------------------------------- stubs ----
note "stubs"
compile serde_derive --crate-type proc-macro --crate-name serde_derive \
  "$STUBS/serde_derive.rs" --out-dir "$OUT" || exit 1
compile serde --crate-type lib --crate-name serde "$STUBS/serde.rs" \
  --extern serde_derive="$OUT/libserde_derive.so" --out-dir "$OUT" || exit 1
compile serde_json --crate-type lib --crate-name serde_json "$STUBS/serde_json.rs" \
  --extern serde="$OUT/libserde.rlib" --out-dir "$OUT" || exit 1
compile rand --crate-type lib --crate-name rand "$STUBS/rand.rs" --out-dir "$OUT" || exit 1
compile rand_chacha --crate-type lib --crate-name rand_chacha "$STUBS/rand_chacha.rs" \
  --extern rand="$OUT/librand.rlib" --out-dir "$OUT" || exit 1
compile bytes --crate-type lib --crate-name bytes "$STUBS/bytes.rs" --out-dir "$OUT" || exit 1
compile parking_lot --crate-type lib --crate-name parking_lot "$STUBS/parking_lot.rs" --out-dir "$OUT" || exit 1
compile proptest --crate-type lib --crate-name proptest "$STUBS/proptest.rs" --out-dir "$OUT" || exit 1
compile criterion --crate-type lib --crate-name criterion "$STUBS/criterion.rs" --out-dir "$OUT" || exit 1

E_SERDE="--extern serde=$OUT/libserde.rlib"
E_JSON="--extern serde_json=$OUT/libserde_json.rlib"
E_RAND="--extern rand=$OUT/librand.rlib"
E_CHACHA="--extern rand_chacha=$OUT/librand_chacha.rlib"
E_BYTES="--extern bytes=$OUT/libbytes.rlib"
E_PLOT="--extern parking_lot=$OUT/libparking_lot.rlib"
E_PROP="--extern proptest=$OUT/libproptest.rlib"
E_CRIT="--extern criterion=$OUT/libcriterion.rlib"

# ------------------------------------------------------- workspace libs ----
# name:path:externs, in dependency order.
lib_externs() {
  case "$1" in
    parallel)    echo "" ;;
    sim)         echo "$E_RAND $E_CHACHA $E_SERDE" ;;
    telemetry)   echo "--extern gemini_sim=$OUT/libgemini_sim.rlib $E_SERDE" ;;
    net)         echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib $E_SERDE" ;;
    cluster)     echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib --extern gemini_net=$OUT/libgemini_net.rlib $E_RAND $E_SERDE" ;;
    collectives) echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_net=$OUT/libgemini_net.rlib $E_SERDE" ;;
    training)    echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_net=$OUT/libgemini_net.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_collectives=$OUT/libgemini_collectives.rlib $E_RAND $E_SERDE" ;;
    kvstore)     echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib $E_PLOT $E_SERDE" ;;
    core)        echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_parallel=$OUT/libgemini_parallel.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib --extern gemini_net=$OUT/libgemini_net.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_training=$OUT/libgemini_training.rlib --extern gemini_kvstore=$OUT/libgemini_kvstore.rlib $E_RAND $E_BYTES $E_SERDE $E_JSON" ;;
    baselines)   echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_net=$OUT/libgemini_net.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_training=$OUT/libgemini_training.rlib --extern gemini_core=$OUT/libgemini_core.rlib $E_SERDE" ;;
    harness)     echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_parallel=$OUT/libgemini_parallel.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib --extern gemini_net=$OUT/libgemini_net.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_collectives=$OUT/libgemini_collectives.rlib --extern gemini_training=$OUT/libgemini_training.rlib --extern gemini_kvstore=$OUT/libgemini_kvstore.rlib --extern gemini_core=$OUT/libgemini_core.rlib --extern gemini_baselines=$OUT/libgemini_baselines.rlib $E_RAND $E_SERDE $E_JSON" ;;
    service)     echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_parallel=$OUT/libgemini_parallel.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_training=$OUT/libgemini_training.rlib --extern gemini_core=$OUT/libgemini_core.rlib --extern gemini_baselines=$OUT/libgemini_baselines.rlib --extern gemini_harness=$OUT/libgemini_harness.rlib" ;;
    bench)       echo "--extern gemini_sim=$OUT/libgemini_sim.rlib --extern gemini_parallel=$OUT/libgemini_parallel.rlib --extern gemini_telemetry=$OUT/libgemini_telemetry.rlib --extern gemini_net=$OUT/libgemini_net.rlib --extern gemini_cluster=$OUT/libgemini_cluster.rlib --extern gemini_training=$OUT/libgemini_training.rlib --extern gemini_core=$OUT/libgemini_core.rlib --extern gemini_baselines=$OUT/libgemini_baselines.rlib --extern gemini_harness=$OUT/libgemini_harness.rlib --extern gemini_service=$OUT/libgemini_service.rlib $E_JSON" ;;
  esac
}

CRATES="parallel sim telemetry net cluster collectives training kvstore core baselines harness service bench"

for c in $CRATES; do
  src="$ROOT/crates/$c/src/lib.rs"
  [ -f "$src" ] || continue
  note "lib gemini-$c"
  # shellcheck disable=SC2046
  compile "gemini-$c (lib)" --crate-type lib --crate-name "gemini_$c" "$src" \
    $(lib_externs "$c") --out-dir "$OUT" || continue
done

# ------------------------------------------------------------ unit tests ----
for c in $CRATES; do
  src="$ROOT/crates/$c/src/lib.rs"
  [ -f "$src" ] || continue
  note "unit tests gemini-$c"
  # shellcheck disable=SC2046
  if compile "gemini-$c (unit tests)" --test --crate-name "gemini_$c" "$src" \
    $(lib_externs "$c") $E_PROP -o "$OUT/unit_$c"; then
    run_test "unit_$c" "$OUT/unit_$c"
  fi
done

ALL_GEMINI=""
for c in $CRATES; do
  [ -f "$OUT/libgemini_$c.rlib" ] && ALL_GEMINI="$ALL_GEMINI --extern gemini_$c=$OUT/libgemini_$c.rlib"
done
ALL_STUBS="$E_SERDE $E_JSON $E_RAND $E_CHACHA $E_BYTES $E_PLOT $E_PROP"

# -------------------------------------------------------- crate proptests ----
for c in $CRATES; do
  for t in "$ROOT/crates/$c"/tests/*.rs; do
    [ -f "$t" ] || continue
    name="$(basename "$t" .rs)"
    note "proptests gemini-$c/$name"
    # shellcheck disable=SC2046
    if compile "gemini-$c/$name" --test --crate-name "${c}_${name}" "$t" \
      $ALL_GEMINI $ALL_STUBS -o "$OUT/it_${c}_${name}"; then
      run_test "it_${c}_${name}" "$OUT/it_${c}_${name}"
    fi
  done
done

# ------------------------------------------------- repo integration tests ----
for t in "$ROOT"/tests/*.rs; do
  [ -f "$t" ] || continue
  name="$(basename "$t" .rs)"
  note "integration $name"
  # shellcheck disable=SC2046
  if compile "tests/$name" --test --crate-name "$name" "$t" \
    $ALL_GEMINI $ALL_STUBS -o "$OUT/int_$name"; then
    run_test "int_$name" "$OUT/int_$name"
  fi
done

# ----------------------------------------------------- examples and bins ----
for e in "$ROOT"/examples/*.rs; do
  [ -f "$e" ] || continue
  name="$(basename "$e" .rs)"
  note "example $name (compile only)"
  # shellcheck disable=SC2046
  compile "examples/$name" --crate-type bin --crate-name "ex_$name" "$e" \
    $ALL_GEMINI $ALL_STUBS -o "$OUT/ex_$name" || true
done

for b in "$ROOT"/crates/bench/src/bin/*.rs; do
  [ -f "$b" ] || continue
  name="$(basename "$b" .rs)"
  note "bin $name (compile only)"
  # shellcheck disable=SC2046
  compile "bin/$name" --crate-type bin --crate-name "$name" "$b" \
    $ALL_GEMINI $ALL_STUBS -o "$OUT/bin_$name" || true
done

for b in "$ROOT"/crates/bench/benches/*.rs; do
  [ -f "$b" ] || continue
  name="$(basename "$b" .rs)"
  note "bench $name (compile only)"
  # shellcheck disable=SC2046
  compile "benches/$name" --crate-type bin --crate-name "bench_$name" "$b" \
    $ALL_GEMINI $ALL_STUBS $E_CRIT -o "$OUT/bench_$name" || true
done

# ------------------------------------------- parallel determinism smoke ----
# The figures bin must produce byte-identical output at --jobs 1 and
# --jobs 2 (the deterministic-parallelism contract, docs/PERFORMANCE.md).
if [ -x "$OUT/bin_figures" ]; then
  note "parallel determinism smoke (figures --jobs 1 vs --jobs 2)"
  if "$OUT/bin_figures" --fast --jobs 1 > "$OUT/figs_j1.md" 2>/dev/null \
    && "$OUT/bin_figures" --fast --jobs 2 > "$OUT/figs_j2.md" 2>/dev/null \
    && cmp -s "$OUT/figs_j1.md" "$OUT/figs_j2.md"; then
    :
  else
    echo "FAILED: figures --jobs 1 vs --jobs 2 output differs" >&2
    FAILED=1
  fi
fi

# --------------------------------------------------- chaos campaign smoke ----
# The chaos bin must run the whole fault-plan catalog green (it exits
# non-zero on any invariant violation) and produce byte-identical output
# across reruns and --jobs counts. See docs/CHAOS.md.
if [ -x "$OUT/bin_chaos" ] && [ "$MODE" != build ]; then
  note "chaos determinism smoke (catalog, --jobs 2 vs --jobs 1)"
  if "$OUT/bin_chaos" --jobs 2 > "$OUT/chaos_a.txt" 2>/dev/null \
    && "$OUT/bin_chaos" --jobs 1 > "$OUT/chaos_b.txt" 2>/dev/null \
    && cmp -s "$OUT/chaos_a.txt" "$OUT/chaos_b.txt"; then
    :
  else
    echo "FAILED: chaos campaign not green or not jobs-invariant" >&2
    FAILED=1
  fi
fi

# ------------------------------------------------------ DES perf smoke ----
# The perf bin's --quick run drives the three DES workloads on both engine
# backends with fingerprints asserted identical, and must report the
# timing wheel at parity or faster than the reference heap on every
# workload (the "des" section of the JSON report). See docs/PERFORMANCE.md.
if [ -x "$OUT/bin_perf" ] && [ "$MODE" != build ]; then
  note "des scheduler smoke (perf --quick, wheel vs heap)"
  if "$OUT/bin_perf" --quick --out "$OUT/bench_quick.json" \
      > "$OUT/perf_quick.log" 2>&1 \
    && grep -q '"des"' "$OUT/bench_quick.json" \
    && grep -q '"heavy_cancel"' "$OUT/bench_quick.json"; then
    grep "^des " "$OUT/perf_quick.log" || true
  else
    echo "---- perf --quick output ----" >&2
    tail -20 "$OUT/perf_quick.log" >&2
    echo "FAILED: des perf smoke (backend divergence or missing des gauges)" >&2
    FAILED=1
  fi
fi

# ------------------------------------------------------- policy smoke ----
# The policy bin's --quick run executes the smoke chaos matrix once per
# fault-tolerance policy (adaptive + each fixed comparator) and exits
# non-zero unless: every run is invariant-green, the adaptive engine never
# has a less fresh committed checkpoint recoverable at detection than the
# paper's fixed configuration, adaptive aggregate wasted time <= the best
# fixed aggregate, and the campaign renders byte-identically across --jobs
# counts. See docs/POLICY.md.
if [ -x "$OUT/bin_policy" ] && [ "$MODE" != build ]; then
  note "policy smoke (adaptive vs fixed, --quick)"
  rm -f "$OUT/policy_quick.json"
  if "$OUT/bin_policy" --quick --jobs 2 --out "$OUT/policy_quick.json" \
      > "$OUT/policy_quick.log" 2>&1 \
    && grep -q '"policy"' "$OUT/policy_quick.json" \
    && grep -q '"safety_violations": 0' "$OUT/policy_quick.json"; then
    grep "^adaptive " "$OUT/policy_quick.log" || true
  else
    echo "---- policy --quick output ----" >&2
    tail -20 "$OUT/policy_quick.log" >&2
    echo "FAILED: policy smoke (gate tripped or missing policy section)" >&2
    FAILED=1
  fi
fi

# ---------------------------------------------------- incidents smoke ----
# The incidents bin stitches every chaos run's causal trace into
# postmortems and exits non-zero unless each run yields at least one
# incident whose wasted-time attribution matches the ledger to the
# nanosecond. Output must be byte-identical across --jobs counts (the
# flight recorder observes, it never perturbs). See docs/OBSERVABILITY.md.
if [ -x "$OUT/bin_incidents" ] && [ "$MODE" != build ]; then
  note "incident flight-recorder smoke (incidents --quick, --jobs 2 vs 1)"
  if "$OUT/bin_incidents" --quick --jobs 2 > "$OUT/incidents_a.txt" 2>/dev/null \
    && "$OUT/bin_incidents" --quick --jobs 1 > "$OUT/incidents_b.txt" 2>/dev/null \
    && cmp -s "$OUT/incidents_a.txt" "$OUT/incidents_b.txt" \
    && grep -q "attribution: exact" "$OUT/incidents_a.txt"; then
    :
  else
    echo "FAILED: incidents smoke (attribution gate or jobs-invariance)" >&2
    FAILED=1
  fi
fi

# ------------------------------------------------------- serve smoke ----
# Scenario-as-a-service: the canned query batch must serve byte-identically
# at --jobs 2 vs --jobs 1, in file-batch vs stdin-streaming mode, and on a
# warm rerun. The batch doubles as the workload/mode determinism smoke: an
# MoE drill (q12) and shrink-mode + MoE chaos runs (q13/q14) must answer
# ok and byte-identically across jobs counts. (The byte-for-byte diff
# against the equivalent one-shot Scenario builder runs lives in
# tests/integration_service.rs, compiled and run above.) See
# docs/SERVICE.md and docs/WORKLOADS.md.
if [ -x "$OUT/bin_scenario" ] && [ "$MODE" != build ]; then
  note "serve smoke (canned batch: jobs 2 vs 1, file vs stdin, warm rerun)"
  SMOKE="$ROOT/crates/bench/baselines/serve_smoke.ndjson"
  if "$OUT/bin_scenario" serve --requests "$SMOKE" --jobs 2 > "$OUT/serve_a.txt" 2>/dev/null \
    && "$OUT/bin_scenario" serve --requests "$SMOKE" --jobs 1 > "$OUT/serve_b.txt" 2>/dev/null \
    && "$OUT/bin_scenario" serve < "$SMOKE" > "$OUT/serve_c.txt" 2>/dev/null \
    && cmp -s "$OUT/serve_a.txt" "$OUT/serve_b.txt" \
    && cmp -s "$OUT/serve_a.txt" "$OUT/serve_c.txt" \
    && [ "$(wc -l < "$OUT/serve_a.txt")" -eq "$(grep -c . "$SMOKE")" ] \
    && grep -q '"id":"q10","kind":"drill","ok":false' "$OUT/serve_a.txt" \
    && ! grep -q '"id":"q1","kind":"drill","ok":false' "$OUT/serve_a.txt" \
    && grep -q '"id":"q12","kind":"drill","ok":true' "$OUT/serve_a.txt" \
    && grep -q '"id":"q13","kind":"chaos","ok":true' "$OUT/serve_a.txt" \
    && grep -q '"id":"q14","kind":"chaos","ok":true' "$OUT/serve_a.txt"; then
    :
  else
    echo "FAILED: serve smoke (responses not jobs/mode-invariant or error isolation broken)" >&2
    FAILED=1
  fi
fi

# ---------------------------------------------------- service bench smoke ----
# The service bin asserts response byte-identity (jobs 1 vs N, cold vs
# warm), exact error isolation and single-flight collapse internally, and
# splices the "service" section used by the benchgate below.
if [ -x "$OUT/bin_service" ] && [ "$MODE" != build ]; then
  note "service bench smoke (service --quick)"
  rm -f "$OUT/service_quick.json"
  if "$OUT/bin_service" --quick --jobs 2 --out "$OUT/service_quick.json" \
      > "$OUT/service_quick.log" 2>&1 \
    && grep -q '"service"' "$OUT/service_quick.json" \
    && grep -q '"dedup_collapsed": 1' "$OUT/service_quick.json"; then
    grep "| queries |" "$OUT/service_quick.log" || true
  else
    echo "---- service --quick output ----" >&2
    tail -20 "$OUT/service_quick.log" >&2
    echo "FAILED: service bench smoke (determinism or dedup gate tripped)" >&2
    FAILED=1
  fi
fi

# --------------------------------------------------- benchgate smoke ----
# The regression gate compares the deterministic sections of the quick
# bench reports produced above against the committed baselines; a drift
# beyond 25% in an event count or a simulated policy outcome fails.
if [ -x "$OUT/bin_benchgate" ] && [ "$MODE" != build ]; then
  note "bench trajectory gate (fresh --quick vs committed baselines)"
  if [ -f "$OUT/bench_quick.json" ] \
    && ! "$OUT/bin_benchgate" --fresh "$OUT/bench_quick.json" \
        --baseline "$ROOT/crates/bench/baselines/perf_quick.json" >&2; then
    echo "FAILED: benchgate (perf quick report drifted from baseline)" >&2
    FAILED=1
  fi
  if [ -f "$OUT/policy_quick.json" ] \
    && ! "$OUT/bin_benchgate" --fresh "$OUT/policy_quick.json" \
        --baseline "$ROOT/crates/bench/baselines/policy_quick.json" >&2; then
    echo "FAILED: benchgate (policy quick report drifted from baseline)" >&2
    FAILED=1
  fi
  if [ -f "$OUT/service_quick.json" ] \
    && ! "$OUT/bin_benchgate" --fresh "$OUT/service_quick.json" \
        --baseline "$ROOT/crates/bench/baselines/service_quick.json" >&2; then
    echo "FAILED: benchgate (service quick report drifted from baseline)" >&2
    FAILED=1
  fi
fi

if [ "$FAILED" -ne 0 ]; then
  echo "VERIFY: FAILURES PRESENT" >&2
  exit 1
fi
echo "VERIFY: OK"
