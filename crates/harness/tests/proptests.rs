//! Property-based stress tests of the runtime façade: arbitrary
//! train/fail/recover sequences must preserve the system's invariants —
//! the job always recovers (given the persistent anchor), iterations never
//! run backwards past the recovery point, and the data trajectory is
//! preserved whenever recovery stays in CPU memory. Plus the policy-run
//! determinism contract: adaptive chaos runs render byte-identically per
//! seed and across `--jobs` counts.

use gemini_cluster::{FailureKind, OperatorConfig};
use gemini_core::policy::PolicySpec;
use gemini_core::recovery::RecoveryCase;
use gemini_harness::{incident, ChaosPlan, Deployment, GeminiRuntime, Scenario};
use gemini_telemetry::TelemetrySink;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Train(u64),
    Fail { rank: usize, hardware: bool },
    Persist,
    Recover,
}

fn op_strategy(machines: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..4).prop_map(Op::Train),
        2 => (0..machines, any::<bool>()).prop_map(|(rank, hardware)| Op::Fail {
            rank,
            hardware
        }),
        1 => Just(Op::Persist),
        2 => Just(Op::Recover),
    ]
}

fn small_runtime(seed: u64) -> GeminiRuntime {
    let mut scenario = Deployment::dense_gpt2_40b_p3dn();
    scenario.machines = 8;
    scenario.config.profile_iterations = 3;
    GeminiRuntime::launch(scenario, OperatorConfig::with_standbys(1), 512, seed)
        .expect("small deployment assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn runtime_survives_arbitrary_op_sequences(
        ops in proptest::collection::vec(op_strategy(8), 1..25),
        seed in any::<u64>(),
    ) {
        let mut rt = small_runtime(seed);
        let mut highest_committed = 0u64;
        for op in ops {
            match op {
                Op::Train(n) => {
                    if rt.is_degraded() {
                        prop_assert!(rt.train(n).is_err());
                    } else {
                        rt.train(n).unwrap();
                        highest_committed = rt.iteration();
                    }
                }
                Op::Fail { rank, hardware } => {
                    let kind = if hardware {
                        FailureKind::Hardware
                    } else {
                        FailureKind::Software
                    };
                    // Double-failing the same rank is allowed (it is
                    // already down); the runtime just records it.
                    rt.inject_failure(rank, kind).unwrap();
                    prop_assert!(rt.is_degraded());
                }
                Op::Persist => {
                    if !rt.is_degraded() {
                        rt.persist();
                    }
                }
                Op::Recover => {
                    if rt.is_degraded() {
                        let report = rt.recover().unwrap();
                        // Never resumes ahead of real progress.
                        prop_assert!(report.resumed_from_iteration <= highest_committed);
                        // CPU-memory recoveries lose nothing (GEMINI
                        // checkpoints every iteration).
                        if report.case != RecoveryCase::PersistentFallback {
                            prop_assert_eq!(report.iterations_lost, 0);
                        }
                        prop_assert!(!rt.is_degraded());
                        highest_committed = rt.iteration();
                    } else {
                        prop_assert!(rt.recover().is_err());
                    }
                }
            }
        }
        // The job is always drivable to a healthy state.
        if rt.is_degraded() {
            rt.recover().unwrap();
        }
        rt.train(1).unwrap();
    }

    #[test]
    fn recovery_always_trajectory_preserving_for_cpu_cases(
        warmup in 1u64..6,
        rank in 0usize..8,
        hardware in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mut rt = small_runtime(seed);
        rt.train(warmup).unwrap();
        let expected = rt.peek_next_batches();
        let kind = if hardware {
            FailureKind::Hardware
        } else {
            FailureKind::Software
        };
        rt.inject_failure(rank, kind).unwrap();
        let report = rt.recover().unwrap();
        prop_assert_ne!(report.case, RecoveryCase::PersistentFallback);
        prop_assert_eq!(rt.peek_next_batches(), expected);
    }
}

proptest! {
    // Chaos runs are full DES simulations; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn adaptive_chaos_runs_are_byte_identical_per_seed(
        seed in any::<u64>(),
        plan_idx in 0usize..12,
    ) {
        let plan = ChaosPlan::catalog()
            .into_iter()
            .nth(plan_idx)
            .expect("catalog index");
        let run = || {
            Scenario::chaos(plan.clone())
                .seed(seed)
                .policy(PolicySpec::adaptive())
                .run()
                .expect("chaos run")
                .render()
        };
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn adaptive_chaos_campaigns_are_jobs_invariant(
        seed in any::<u64>(),
        jobs in 2usize..5,
    ) {
        let plans = vec![
            ChaosPlan::kill_mid_checkpoint(),
            ChaosPlan::repeat_group_loss(),
        ];
        let run = |j: usize| {
            Scenario::chaos_campaign(plans.clone())
                .seeds(&[seed])
                .jobs(j)
                .policy(PolicySpec::adaptive())
                .run()
                .expect("campaign")
                .iter()
                .map(|r| r.render())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(1), run(jobs));
    }

    // Shrink-and-continue runs obey the same determinism contract as
    // everything else: under a pinned `mode_shrink` policy, the spot and
    // capacity-crunch plans render byte-identically across `--jobs`
    // counts and with the telemetry sink on or off.
    #[test]
    fn fixed_mode_shrink_runs_are_jobs_and_sink_invariant(
        seed in any::<u64>(),
        jobs in 2usize..5,
    ) {
        let plans = vec![
            ChaosPlan::spot_preemption_notice(),
            ChaosPlan::spot_capacity_crunch(),
        ];
        let shrink = || {
            PolicySpec::Fixed(gemini_core::FixedPolicy {
                name: "mode_shrink",
                knobs: gemini_core::PolicyKnobs::with_mode(
                    gemini_core::RecoveryMode::Shrink,
                ),
            })
        };
        let campaign = |j: usize| {
            Scenario::chaos_campaign(plans.clone())
                .seeds(&[seed])
                .jobs(j)
                .policy(shrink())
                .run()
                .expect("campaign")
                .iter()
                .map(|r| r.render())
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(campaign(1), campaign(jobs));
        let single = |sink: TelemetrySink| {
            Scenario::chaos(ChaosPlan::spot_capacity_crunch())
                .seed(seed)
                .sink(sink)
                .policy(shrink())
                .run()
                .expect("chaos run")
                .render()
        };
        prop_assert_eq!(
            single(TelemetrySink::disabled()),
            single(TelemetrySink::enabled())
        );
    }

    // The flight recorder is an observer: the causal trace, the stitched
    // incidents, the attribution rows and the rendered postmortem must be
    // byte-identical across `--jobs` counts and with the telemetry sink
    // on or off — and the attribution invariant must hold exactly for
    // every seed the fuzzer picks, not just the catalog defaults.
    #[test]
    fn incident_analysis_is_deterministic_and_exact(
        seed in any::<u64>(),
        plan_idx in 0usize..12,
        jobs in 2usize..5,
    ) {
        let plan = ChaosPlan::catalog()
            .into_iter()
            .nth(plan_idx)
            .expect("catalog index");

        // Sink on vs off: identical trace and identical analysis.
        let run = |sink: TelemetrySink| {
            Scenario::chaos(plan.clone())
                .seed(seed)
                .sink(sink)
                .policy(PolicySpec::adaptive())
                .run()
                .expect("chaos run")
        };
        let off = run(TelemetrySink::disabled());
        let on = run(TelemetrySink::enabled());
        prop_assert_eq!(&off.trace, &on.trace);
        prop_assert_eq!(incident::analyze(&off), incident::analyze(&on));
        prop_assert_eq!(
            incident::incidents_json(&off),
            incident::incidents_json(&on)
        );

        let analysis = incident::analyze(&off);
        prop_assert!(
            analysis.attribution_exact(),
            "plan {} seed {seed}: {:?}",
            &plan.name,
            &analysis.mismatches
        );

        // Jobs 1 vs N through the campaign path: identical postmortems.
        let campaign = |j: usize| {
            Scenario::chaos_campaign(vec![plan.clone()])
                .seeds(&[seed])
                .jobs(j)
                .policy(PolicySpec::adaptive())
                .run()
                .expect("campaign")
                .iter()
                .map(|r| {
                    let mut doc = incident::postmortem(r).to_markdown();
                    doc.push_str(&incident::attribution_table(r).to_markdown());
                    doc.push_str(&incident::render_summary(r).join("\n"));
                    doc
                })
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(campaign(1), campaign(jobs));
    }
}
