//! A synchronous runtime façade over the whole system — the API a
//! downstream user drives.
//!
//! [`GeminiRuntime`] owns the assembled deployment (cluster, placement,
//! metadata store, byte-level replica vault, coordination agents, cloud
//! operator) behind three verbs:
//!
//! * [`GeminiRuntime::train`] — advance `n` iterations; every iteration
//!   checkpoints to CPU memory (metadata + real encoded bytes) and worker
//!   agents keep their health leases alive;
//! * [`GeminiRuntime::inject_failure`] — kill machines (software or
//!   hardware);
//! * [`GeminiRuntime::recover`] — run the full recovery pipeline
//!   (detection via lease expiry, serialization, replacement, retrieval
//!   with checksum verification, warmup) and roll the job back to the
//!   recovered iteration.
//!
//! The event-driven drill (`crate::drill`) exercises the same machinery at
//! event granularity; the runtime trades that fidelity for a simple,
//! imperative interface with the same measured costs.
//!
//! # Policies
//!
//! [`GeminiRuntime::launch_with_policy`] puts the fault-tolerance knobs
//! under a [`PolicySpec`]: a fixed policy freezes the checkpoint cadence,
//! persist interval, replica count and tier preference at launch; the
//! adaptive policy re-evaluates them at every iteration boundary through a
//! [`PolicyEngine`]. The runtime is the only layer allowed to apply a
//! replica-count (`m`) change: it rebuilds the placement, metadata store
//! and byte vault at a safe boundary and charges the extra replication
//! round as visible overhead. The plain [`GeminiRuntime::launch`] keeps
//! the historical manual behaviour (checkpoint every iteration, persist
//! only on [`GeminiRuntime::persist`]).

use std::collections::BTreeSet;

use crate::scenario::{GeminiSystem, Deployment};
use gemini_baselines::competing::{scheme_signals, SchemeInputs};
use gemini_cluster::{CloudOperator, FailureKind, OperatorConfig};
use gemini_core::agents::{RootAgent, WorkerAgent};
use gemini_core::policy::{
    PolicyDecisionRecord, PolicyEngine, PolicyKnobs, PolicySpec, TierPreference,
};
use gemini_core::recovery::{RecoveryCase, RecoveryPlan, RecoveryPlanner, RetrievalSource};
use gemini_core::vault::ReplicaVault;
use gemini_core::{GeminiError, HierarchicalStore, PolicySignals, StorageTier, WastedLedger};
use gemini_kvstore::KvStore;
use gemini_net::ByteSize;
use gemini_sim::{SimDuration, SimTime};
use gemini_training::{DataLoader, DataLoaderState, SyntheticCorpus};

/// What [`GeminiRuntime::recover`] reports.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// Which recovery mechanism applied.
    pub case: RecoveryCase,
    /// The iteration the job rolled back to.
    pub resumed_from_iteration: u64,
    /// Iterations of progress lost.
    pub iterations_lost: u64,
    /// Wall-clock downtime of the recovery.
    pub downtime: SimDuration,
    /// The full plan, for inspection.
    pub plan: RecoveryPlan,
}

/// A live training job under GEMINI's protection.
pub struct GeminiRuntime {
    sys: GeminiSystem,
    kv: KvStore,
    workers: Vec<WorkerAgent>,
    root: RootAgent,
    operator: CloudOperator,
    vault: ReplicaVault,
    shard_bytes: usize,
    loader: DataLoader,
    persisted_loader: DataLoaderState,
    clock: SimTime,
    iteration: u64,
    last_committed: u64,
    pending_failures: Vec<(usize, FailureKind)>,
    // ---- policy layer ----
    policy_name: String,
    engine: Option<PolicyEngine>,
    knobs: PolicyKnobs,
    auto: bool,
    last_persist_at: SimTime,
    ledger: WastedLedger,
    replica_rebuilds: u64,
}

impl GeminiRuntime {
    /// Launches a runtime for `scenario`. `shard_bytes` sizes the synthetic
    /// model-state payload carried per machine in the byte vault (small in
    /// tests; the *timing* always uses the scenario's real shard sizes).
    ///
    /// Knobs stay manual: a checkpoint commits every iteration and
    /// persistent checkpoints happen only on [`GeminiRuntime::persist`].
    /// Use [`GeminiRuntime::launch_with_policy`] to put them under a
    /// policy.
    pub fn launch(
        scenario: Deployment,
        operator: OperatorConfig,
        shard_bytes: usize,
        seed: u64,
    ) -> Result<GeminiRuntime, GeminiError> {
        Self::launch_inner(scenario, operator, shard_bytes, seed, None)
    }

    /// Launches a runtime whose fault-tolerance knobs are driven by
    /// `policy`: checkpoint cadence, automatic persistent checkpoints,
    /// retrieval-tier preference and — for the adaptive policy — online
    /// re-planning of all of them (including the replica count `m`) at
    /// iteration boundaries.
    pub fn launch_with_policy(
        scenario: Deployment,
        operator: OperatorConfig,
        shard_bytes: usize,
        seed: u64,
        policy: &PolicySpec,
    ) -> Result<GeminiRuntime, GeminiError> {
        Self::launch_inner(scenario, operator, shard_bytes, seed, Some(policy))
    }

    fn launch_inner(
        scenario: Deployment,
        operator: OperatorConfig,
        shard_bytes: usize,
        seed: u64,
        policy: Option<&PolicySpec>,
    ) -> Result<GeminiRuntime, GeminiError> {
        let (policy_name, engine, knobs, auto) = match policy {
            None => ("manual".to_string(), None, PolicyKnobs::paper_default(), false),
            Some(PolicySpec::Fixed(f)) => (f.name.to_string(), None, f.knobs, true),
            Some(PolicySpec::Adaptive(cfg)) => {
                let knobs = PolicyKnobs::paper_default();
                (
                    "adaptive".to_string(),
                    Some(PolicyEngine::new(cfg.clone(), knobs)),
                    knobs,
                    true,
                )
            }
        };
        // A policy's launch `m` is authoritative: the deployment is built
        // with the placement the policy asks for.
        let mut scenario = scenario;
        if policy.is_some() {
            scenario.config.replicas = knobs.replicas;
        }
        let mut sys = scenario.build_system(seed)?;
        sys.store.persist(0);
        let n = sys.cluster.len();
        let mut kv = KvStore::new();
        let gcfg = sys.scenario.config;
        let mut workers: Vec<WorkerAgent> = (0..n)
            .map(|r| WorkerAgent::new(r, r as u64, gcfg))
            .collect();
        for w in workers.iter_mut() {
            w.register(&mut kv, SimTime::ZERO)
                .expect("fresh store accepts registrations");
        }
        let mut root = RootAgent::new("machine-0", &gcfg);
        root.campaign(&mut kv, SimTime::ZERO)
            .expect("fresh store runs the election");
        let vault = ReplicaVault::new(
            &sys.placement,
            // Byte-level capacity scaled to the synthetic shard size: the
            // same 2-buffers × m-replicas headroom as the real deployment.
            ByteSize::from_bytes((shard_bytes as u64 + 64) * 2 * gcfg.replicas as u64 + 4096),
        )?;
        // The data pipeline: a synthetic stand-in for Wikipedia-en, sharded
        // across the world. The loader's position is part of every
        // checkpoint so recovery replays the exact sample sequence.
        let world = (scenario.machines as u64) * scenario.instance.gpus as u64;
        let corpus = SyntheticCorpus::paper_sized(world * 8 * 100, seed);
        let loader = DataLoader::new(corpus, world, 8, DataLoaderState::initial());
        let mut rt = GeminiRuntime {
            sys,
            kv,
            workers,
            root,
            operator: CloudOperator::new(operator),
            vault,
            shard_bytes,
            loader,
            persisted_loader: DataLoaderState::initial(),
            clock: SimTime::ZERO,
            iteration: 0,
            last_committed: 0,
            pending_failures: Vec::new(),
            policy_name,
            engine,
            knobs,
            auto,
            last_persist_at: SimTime::ZERO,
            ledger: WastedLedger::default(),
            replica_rebuilds: 0,
        };
        // The job starts from a consistent state: checkpoint iteration 0.
        rt.commit_checkpoint(0)?;
        Ok(rt)
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The current training iteration.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Whether a failure is pending recovery.
    pub fn is_degraded(&self) -> bool {
        !self.pending_failures.is_empty()
    }

    /// The name of the policy in force (`manual`, a fixed policy's name,
    /// or `adaptive`).
    pub fn policy_name(&self) -> &str {
        &self.policy_name
    }

    /// The fault-tolerance knobs currently applied.
    pub fn active_knobs(&self) -> PolicyKnobs {
        self.knobs
    }

    /// Every applied adaptive decision so far (empty for fixed/manual).
    pub fn policy_decisions(&self) -> &[PolicyDecisionRecord] {
        self.engine.as_ref().map_or(&[], |e| e.decisions())
    }

    /// The replica count `m` of the placement currently in force.
    pub fn replicas_in_force(&self) -> usize {
        self.sys.placement.replicas()
    }

    /// How many times the policy rebuilt the placement for a new `m`.
    pub fn replica_rebuilds(&self) -> u64 {
        self.replica_rebuilds
    }

    /// The wasted-time ledger: checkpoint/persist overhead plus rework
    /// and downtime of every recovery (Eq. 1's accounting).
    pub fn wasted(&self) -> WastedLedger {
        self.ledger
    }

    fn commit_checkpoint(&mut self, iteration: u64) -> Result<(), GeminiError> {
        self.last_committed = iteration;
        self.sys.store.record_complete(iteration);
        let placement = self.sys.placement.clone();
        let shard_bytes = self.shard_bytes;
        // Every shard carries the global data-loader position in its first
        // 16 bytes, followed by the (synthetic) model states.
        let loader_state = self.loader.state().encode();
        let mk = |owner: usize| {
            let mut payload = loader_state.to_vec();
            payload.extend(
                (0..shard_bytes)
                    .map(|i| (i as u64 ^ owner as u64 ^ iteration.rotate_left(3)) as u8),
            );
            payload
        };
        self.vault.checkpoint_round(&placement, iteration, mk)
    }

    /// The data batches for the next iteration (per GPU rank) — exposed so
    /// callers can verify trajectory preservation across recoveries.
    pub fn peek_next_batches(&self) -> Vec<Vec<u64>> {
        self.loader.clone().next_step()
    }

    /// Advances the clock by `d`, heartbeating alive workers every
    /// heartbeat period so their leases stay warm.
    fn advance(&mut self, d: SimDuration) {
        let period = self.sys.scenario.config.heartbeat_period;
        let target = self.clock + d;
        let failed: Vec<usize> = self.pending_failures.iter().map(|(r, _)| *r).collect();
        let mut t = self.clock + period;
        while t <= target {
            for w in self.workers.iter_mut() {
                if !failed.contains(&w.rank()) {
                    let _ = w.heartbeat(&mut self.kv, t);
                }
            }
            let _ = self.root.campaign(&mut self.kv, t);
            t += period;
        }
        self.clock = target;
    }

    /// Trains `n` iterations. Each takes the scheduled iteration time; an
    /// in-memory checkpoint (metadata + bytes) commits every
    /// `ckpt_every_iters` iterations (every iteration under the manual
    /// and paper-default knobs). Fails if the job is degraded (a
    /// synchronous job cannot advance past a failure, §1).
    pub fn train(&mut self, n: u64) -> Result<(), GeminiError> {
        if self.is_degraded() {
            return Err(GeminiError::InvalidPartitionInput(
                "job is degraded; call recover() first",
            ));
        }
        for _ in 0..n {
            self.loader.next_step(); // consume this iteration's data
            self.advance(self.sys.iteration_time());
            self.iteration += 1;
            if self.iteration % self.knobs.ckpt_every_iters.max(1) == 0 {
                self.commit_checkpoint(self.iteration)?;
            }
            self.policy_boundary()?;
        }
        Ok(())
    }

    /// The signals sampled at an iteration boundary for the policy engine.
    fn signals(&self) -> PolicySignals {
        PolicySignals {
            now: self.clock,
            committed: self.last_committed,
            iteration_time: self.sys.iteration_time(),
            ckpt_overhead: self.sys.schedule.outcome.overhead,
            retrieval_remote: self.sys.retrieval_time(StorageTier::RemoteCpu),
            retrieval_persistent: self.sys.retrieval_time(StorageTier::Persistent),
            persist_upload: self.sys.retrieval_time(StorageTier::Persistent),
            persist_anchor: self.sys.store.persistent().map(|m| m.iteration),
            healthy_machines: self.sys.cluster.len() - self.pending_failures.len(),
            machines: self.sys.cluster.len(),
            scheme: scheme_signals(&SchemeInputs::from_deployment(
                self.sys.scenario.instance,
                self.sys.scenario.model,
                self.sys.cluster.len(),
                self.sys.scenario.config.replicas,
                self.sys.iteration_time(),
                self.sys.schedule.outcome.overhead,
                self.sys.retrieval_time(StorageTier::LocalCpu),
                self.sys.retrieval_time(StorageTier::RemoteCpu),
                self.sys.retrieval_time(StorageTier::Persistent),
            )),
            // The runtime trains a healthy fleet between explicit fault
            // injections; mode signals stay at the quiet defaults so the
            // engine never proposes leaving Wait here.
            mode: gemini_core::policy::ModeSignals::default(),
        }
    }

    /// The policy hook, run after every trained iteration: evaluate the
    /// adaptive engine (if any), apply knob changes — the runtime is the
    /// only layer that applies a replica-count change — and fire the
    /// automatic persistent checkpoint when its interval elapsed.
    fn policy_boundary(&mut self) -> Result<(), GeminiError> {
        if !self.auto {
            return Ok(());
        }
        if self.engine.is_some() {
            let s = self.signals();
            let rec = self
                .engine
                .as_mut()
                .expect("checked above")
                .evaluate(&s);
            if let Some(rec) = rec {
                let target_m = rec.knobs.replicas;
                // Cadence / persist / tier take effect immediately; `m`
                // goes through the placement rebuild below.
                self.knobs = PolicyKnobs {
                    replicas: self.knobs.replicas,
                    ..rec.knobs
                };
                if target_m != self.sys.placement.replicas() {
                    self.apply_replicas(target_m)?;
                }
            }
        }
        if let Some(interval) = self.knobs.persist_interval {
            if self.clock.saturating_since(self.last_persist_at) >= interval {
                // The upload runs asynchronously from the serialized CPU
                // copy; its cost is charged to the ledger as overhead, not
                // to the training clock.
                let upload = self.sys.retrieval_time(StorageTier::Persistent);
                self.persist();
                self.ledger.record_overhead(upload);
                self.last_persist_at = self.clock;
            }
        }
        Ok(())
    }

    /// Applies a new replica count `m` at a safe boundary: rebuild the
    /// placement (Algorithm 1 at the new `m`), metadata store and byte
    /// vault, re-replicate the last committed checkpoint to the new peer
    /// set, and charge that extra replication round as visible overhead.
    /// Infeasible targets (the extra replica does not fit in CPU RAM) are
    /// skipped; the active knobs keep the applied `m`.
    fn apply_replicas(&mut self, m: usize) -> Result<(), GeminiError> {
        let mut scenario = self.sys.scenario.clone();
        scenario.config.replicas = m;
        let placement = scenario.placement()?;
        let store = HierarchicalStore::new(
            placement.clone(),
            self.sys.scenario.ckpt_bytes_per_machine(),
        );
        if store.validate_memory(self.sys.scenario.instance.cpu_mem).is_err() {
            return Ok(()); // target m does not fit; keep the current placement
        }
        // The checkpoint schedule changes with `m` (more replica traffic to
        // hide in the idle spans); re-plan it against the same profile.
        let schedule = gemini_core::schedule::schedule_checkpoint(
            &self.sys.profile,
            scenario.ckpt_bytes_per_machine(),
            scenario.instance.gpus,
            &scenario.config,
            &scenario.instance.ckpt_net_cost(),
            &scenario.instance.copy_cost(),
            scenario.instance.gpu_headroom,
        );
        let Ok(schedule) = schedule else {
            return Ok(()); // no interference-free schedule at the new m
        };
        // All feasibility checks passed: swap the deployment pieces.
        let mut store = store;
        if let Some(meta) = self.sys.store.persistent() {
            // The durable anchor survives the re-plan untouched.
            store.persist(meta.iteration);
        }
        self.sys.store = store;
        self.sys.schedule = schedule;
        self.sys.scenario.config.replicas = m;
        self.sys.placement = placement;
        self.vault = ReplicaVault::new(
            &self.sys.placement,
            ByteSize::from_bytes((self.shard_bytes as u64 + 64) * 2 * m as u64 + 4096),
        )?;
        // Re-replicate the committed state across the new peer set, and
        // pay for that bulk round (it cannot hide in idle spans).
        self.commit_checkpoint(self.last_committed)?;
        let rebuild = self.sys.bulk_ckpt_time();
        self.advance(rebuild);
        self.ledger.record_overhead(rebuild);
        self.replica_rebuilds += 1;
        self.knobs.replicas = m;
        Ok(())
    }

    /// Also persists the current state to remote persistent storage (the
    /// 3-hourly checkpoint for non-recovery purposes).
    pub fn persist(&mut self) {
        self.sys.store.persist(self.iteration);
        self.persisted_loader = self.loader.state();
    }

    /// Kills `rank` with the given failure kind. Training halts until
    /// [`GeminiRuntime::recover`].
    pub fn inject_failure(&mut self, rank: usize, kind: FailureKind) -> Result<(), GeminiError> {
        if rank >= self.sys.cluster.len() {
            return Err(GeminiError::UnknownRank(rank));
        }
        // A machine can only die once per outage; a second report on the
        // same rank at most *escalates* a software failure to a hardware
        // one (e.g. the restart attempt found broken hardware).
        if let Some(entry) = self.pending_failures.iter_mut().find(|(r, _)| *r == rank) {
            if kind == FailureKind::Hardware && entry.1 == FailureKind::Software {
                entry.1 = FailureKind::Hardware;
                self.sys
                    .cluster
                    .fail(rank, kind)
                    .map_err(|_| GeminiError::UnknownRank(rank))?;
                self.sys.store.machine_lost(rank);
                self.vault.wipe_host(rank);
            }
            return Ok(());
        }
        self.sys
            .cluster
            .fail(rank, kind)
            .map_err(|_| GeminiError::UnknownRank(rank))?;
        if kind == FailureKind::Hardware {
            self.sys.store.machine_lost(rank);
            self.vault.wipe_host(rank);
        }
        self.pending_failures.push((rank, kind));
        Ok(())
    }

    /// Runs the full recovery pipeline and resumes the job at the
    /// recovered iteration.
    pub fn recover(&mut self) -> Result<RecoveryReport, GeminiError> {
        if self.pending_failures.is_empty() {
            return Err(GeminiError::NoCheckpointAvailable);
        }
        let started = self.clock;
        let gcfg = self.sys.scenario.config;

        // 1. Detection: the victims stop heartbeating; their leases lapse
        //    after the TTL and the root's scan notices.
        self.advance(gcfg.health_ttl);
        let report = self
            .root
            .scan(&mut self.kv, self.clock, self.sys.cluster.len());
        debug_assert!(!report.missing.is_empty(), "lease must have lapsed");

        // Feed the confirmed failures to the adaptive engine. A failure is
        // *correlated* when it defeats CPU replication: an entire placement
        // group went down with it.
        if let Some(engine) = self.engine.as_mut() {
            let hw_down: BTreeSet<usize> = self
                .pending_failures
                .iter()
                .filter(|&&(_, k)| k == FailureKind::Hardware)
                .map(|&(r, _)| r)
                .collect();
            let correlated = self
                .sys
                .placement
                .groups()
                .iter()
                .any(|g| g.members.iter().all(|m| hw_down.contains(m)));
            let now = self.clock;
            for &(_, kind) in &self.pending_failures {
                engine.observe_failure(now, correlated, kind == FailureKind::Software);
            }
        }

        // 2. Serialization of the surviving replicas (torch.save).
        self.advance(self.sys.serialize_time());

        // 3. Replacement machines for hardware failures (parallel requests;
        //    the wait is the slowest provision).
        let failures = self.pending_failures.clone();
        let mut ready = self.clock;
        for &(rank, kind) in &failures {
            if kind == FailureKind::Hardware {
                self.sys
                    .cluster
                    .begin_replacement(rank)
                    .map_err(|_| GeminiError::UnknownRank(rank))?;
                let provision = self
                    .operator
                    .request_replacement(self.clock, &mut self.sys.rng);
                ready = ready.max(provision.ready_at);
            }
        }
        if ready > self.clock {
            self.advance(ready - self.clock);
        }
        for &(rank, kind) in &failures {
            if kind == FailureKind::Hardware {
                self.sys
                    .cluster
                    .complete_replacement(rank, self.clock)
                    .map_err(|_| GeminiError::UnknownRank(rank))?;
            }
        }

        // 4. Plan and execute the retrieval, verifying real bytes for every
        //    rank that reads from CPU memory.
        let mut plan = RecoveryPlanner.plan(&self.sys.store, &failures)?;
        // Policy tier override: a persistent-first preference reroutes a
        // CPU-recoverable failure to the durable anchor when one exists.
        if self.auto
            && self.knobs.tier == TierPreference::PersistentFirst
            && plan.case == RecoveryCase::HardwareFromCpu
        {
            if let Some(anchor) = self.sys.store.persistent() {
                let sources = (0..self.sys.cluster.len())
                    .map(|rank| RetrievalSource {
                        rank,
                        tier: StorageTier::Persistent,
                        from: None,
                    })
                    .collect();
                plan = RecoveryPlan {
                    case: RecoveryCase::PersistentFallback,
                    iteration: anchor.iteration,
                    sources,
                    replaced: plan.replaced.clone(),
                    degraded: Some("policy: persistent-first tier override".to_string()),
                };
            }
        }
        let slowest = plan.retrieval_makespan(
            self.sys.scenario.ckpt_bytes_per_machine(),
            self.sys.scenario.machines,
            &self.sys.scenario.instance.ckpt_net_cost(),
            &self.sys.scenario.instance.copy_cost(),
            &self.sys.scenario.storage_cost(),
        );
        if plan.case != RecoveryCase::PersistentFallback {
            let mut restored_loader = None;
            for src in &plan.sources {
                let host = src.from.unwrap_or(src.rank);
                let payload = self.vault.fetch_verified(host, src.rank)?;
                if payload.iteration != plan.iteration {
                    return Err(GeminiError::Codec(
                        "replica iteration does not match the plan",
                    ));
                }
                let state = DataLoaderState::decode(&payload.data[..16])
                    .ok_or(GeminiError::Codec("loader state missing from frame"))?;
                if let Some(prev) = restored_loader {
                    if prev != state {
                        return Err(GeminiError::Codec("replicas disagree on the loader state"));
                    }
                }
                restored_loader = Some(state);
            }
            if let Some(state) = restored_loader {
                self.loader.restore(state);
            }
        } else {
            self.loader.restore(self.persisted_loader);
        }
        self.advance(slowest);

        // 5. Restart warmup, then resume.
        self.advance(gcfg.restart_warmup);
        for &(rank, kind) in &failures {
            if kind == FailureKind::Software {
                self.sys
                    .cluster
                    .restart(rank)
                    .map_err(|_| GeminiError::UnknownRank(rank))?;
            }
        }
        // Replacement machines re-register their worker agents.
        for &(rank, _) in &failures {
            self.workers[rank]
                .heartbeat(&mut self.kv, self.clock)
                .expect("re-registration succeeds");
        }
        self.pending_failures.clear();

        let iterations_lost = self.iteration - plan.iteration;
        self.iteration = plan.iteration;
        // Rebuild the failed hosts' vault contents on the next checkpoint;
        // re-checkpoint the recovered state immediately so the job is
        // fully replicated again.
        self.commit_checkpoint(self.iteration)?;
        self.ledger.record_failure(
            iterations_lost,
            self.sys.iteration_time(),
            self.clock - started,
        );
        Ok(RecoveryReport {
            case: plan.case,
            resumed_from_iteration: plan.iteration,
            iterations_lost,
            downtime: self.clock - started,
            plan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> GeminiRuntime {
        GeminiRuntime::launch(
            Deployment::dense_gpt2_100b_p4d(),
            OperatorConfig::default(),
            2_048,
            7,
        )
        .unwrap()
    }

    #[test]
    fn train_advances_clock_and_checkpoints() {
        let mut rt = runtime();
        rt.train(5).unwrap();
        assert_eq!(rt.iteration(), 5);
        let expect = rt.sys.iteration_time() * 5;
        assert_eq!(rt.now() - SimTime::ZERO, expect);
    }

    #[test]
    fn full_lifecycle_software_failure() {
        let mut rt = runtime();
        rt.train(10).unwrap();
        rt.inject_failure(3, FailureKind::Software).unwrap();
        assert!(rt.is_degraded());
        assert!(rt.train(1).is_err(), "degraded job cannot train");
        let report = rt.recover().unwrap();
        assert_eq!(report.case, RecoveryCase::SoftwareLocal);
        assert_eq!(report.resumed_from_iteration, 10);
        assert_eq!(report.iterations_lost, 0);
        // ~7 minutes of downtime (§7.3).
        let mins = report.downtime.as_secs_f64() / 60.0;
        assert!((6.0..9.0).contains(&mins), "downtime = {mins:.1} min");
        // Training continues.
        rt.train(3).unwrap();
        assert_eq!(rt.iteration(), 13);
    }

    #[test]
    fn full_lifecycle_hardware_failure() {
        let mut rt = runtime();
        rt.train(4).unwrap();
        rt.inject_failure(5, FailureKind::Hardware).unwrap();
        let report = rt.recover().unwrap();
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 4);
        let mins = report.downtime.as_secs_f64() / 60.0;
        assert!((9.0..16.0).contains(&mins), "downtime = {mins:.1} min");
        // Rank 5's shard came from its group peer (rank 4), verified
        // byte-for-byte inside recover().
        let src = report.plan.sources.iter().find(|s| s.rank == 5).unwrap();
        assert_eq!(src.from, Some(4));
        rt.train(1).unwrap();
        assert_eq!(rt.iteration(), 5);
    }

    #[test]
    fn group_loss_rolls_back_to_persistent() {
        let mut rt = runtime();
        rt.train(6).unwrap();
        rt.persist(); // user-managed 3-hourly persistent checkpoint
        rt.train(6).unwrap();
        rt.inject_failure(0, FailureKind::Hardware).unwrap();
        rt.inject_failure(1, FailureKind::Hardware).unwrap();
        let report = rt.recover().unwrap();
        assert_eq!(report.case, RecoveryCase::PersistentFallback);
        assert_eq!(report.resumed_from_iteration, 6);
        assert_eq!(report.iterations_lost, 6);
    }

    #[test]
    fn recover_without_failure_errors() {
        let mut rt = runtime();
        assert!(rt.recover().is_err());
    }

    #[test]
    fn recovery_preserves_the_data_trajectory() {
        let mut rt = runtime();
        rt.train(7).unwrap();
        // The batches the job would consume next, had nothing failed.
        let expected = rt.peek_next_batches();
        rt.inject_failure(4, FailureKind::Hardware).unwrap();
        rt.recover().unwrap();
        // Rolled back to iteration 7's checkpoint: the very same batches
        // come next — no data skipped, none replayed twice.
        assert_eq!(rt.peek_next_batches(), expected);
        // And after training past the failure point, the loader advances.
        rt.train(1).unwrap();
        assert_ne!(rt.peek_next_batches(), expected);
    }

    #[test]
    fn persistent_fallback_restores_the_persisted_data_position() {
        let mut rt = runtime();
        rt.train(3).unwrap();
        rt.persist();
        let at_persist = rt.peek_next_batches();
        rt.train(5).unwrap();
        rt.inject_failure(0, FailureKind::Hardware).unwrap();
        rt.inject_failure(1, FailureKind::Hardware).unwrap();
        let report = rt.recover().unwrap();
        assert_eq!(report.case, RecoveryCase::PersistentFallback);
        assert_eq!(rt.peek_next_batches(), at_persist);
    }

    #[test]
    fn vault_bytes_rebuilt_after_recovery() {
        let mut rt = runtime();
        rt.train(2).unwrap();
        rt.inject_failure(7, FailureKind::Hardware).unwrap();
        rt.recover().unwrap();
        // The replacement host holds fresh replicas of the recovered
        // iteration again.
        let payload = rt.vault.fetch_verified(7, 7).unwrap();
        assert_eq!(payload.iteration, 2);
    }

    fn fixed(name: &'static str, knobs: PolicyKnobs) -> PolicySpec {
        PolicySpec::Fixed(gemini_core::FixedPolicy { name, knobs })
    }

    #[test]
    fn manual_launch_keeps_knobs_manual() {
        let mut rt = runtime();
        assert_eq!(rt.policy_name(), "manual");
        rt.train(15).unwrap();
        // No automatic persistent checkpoint, no policy overhead.
        assert_eq!(rt.wasted().overhead, SimDuration::ZERO);
        assert!(rt.policy_decisions().is_empty());
    }

    #[test]
    fn fixed_cadence_commits_every_kth_iteration() {
        let spec = fixed(
            "every_4",
            PolicyKnobs {
                ckpt_every_iters: 4,
                persist_interval: None,
                replicas: 2,
                tier: TierPreference::CpuFirst,
                ..PolicyKnobs::paper_default()
            },
        );
        let mut rt = GeminiRuntime::launch_with_policy(
            Deployment::dense_gpt2_100b_p4d(),
            OperatorConfig::default(),
            1_024,
            7,
            &spec,
        )
        .unwrap();
        rt.train(10).unwrap();
        rt.inject_failure(5, FailureKind::Hardware).unwrap();
        let report = rt.recover().unwrap();
        // Last committed checkpoint was iteration 8 (the cadence skipped
        // 9 and 10); two iterations of rework.
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 8);
        assert_eq!(report.iterations_lost, 2);
        assert_eq!(rt.wasted().rework_iters, 2);
    }

    #[test]
    fn auto_persist_and_tier_override_reroute_to_persistent() {
        let spec = fixed(
            "persistent_first",
            PolicyKnobs {
                ckpt_every_iters: 1,
                persist_interval: Some(SimDuration::from_mins(10)),
                replicas: 2,
                tier: TierPreference::PersistentFirst,
                ..PolicyKnobs::paper_default()
            },
        );
        let mut rt = GeminiRuntime::launch_with_policy(
            Deployment::dense_gpt2_100b_p4d(),
            OperatorConfig::default(),
            1_024,
            7,
            &spec,
        )
        .unwrap();
        // 12 iterations ≈ 744 s: the 10-minute auto-persist fires mid-run.
        rt.train(12).unwrap();
        assert!(rt.wasted().overhead > SimDuration::ZERO, "upload charged");
        rt.inject_failure(5, FailureKind::Hardware).unwrap();
        let report = rt.recover().unwrap();
        // A single hardware failure is CPU-recoverable, but the policy
        // prefers the durable anchor.
        assert_eq!(report.case, RecoveryCase::PersistentFallback);
        assert!(report.resumed_from_iteration > 0, "anchor is post-launch");
        assert!(report
            .plan
            .degraded
            .as_deref()
            .unwrap_or("")
            .contains("tier override"));
        // The data trajectory follows the persisted position.
        rt.train(1).unwrap();
    }

    #[test]
    fn adaptive_policy_raises_replicas_after_correlated_losses() {
        let run = || {
            let spec = PolicySpec::adaptive();
            let mut rt = GeminiRuntime::launch_with_policy(
                Deployment::dense_gpt2_100b_p4d(),
                OperatorConfig::default(),
                1_024,
                7,
                &spec,
            )
            .unwrap();
            rt.train(3).unwrap();
            rt.inject_failure(0, FailureKind::Hardware).unwrap();
            rt.inject_failure(1, FailureKind::Hardware).unwrap();
            rt.recover().unwrap();
            rt.train(3).unwrap();
            rt.inject_failure(2, FailureKind::Hardware).unwrap();
            rt.inject_failure(3, FailureKind::Hardware).unwrap();
            rt.recover().unwrap();
            rt.train(12).unwrap();
            rt
        };
        let rt = run();
        assert_eq!(rt.policy_name(), "adaptive");
        assert!(
            !rt.policy_decisions().is_empty(),
            "sustained correlated losses must apply a decision"
        );
        // Two whole-group losses within the hour push the correlated rate
        // far above the m+1 threshold: the runtime rebuilt the placement.
        assert_eq!(rt.active_knobs().replicas, 3);
        assert_eq!(rt.replicas_in_force(), 3);
        assert!(rt.replica_rebuilds() >= 1);
        assert!(rt.wasted().failures == 2 && rt.wasted().total() > SimDuration::ZERO);
        // And the whole trajectory is deterministic.
        let rt2 = run();
        assert_eq!(rt.now(), rt2.now());
        assert_eq!(rt.iteration(), rt2.iteration());
        assert_eq!(rt.policy_decisions(), rt2.policy_decisions());
        assert_eq!(rt.wasted(), rt2.wasted());
    }

    #[test]
    fn standby_operator_shrinks_downtime() {
        let mk = |standbys| {
            let mut rt = GeminiRuntime::launch(
                Deployment::dense_gpt2_100b_p4d(),
                OperatorConfig::with_standbys(standbys),
                1_024,
                7,
            )
            .unwrap();
            rt.train(2).unwrap();
            rt.inject_failure(3, FailureKind::Hardware).unwrap();
            rt.recover().unwrap().downtime
        };
        assert!(mk(1) < mk(0));
    }
}
