//! The experiment harness: end-to-end simulations and the regenerators for
//! every table and figure in the GEMINI paper's evaluation (§7).
//!
//! * [`scenario`] — deployment descriptions (model × instance × machine
//!   count × GEMINI config) and the assembled [`scenario::GeminiSystem`].
//! * [`drill`] — the event-driven single-failure recovery drill behind
//!   Fig. 14: worker heartbeats into the KV store, root detection,
//!   checkpoint serialization, machine replacement and retrieval, with an
//!   exact timeline trace.
//! * [`campaign`] — long-horizon training campaigns with Poisson failure
//!   injection, producing the *effective training time ratio* of Fig. 15.
//! * [`chaos`] — the deterministic fault-injection engine: named chaos
//!   plans (correlated group kills, KV blackouts, delayed heartbeats,
//!   NIC degradation/partition, replacement exhaustion, root churn)
//!   driven through the DES stack, with four run invariants.
//! * [`runtime`] — a synchronous façade (`train` / `inject_failure` /
//!   `recover`) over the whole system, carrying real checkpoint bytes,
//!   with an optional fault-tolerance policy driving its knobs.
//! * [`incident`] — the flight-recorder analysis layer: stitches the
//!   chaos causal trace into [`incident::Incident`] records, computes
//!   per-incident critical paths and attributes the wasted-time ledger
//!   exactly (postmortems, attribution tables, sink metric/span/flow
//!   projection).
//! * [`experiments`] — one function per table/figure returning structured
//!   rows, plus markdown rendering.
//! * [`par`] — deterministic parallel execution glue (`--jobs`): re-exports
//!   the [`gemini_parallel`] pool and records the `parallel.*` metrics.
//! * [`builder`] — the [`Scenario`] run builder, the single front door to
//!   drills, campaigns and chaos runs
//!   (`Scenario::chaos(plan).seed(s).policy(p).run()`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod campaign;
pub mod chaos;
pub mod des_campaign;
pub mod drill;
pub mod experiments;
pub mod incident;
pub mod par;
pub mod replay;
pub mod report;
pub mod runtime;
pub mod scenario;

pub use builder::Scenario;
pub use campaign::{
    campaign_grid, run_campaign, run_campaigns, CampaignConfig, CampaignResult, Solution,
};
#[allow(deprecated)]
pub use campaign::run_campaign_with;
pub use chaos::{
    check_policy_preserves_commits, run_chaos, run_chaos_campaign, ChaosPlan, ChaosReport,
    FaultKind, TimedFault, WaveReport,
};
#[allow(deprecated)]
pub use chaos::run_chaos_with;
pub use des_campaign::{run_des_campaign, run_des_sweep, DesCampaignConfig, DesCampaignResult};
pub use drill::{run_drill, DrillConfig, DrillReport};
pub use incident::{
    analyze, stitch, AttributionRow, Incident, IncidentAnalysis,
    DETECTION_LATENCY_BOUNDS_US, RECOVERY_PHASE_BOUNDS_US,
};
#[allow(deprecated)]
pub use drill::run_drill_with;
pub use replay::{replay_schedule, ReplayReport};
pub use runtime::{GeminiRuntime, RecoveryReport};
pub use scenario::{Deployment, GeminiSystem};
