//! Schedule replay: executes an analytically-computed checkpoint schedule
//! on the FIFO network resources and verifies it is conflict-free.
//!
//! The scheduler (`gemini_core::schedule`) *claims* its chunks fit in the
//! iteration's idle timespans; this module *proves* it for a concrete
//! iteration by replaying both traffic classes on a [`BusyResource`]:
//! the NIC's occupancy starts as the training spans at their exact
//! positions, then every checkpoint chunk is checked against (and added
//! to) that occupancy at its scheduled position. If the scheduler was
//! right, no chunk overlaps anything (the NIC was idle there); any
//! overlap is interference the analytic model missed. The receive path
//! (GPU→CPU copies) is replayed FIFO against the copy engine.

use gemini_core::schedule::CkptSchedule;
use gemini_net::{BusyResource, TransferCost};
use gemini_sim::{SimDuration, SimTime, Span, Timeline};
use gemini_training::IterationTimeline;
use serde::{Deserialize, Serialize};

/// The outcome of replaying one iteration's schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Chunks replayed.
    pub chunks: usize,
    /// Chunks that started later than scheduled (interference).
    pub displaced: usize,
    /// Worst displacement observed.
    pub max_displacement: SimDuration,
    /// End of the last replayed activity (network or copy).
    pub makespan_end: SimTime,
    /// Whether the replay confirms the schedule (no displacement and no
    /// activity beyond the iteration window plus the declared overhead).
    pub confirmed: bool,
}

/// Replays `schedule` against `timeline` under the given checkpoint
/// network and copy cost models.
pub fn replay_schedule(
    timeline: &IterationTimeline,
    schedule: &CkptSchedule,
    net: &TransferCost,
    copy: &TransferCost,
) -> ReplayReport {
    // The NIC's occupancy starts as the training traffic at its exact
    // positions; every checkpoint chunk must land in a hole of it.
    let mut occupied = timeline.network_busy.clone();
    // The copy engine carries the checkpoint receive path FIFO.
    let mut engine = BusyResource::new();

    let mut displaced = 0usize;
    let mut max_displacement = SimDuration::ZERO;
    let mut makespan_end = timeline.window.start;
    for (chunk, planned) in &schedule.placed {
        let span = Span::with_len(planned.start, net.time(chunk.size));
        let overlap = occupied.overlap(&Timeline::from_spans([span]));
        if !overlap.is_zero() {
            displaced += 1;
            max_displacement = max_displacement.max(overlap);
        }
        occupied.add(span);
        // The received chunk drains to CPU memory.
        let copy_span = engine.reserve(span.end, copy.time(chunk.size));
        makespan_end = makespan_end.max(copy_span.end).max(span.end);
    }

    let allowed_end = timeline.window.end + schedule.outcome.overhead
        // The final chunk's GPU→CPU copy may drain marginally past the
        // network's last byte; it does not hold the NIC.
        + copy.time(schedule.plan.max_chunk());
    ReplayReport {
        chunks: schedule.placed.len(),
        displaced,
        max_displacement,
        makespan_end,
        confirmed: displaced == 0 && makespan_end <= allowed_end,
    }
}

/// Replays a deliberately conflicting schedule variant: every chunk is
/// shifted `shift` earlier than planned, which should collide with
/// training traffic. Used by tests to prove the replay actually detects
/// interference.
pub fn replay_shifted(
    timeline: &IterationTimeline,
    schedule: &CkptSchedule,
    net: &TransferCost,
    copy: &TransferCost,
    shift: SimDuration,
) -> ReplayReport {
    let mut shifted = schedule.clone();
    for (_, span) in shifted.placed.iter_mut() {
        *span = Span::new(span.start - shift, span.end - shift);
    }
    replay_schedule(timeline, &shifted, net, copy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Deployment;

    fn setup(scenario: Deployment) -> (IterationTimeline, CkptSchedule, TransferCost, TransferCost) {
        let sys = scenario.build_system(3).unwrap();
        let timeline = scenario.timeline_builder().build();
        // The schedule was computed against the averaged profile; replay it
        // against the deterministic timeline, which matches when profiling
        // is noise-free. Rebuild the schedule against this exact timeline
        // for a precise comparison.
        let mut profiler = gemini_training::OnlineProfiler::new(1);
        profiler.observe(&timeline);
        let profile = profiler.profile().unwrap();
        let schedule = gemini_core::schedule::schedule_checkpoint(
            &profile,
            scenario.ckpt_bytes_per_machine(),
            scenario.instance.gpus,
            &scenario.config,
            &scenario.instance.ckpt_net_cost(),
            &scenario.instance.copy_cost(),
            scenario.instance.gpu_headroom,
        )
        .unwrap();
        let _ = sys;
        (
            timeline,
            schedule,
            scenario.instance.ckpt_net_cost(),
            scenario.instance.copy_cost(),
        )
    }

    #[test]
    fn gpt2_100b_schedule_confirmed_by_replay() {
        let (timeline, schedule, net, copy) = setup(Deployment::dense_gpt2_100b_p4d());
        let report = replay_schedule(&timeline, &schedule, &net, &copy);
        assert_eq!(report.displaced, 0, "{report:?}");
        assert!(report.confirmed, "{report:?}");
        assert!(report.chunks > 100);
    }

    #[test]
    fn gpt2_40b_p3dn_schedule_confirmed_by_replay() {
        let (timeline, schedule, net, copy) = setup(Deployment::dense_gpt2_40b_p3dn());
        let report = replay_schedule(&timeline, &schedule, &net, &copy);
        assert_eq!(report.displaced, 0, "{report:?}");
        assert!(report.confirmed, "{report:?}");
    }

    #[test]
    fn shifted_schedule_is_caught() {
        // Shifting the chunks earlier rams them into training traffic; the
        // replay must detect the displacement.
        let (timeline, schedule, net, copy) = setup(Deployment::dense_gpt2_100b_p4d());
        let report = replay_shifted(&timeline, &schedule, &net, &copy, SimDuration::from_secs(2));
        assert!(report.displaced > 0, "{report:?}");
        assert!(!report.confirmed);
        assert!(report.max_displacement > SimDuration::ZERO);
    }

    #[test]
    fn replay_of_empty_schedule_is_trivially_confirmed() {
        let (timeline, mut schedule, net, copy) = setup(Deployment::dense_gpt2_100b_p4d());
        schedule.placed.clear();
        let report = replay_schedule(&timeline, &schedule, &net, &copy);
        assert!(report.confirmed);
        assert_eq!(report.chunks, 0);
    }
}
