//! An event-driven GEMINI training campaign — the discrete-event
//! counterpart of [`crate::campaign`]'s phase-analytic simulation.
//!
//! The analytic campaign integrates closed-form cycle costs over the
//! horizon; this one schedules every iteration, failure and recovery phase
//! as events on the [`gemini_sim::Engine`]. The two are built from the same
//! measured per-phase costs, so their *effective training time ratio* must
//! agree — a cross-validation the integration tests enforce (same spirit
//! as `crate::replay` validating the checkpoint scheduler).
//!
//! Per the paper's Fig. 15 methodology, failures arrive as a Poisson
//! process; a failure that lands while a recovery is already in flight is
//! absorbed into it (the machines are idle anyway) and counted. Beyond the
//! paper's software-only simulation, a configurable fraction of failures
//! can be *hardware* failures, which additionally wait for a replacement
//! machine from the cloud operator (or a standby) — letting us test the
//! paper's §7.3 claim that "recovering training from hardware failures has
//! a similar overhead as from software failures if standby machines are
//! used".

use crate::scenario::Deployment;
use gemini_cluster::{CloudOperator, OperatorConfig};
use gemini_core::ckpt::StorageTier;
use gemini_core::GeminiError;
use gemini_sim::{Context, Engine, EventHandle, Model, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of one event-driven campaign.
#[derive(Clone, Debug)]
pub struct DesCampaignConfig {
    /// The deployment.
    pub scenario: Deployment,
    /// Simulated horizon.
    pub horizon: SimDuration,
    /// Expected failures per day across the cluster.
    pub failures_per_day: f64,
    /// Fraction of failures that are hardware failures needing machine
    /// replacement (the paper's Fig. 15 simulation uses 0).
    pub hardware_fraction: f64,
    /// Cloud-operator behaviour (replacement delays, standby pool).
    pub operator: OperatorConfig,
    /// RNG seed.
    pub seed: u64,
}

impl DesCampaignConfig {
    /// The paper's Fig. 15 configuration: software failures only.
    pub fn software_only(failures_per_day: f64, seed: u64) -> DesCampaignConfig {
        DesCampaignConfig {
            scenario: Deployment::dense_gpt2_100b_p4d(),
            horizon: SimDuration::from_hours(7 * 24),
            failures_per_day,
            hardware_fraction: 0.0,
            operator: OperatorConfig::default(),
            seed,
        }
    }
}

/// The outcome.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DesCampaignResult {
    /// Productive fraction of the horizon.
    pub effective_ratio: f64,
    /// Iterations completed (net of rollbacks).
    pub iterations: u64,
    /// Failures injected.
    pub failures: u64,
    /// Failures that arrived while a recovery was already running.
    pub absorbed_failures: u64,
    /// Hardware failures among the injected ones.
    pub hardware_failures: u64,
}

#[derive(Debug)]
enum Ev {
    IterationDone,
    Failure,
    RecoveryDone,
}

struct CampaignModel {
    iter_time: SimDuration,
    recovery_overhead: SimDuration,
    hardware_fraction: f64,
    operator: CloudOperator,
    /// Detection + serialization: the window a replacement wait can hide
    /// behind (they run concurrently, §7.3 / Fig. 14).
    overlap_window: SimDuration,
    rate_per_sec: f64,
    horizon: SimTime,
    // state
    iterations: u64,
    recovering: bool,
    pending_iteration: Option<EventHandle>,
    useful: SimDuration,
    failures: u64,
    absorbed: u64,
    hardware: u64,
}

impl CampaignModel {
    fn schedule_next_failure(&mut self, ctx: &mut Context<'_, Ev>) {
        let gap = ctx.rng().exponential(self.rate_per_sec);
        if gap.is_finite() {
            let at = ctx.now() + SimDuration::from_secs_f64(gap);
            if at < self.horizon {
                ctx.schedule_at(at, Ev::Failure);
            }
        }
    }
}

impl Model for CampaignModel {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::IterationDone => {
                if self.recovering {
                    // A stale completion from a chain the failure already
                    // cancelled logically (possible only for the primed
                    // first iteration, whose handle the model never held):
                    // drop it — RecoveryDone restarts the chain.
                    return;
                }
                self.iterations += 1;
                self.useful += self.iter_time;
                // The checkpoint for this iteration is complete (GEMINI
                // checkpoints every iteration with no overhead).
                self.pending_iteration =
                    Some(ctx.schedule_after(self.iter_time, Ev::IterationDone));
            }
            Ev::Failure => {
                self.failures += 1;
                if self.recovering {
                    // Absorbed into the recovery already in progress.
                    self.absorbed += 1;
                } else {
                    self.recovering = true;
                    // The partially-completed iteration is lost (its
                    // checkpoint never committed); nothing already counted
                    // as useful is rolled back because GEMINI committed at
                    // every iteration boundary.
                    if let Some(handle) = self.pending_iteration.take() {
                        ctx.cancel(handle);
                    }
                    let mut overhead = self.recovery_overhead;
                    if ctx.rng().bernoulli(self.hardware_fraction) {
                        self.hardware += 1;
                        // The replacement request overlaps detection and
                        // serialization; only the tail beyond that window
                        // extends the recovery.
                        let provision = self.operator.request_replacement(ctx.now(), ctx.rng());
                        let wait = provision.ready_at - ctx.now();
                        overhead += wait.saturating_sub(self.overlap_window);
                    }
                    ctx.schedule_after(overhead, Ev::RecoveryDone);
                }
                self.schedule_next_failure(ctx);
            }
            Ev::RecoveryDone => {
                self.recovering = false;
                self.pending_iteration =
                    Some(ctx.schedule_after(self.iter_time, Ev::IterationDone));
            }
        }
    }
}

/// Runs a batch of event-driven campaigns through the deterministic pool,
/// returning results in the order of `configs`.
///
/// Each campaign's engine seeds purely from its own
/// [`DesCampaignConfig::seed`], so results are independent of scheduling
/// and bit-identical at every `jobs` value; on error, the lowest-index
/// failure wins.
pub fn run_des_sweep(
    configs: &[DesCampaignConfig],
    jobs: usize,
) -> Result<Vec<DesCampaignResult>, GeminiError> {
    crate::par::try_par_map(jobs, configs.len(), |i| run_des_campaign(&configs[i]))
}

/// Runs the event-driven campaign.
pub fn run_des_campaign(config: &DesCampaignConfig) -> Result<DesCampaignResult, GeminiError> {
    let sys = config.scenario.build_system(config.seed)?;
    let gcfg = &config.scenario.config;
    let iter_time = sys.iteration_time();
    let recovery_overhead = gcfg.health_ttl
        + sys.serialize_time()
        + sys.retrieval_time(StorageTier::LocalCpu)
        + gcfg.restart_warmup;
    let overlap_window = gcfg.health_ttl + sys.serialize_time();

    let horizon = SimTime::ZERO + config.horizon;
    let mut model = CampaignModel {
        iter_time,
        recovery_overhead,
        hardware_fraction: config.hardware_fraction.clamp(0.0, 1.0),
        operator: CloudOperator::new(config.operator),
        overlap_window,
        rate_per_sec: config.failures_per_day / 86_400.0,
        horizon,
        iterations: 0,
        recovering: false,
        pending_iteration: None,
        useful: SimDuration::ZERO,
        failures: 0,
        absorbed: 0,
        hardware: 0,
    };
    let mut engine = Engine::new(config.seed ^ 0xdead_beef);
    engine.prime_after(iter_time, Ev::IterationDone);
    // Seed the failure process.
    {
        // Schedule the first failure directly through a priming event at
        // time zero would double-count; sample here instead.
        let mut rng = gemini_sim::DetRng::new(config.seed ^ 0xdead_beef).fork("first-failure");
        let gap = rng.exponential(model.rate_per_sec);
        if gap.is_finite() {
            let at = SimTime::ZERO + SimDuration::from_secs_f64(gap);
            if at < horizon {
                engine.prime_at(at, Ev::Failure);
            }
        }
    }
    engine.run(&mut model, Some(horizon), 100_000_000);

    Ok(DesCampaignResult {
        effective_ratio: (model.useful.as_secs_f64() / config.horizon.as_secs_f64())
            .clamp(0.0, 1.0),
        iterations: model.iterations,
        failures: model.failures,
        absorbed_failures: model.absorbed,
        hardware_failures: model.hardware,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, CampaignConfig, Solution};

    fn des(per_day: f64, seed: u64) -> DesCampaignResult {
        run_des_campaign(&DesCampaignConfig::software_only(per_day, seed)).unwrap()
    }

    fn des_hardware(per_day: f64, standbys: usize, seed: u64) -> DesCampaignResult {
        let mut cfg = DesCampaignConfig::software_only(per_day, seed);
        cfg.hardware_fraction = 1.0;
        cfg.operator = OperatorConfig::with_standbys(standbys);
        run_des_campaign(&cfg).unwrap()
    }

    #[test]
    fn failure_free_ratio_is_essentially_one() {
        let r = des(0.0, 1);
        assert!(r.effective_ratio > 0.999, "{}", r.effective_ratio);
        assert_eq!(r.failures, 0);
        // A week of 63.1 s iterations ≈ 9 580.
        assert!((9_000..10_000).contains(&r.iterations), "{}", r.iterations);
    }

    #[test]
    fn des_agrees_with_analytic_campaign() {
        // The cross-validation: same per-phase costs, independent
        // machinery, matching ratios (different Poisson draws, so compare
        // within a tolerance informed by the per-failure cost ≈ 430 s over
        // a 604 800 s week: each failure moves the ratio by ≈0.07%).
        for per_day in [2.0, 8.0] {
            let d = des(per_day, 11);
            let a = run_campaign(&CampaignConfig::fig15(Solution::Gemini, per_day, 11)).unwrap();
            let diff = (d.effective_ratio - a.effective_ratio).abs();
            assert!(
                diff < 0.01,
                "per_day={per_day}: DES {} vs analytic {}",
                d.effective_ratio,
                a.effective_ratio
            );
        }
    }

    #[test]
    fn ratio_degrades_with_rate() {
        let lo = des(1.0, 3).effective_ratio;
        let hi = des(8.0, 3).effective_ratio;
        assert!(hi < lo);
        assert!(hi > 0.93, "GEMINI stays efficient: {hi}");
    }

    #[test]
    fn deterministic() {
        let a = des(4.0, 9);
        let b = des(4.0, 9);
        assert_eq!(a.effective_ratio, b.effective_ratio);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn standbys_make_hardware_failures_cost_like_software_ones() {
        // §7.3: "recovering training from hardware failures has a similar
        // overhead as from software failures if standby machines are used".
        let per_day = 8.0;
        let software = des(per_day, 21).effective_ratio;
        let hw_standby = des_hardware(per_day, 2, 21).effective_ratio;
        let hw_asg = des_hardware(per_day, 0, 21).effective_ratio;
        assert!(
            (software - hw_standby).abs() < 0.01,
            "software {software:.4} vs hardware+standby {hw_standby:.4}"
        );
        // Without standbys, the 4-7 min replacement tail shows.
        assert!(hw_asg < hw_standby, "{hw_asg} vs {hw_standby}");
    }

    #[test]
    fn hardware_failures_are_counted() {
        let r = des_hardware(8.0, 0, 4);
        // Only failures that actually start a recovery draw the hardware
        // die; absorbed ones piggy-back.
        assert!(r.hardware_failures > 0);
        assert!(r.hardware_failures <= r.failures - r.absorbed_failures);
        // With hardware_fraction = 1.0 every recovery-starting failure is
        // hardware.
        assert_eq!(r.hardware_failures, r.failures - r.absorbed_failures);
    }

    #[test]
    fn des_sweep_is_bit_identical_across_job_counts() {
        let configs: Vec<DesCampaignConfig> = [(2.0, 11), (8.0, 11), (4.0, 9), (0.0, 1)]
            .iter()
            .map(|&(per_day, seed)| DesCampaignConfig::software_only(per_day, seed))
            .collect();
        let serial = run_des_sweep(&configs, 1).unwrap();
        for jobs in [2, 4] {
            let par = run_des_sweep(&configs, jobs).unwrap();
            for (s, p) in serial.iter().zip(par.iter()) {
                assert_eq!(s.effective_ratio.to_bits(), p.effective_ratio.to_bits());
                assert_eq!(s.iterations, p.iterations);
                assert_eq!(s.failures, p.failures);
            }
        }
    }

    #[test]
    fn concurrent_failures_are_absorbed_not_stacked() {
        // At an absurd failure rate most failures land mid-recovery; the
        // ratio floors at ~0 but the run terminates and counts them.
        let r = des(2_000.0, 5);
        assert!(r.failures > 1_000);
        assert!(r.absorbed_failures > 0);
        assert!(r.effective_ratio < 0.2);
    }
}
