//! Deployment scenarios and the assembled GEMINI system.

use gemini_cluster::{catalog::fsx_storage_cost, Cluster, InstanceType};
use gemini_core::ckpt::StorageTier;
use gemini_core::placement::topology::{rack_aware_mixed, Topology};
use gemini_core::schedule::{schedule_checkpoint, CkptSchedule};
use gemini_core::timing;
use gemini_core::{GeminiConfig, GeminiError, HierarchicalStore, Placement};
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::{DetRng, SimDuration};
use gemini_training::{IdleProfile, ModelConfig, OnlineProfiler, TimelineBuilder, WorkloadSpec};

/// The old name of [`Deployment`]. `Scenario` at the crate root now names
/// the builder-style run API ([`crate::Scenario`]).
#[deprecated(note = "renamed to `Deployment`; `gemini_harness::Scenario` is now the run builder")]
pub type Scenario = Deployment;

/// A training deployment: which model, on what hardware, at what scale.
#[derive(Clone, Debug)]
pub struct Deployment {
    /// The model under training.
    pub model: &'static ModelConfig,
    /// The instance type.
    pub instance: &'static InstanceType,
    /// Number of machines `N`.
    pub machines: usize,
    /// GEMINI's configuration.
    pub config: GeminiConfig,
    /// Optional rack topology; when set, Algorithm 1's placement is
    /// relabeled round-robin across racks so no placement group dies with
    /// a single top-of-rack switch (extension; §6.1 motivates it).
    pub rack_topology: Option<Topology>,
    /// The training recipe: dense ZeRO-3 (the paper's setting) or
    /// expert-parallel MoE with sparse checkpointing.
    pub workload: WorkloadSpec,
}

impl Deployment {
    /// A deployment of `model` on `machines` machines of `instance`,
    /// running an explicit [`WorkloadSpec`].
    pub fn with_workload(
        model: &'static ModelConfig,
        instance: &'static InstanceType,
        machines: usize,
        workload: WorkloadSpec,
    ) -> Deployment {
        Deployment {
            model,
            instance,
            machines,
            config: GeminiConfig::default(),
            rack_topology: None,
            workload,
        }
    }

    /// The paper's main evaluation setting: dense GPT-2 100B on 16
    /// p4d.24xlarge.
    pub fn dense_gpt2_100b_p4d() -> Deployment {
        Deployment::with_workload(
            ModelConfig::gpt2_100b(),
            InstanceType::p4d(),
            16,
            WorkloadSpec::dense(),
        )
    }

    /// The MoE variant of the main setting: GPT-2 100B re-shaped into an
    /// expert-parallel mixture-of-experts (default gating knobs) on 16
    /// p4d.24xlarge. Same nominal parameter total, sparse checkpoints.
    pub fn moe_gpt2_100b_p4d() -> Deployment {
        Deployment::with_workload(
            ModelConfig::gpt2_100b(),
            InstanceType::p4d(),
            16,
            WorkloadSpec::moe_default(),
        )
    }

    /// The Fig. 16 setting: dense GPT-2 40B on 16 p3dn.24xlarge.
    pub fn dense_gpt2_40b_p3dn() -> Deployment {
        Deployment::with_workload(
            ModelConfig::gpt2_40b(),
            InstanceType::p3dn(),
            16,
            WorkloadSpec::dense(),
        )
    }

    /// The old dense-only name of [`Deployment::dense_gpt2_100b_p4d`].
    #[deprecated(note = "workloads are explicit now; use `dense_gpt2_100b_p4d` (or \
                         `moe_gpt2_100b_p4d` / `with_workload`)")]
    pub fn gpt2_100b_p4d() -> Deployment {
        Deployment::dense_gpt2_100b_p4d()
    }

    /// The old dense-only name of [`Deployment::dense_gpt2_40b_p3dn`].
    #[deprecated(note = "workloads are explicit now; use `dense_gpt2_40b_p3dn` (or \
                         `with_workload`)")]
    pub fn gpt2_40b_p3dn() -> Deployment {
        Deployment::dense_gpt2_40b_p3dn()
    }

    /// Wraps this deployment in a shareable copy-on-write snapshot: the
    /// service catalog entry form. Queries call
    /// [`gemini_core::Snapshot::fork`] for a per-tenant view that reads
    /// the shared base for free and clones only if it mutates (e.g. a
    /// what-if that resizes the fleet).
    pub fn snapshot(self) -> gemini_core::Snapshot<Deployment> {
        gemini_core::Snapshot::new(self)
    }

    /// Per-machine checkpoint shard size.
    pub fn ckpt_bytes_per_machine(&self) -> ByteSize {
        self.model.checkpoint_bytes_per_machine(self.machines)
    }

    /// Total model-state bytes.
    pub fn ckpt_bytes_total(&self) -> ByteSize {
        self.model.checkpoint_bytes_total()
    }

    /// The remote persistent storage cost (FSx, 20 Gbps aggregate).
    pub fn storage_cost(&self) -> TransferCost {
        fsx_storage_cost()
    }

    /// Builds the iteration-timeline generator for this scenario.
    pub fn timeline_builder(&self) -> TimelineBuilder {
        TimelineBuilder::with_workload(self.model, self.instance, self.machines, self.workload)
    }

    /// Runs the online profiler over `config.profile_iterations` jittered
    /// iterations (the paper's warm-up phase, §5.4).
    pub fn profile(&self, rng: &mut DetRng) -> IdleProfile {
        let builder = self.timeline_builder();
        let mut profiler = OnlineProfiler::new(self.config.profile_iterations);
        let mut prng = rng.fork("profiling");
        for _ in 0..self.config.profile_iterations {
            profiler.observe(&builder.build_jittered(&mut prng, 0.03));
        }
        profiler
            .profile()
            .expect("profiler window was filled exactly")
    }

    /// The placement in force: Algorithm 1's mixed strategy, relabeled
    /// rack-aware when a topology is configured.
    pub fn placement(&self) -> Result<Placement, GeminiError> {
        match &self.rack_topology {
            Some(topology) => rack_aware_mixed(topology, self.config.replicas),
            None => Placement::mixed(self.machines, self.config.replicas),
        }
    }

    /// Assembles the full system (placement, stores, schedule).
    pub fn build_system(&self, seed: u64) -> Result<GeminiSystem, GeminiError> {
        let mut rng = DetRng::new(seed);
        let placement = self.placement()?;
        let store = HierarchicalStore::new(placement.clone(), self.ckpt_bytes_per_machine());
        store.validate_memory(self.instance.cpu_mem)?;
        let profile = self.profile(&mut rng);
        let schedule = schedule_checkpoint(
            &profile,
            self.ckpt_bytes_per_machine(),
            self.instance.gpus,
            &self.config,
            &self.instance.ckpt_net_cost(),
            &self.instance.copy_cost(),
            self.instance.gpu_headroom,
        )?;
        Ok(GeminiSystem {
            scenario: self.clone(),
            cluster: Cluster::new(self.instance, self.machines),
            placement,
            store,
            profile,
            schedule,
            rng,
        })
    }
}

/// A fully assembled GEMINI deployment, ready to train and fail.
pub struct GeminiSystem {
    /// The scenario it was built from.
    pub scenario: Deployment,
    /// The machine fleet.
    pub cluster: Cluster,
    /// The checkpoint placement in force.
    pub placement: Placement,
    /// The hierarchical checkpoint store.
    pub store: HierarchicalStore,
    /// The profiled idle-span profile.
    pub profile: IdleProfile,
    /// The per-iteration checkpoint schedule.
    pub schedule: CkptSchedule,
    /// The system's deterministic RNG.
    pub rng: DetRng,
}

impl GeminiSystem {
    /// Iteration time with checkpointing enabled.
    pub fn iteration_time(&self) -> SimDuration {
        self.schedule.outcome.iteration_time
    }

    /// Retrieval time from a given tier for one machine's shard.
    pub fn retrieval_time(&self, tier: StorageTier) -> SimDuration {
        timing::retrieval_time(
            tier,
            self.scenario.ckpt_bytes_per_machine(),
            self.scenario.machines,
            &self.scenario.instance.ckpt_net_cost(),
            &self.scenario.instance.copy_cost(),
            &self.scenario.storage_cost(),
        )
    }

    /// Time to serialize the replicas a machine holds when a failure
    /// triggers `torch.save()` (`m` shards: its own + hosted peers').
    pub fn serialize_time(&self) -> SimDuration {
        self.scenario.config.serialize_time(
            self.scenario.ckpt_bytes_per_machine() * self.scenario.config.replicas as u64,
        )
    }

    /// GEMINI's bulk checkpoint time (Figs. 11/12).
    pub fn bulk_ckpt_time(&self) -> SimDuration {
        timing::gemini_ckpt_time(
            self.scenario.ckpt_bytes_per_machine(),
            self.scenario.config.replicas,
            &self.scenario.instance.ckpt_net_cost(),
            &self.scenario.instance.copy_cost(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_scenario_assembles() {
        let sys = Deployment::dense_gpt2_100b_p4d().build_system(1).unwrap();
        assert_eq!(sys.cluster.len(), 16);
        assert_eq!(sys.placement.machines(), 16);
        assert!(sys.schedule.is_interference_free());
        // 62-65 s iterations.
        let iter = sys.iteration_time().as_secs_f64();
        assert!((58.0..68.0).contains(&iter), "iter = {iter:.1}");
    }

    #[test]
    fn serialize_time_is_about_162s() {
        // §7.3: 162 s to serialize the two checkpoint replicas a machine
        // holds (2 × 75 GB at ≈0.93 GB/s).
        let sys = Deployment::dense_gpt2_100b_p4d().build_system(1).unwrap();
        let t = sys.serialize_time().as_secs_f64();
        assert!((t - 161.3).abs() < 3.0, "t = {t:.1}");
    }

    #[test]
    fn retrieval_ladder() {
        let sys = Deployment::dense_gpt2_100b_p4d().build_system(1).unwrap();
        let local = sys.retrieval_time(StorageTier::LocalCpu);
        let remote = sys.retrieval_time(StorageTier::RemoteCpu);
        let persist = sys.retrieval_time(StorageTier::Persistent);
        assert!(local < remote && remote < persist);
        assert!(remote.as_secs_f64() < 5.0);
    }

    #[test]
    fn deterministic_build() {
        let a = Deployment::dense_gpt2_100b_p4d().build_system(7).unwrap();
        let b = Deployment::dense_gpt2_100b_p4d().build_system(7).unwrap();
        assert_eq!(a.profile.iteration_time, b.profile.iteration_time);
        assert_eq!(
            a.schedule.outcome.ckpt_network_time,
            b.schedule.outcome.ckpt_network_time
        );
    }

    #[test]
    fn rack_aware_scenario_assembles_and_spans_racks() {
        let mut scenario = Deployment::dense_gpt2_100b_p4d();
        scenario.rack_topology = Some(Topology::contiguous(16, 4).unwrap());
        let sys = scenario.build_system(3).unwrap();
        let topo = scenario.rack_topology.as_ref().unwrap();
        for group in sys.placement.groups() {
            let racks: std::collections::BTreeSet<usize> = group
                .members
                .iter()
                .map(|&m| topo.rack_of(m).unwrap())
                .collect();
            assert_eq!(racks.len(), group.members.len());
        }
        assert!(sys.schedule.is_interference_free());
    }

    #[test]
    fn p3dn_scenario_assembles() {
        let sys = Deployment::dense_gpt2_40b_p3dn().build_system(2).unwrap();
        assert!(sys.schedule.outcome.overhead < SimDuration::from_secs(1));
    }
}
