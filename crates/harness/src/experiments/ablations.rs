//! Ablations of GEMINI's design choices — extensions beyond the paper's
//! figures, exercising the same machinery:
//!
//! * **replica count `m`** — recovery probability vs checkpoint network
//!   cost (the paper fixes `m = 2` arguing it suffices; this quantifies
//!   the trade-off);
//! * **idle-span coefficient `γ`** — Algorithm 2's safety margin vs the
//!   risk of overflowing into the update phase;
//! * **sub-buffer count `p`** — the pipeline-depth ablation behind
//!   Fig. 5d;
//! * **standby machines** — replacement latency vs reserved capacity.

use crate::drill::{run_drill, DrillConfig};
use crate::report::{secs, Table};
use crate::scenario::Deployment;
use gemini_cluster::OperatorConfig;
use gemini_core::pipeline::run_pipeline;
use gemini_core::placement::probability::corollary1_probability;
use gemini_core::placement::topology::{rack_aware_mixed, rack_survival_rate, Topology};
use gemini_core::schedule::schedule_checkpoint;
use gemini_core::timing::gemini_ckpt_time;
use gemini_core::GeminiConfig;
use gemini_core::Placement;
use gemini_sim::DetRng;

/// One row of the replica-count ablation.
#[derive(Clone, Debug)]
pub struct ReplicaRow {
    /// Replicas `m`.
    pub replicas: usize,
    /// P(recover from CPU memory) with k = 2 simultaneous losses.
    pub p_recover_k2: f64,
    /// P(recover) with k = 3.
    pub p_recover_k3: f64,
    /// Bulk checkpoint time (s).
    pub ckpt_secs: f64,
    /// CPU memory needed per host (GB, both buffers).
    pub cpu_mem_gb: f64,
    /// Whether per-iteration checkpointing stays interference-free.
    pub interference_free: bool,
}

/// Sweeps the replica count on the GPT-2 100B / 16×p4d scenario.
pub fn replicas_ablation() -> Vec<ReplicaRow> {
    let scenario = Deployment::dense_gpt2_100b_p4d();
    let per_machine = scenario.ckpt_bytes_per_machine();
    (1..=4)
        .map(|m| {
            let mut s = scenario.clone();
            s.config.replicas = m;
            let (interference_free, _) = match s.build_system(5) {
                Ok(sys) => (sys.schedule.is_interference_free(), ()),
                Err(_) => (false, ()), // e.g. CPU memory exhausted
            };
            ReplicaRow {
                replicas: m,
                p_recover_k2: if m > 2 {
                    1.0
                } else {
                    corollary1_probability(scenario.machines, m, 2)
                },
                p_recover_k3: if m > 3 {
                    1.0
                } else {
                    corollary1_probability(scenario.machines, m, 3)
                },
                ckpt_secs: gemini_ckpt_time(
                    per_machine,
                    m,
                    &scenario.instance.ckpt_net_cost(),
                    &scenario.instance.copy_cost(),
                )
                .as_secs_f64(),
                cpu_mem_gb: (per_machine * m as u64 * 2).as_gb_f64(),
                interference_free,
            }
        })
        .collect()
}

/// Renders the replica ablation.
pub fn replicas_table() -> Table {
    let mut t = Table::new(
        "Ablation: checkpoint replicas m (GPT-2 100B, 16 p4d)",
        &[
            "m",
            "P(recover) k=2",
            "P(recover) k=3",
            "Ckpt time (s)",
            "CPU mem/host (GB)",
            "Interference-free",
        ],
    );
    for r in replicas_ablation() {
        t.push(vec![
            r.replicas.to_string(),
            format!("{:.3}", r.p_recover_k2),
            format!("{:.3}", r.p_recover_k3),
            format!("{:.2}", r.ckpt_secs),
            format!("{:.0}", r.cpu_mem_gb),
            r.interference_free.to_string(),
        ]);
    }
    t
}

/// One row of the γ-sensitivity ablation.
#[derive(Clone, Debug)]
pub struct GammaRow {
    /// The coefficient γ.
    pub gamma: f64,
    /// Resulting iteration-time overhead (s).
    pub overhead_secs: f64,
    /// Chunks scheduled into the final (elastic) span.
    pub final_span_chunks: usize,
}

/// Sweeps γ on the tighter GPT-2 40B / p3dn scenario, where idle time is
/// scarce enough for γ to matter.
pub fn gamma_ablation() -> Vec<GammaRow> {
    let scenario = Deployment::dense_gpt2_40b_p3dn();
    let mut rng = DetRng::new(5);
    let profile = scenario.profile(&mut rng);
    [0.2, 0.4, 0.6, 0.8, 1.0]
        .iter()
        .map(|&gamma| {
            let cfg = GeminiConfig {
                gamma,
                ..scenario.config
            };
            let sched = schedule_checkpoint(
                &profile,
                scenario.ckpt_bytes_per_machine(),
                scenario.instance.gpus,
                &cfg,
                &scenario.instance.ckpt_net_cost(),
                &scenario.instance.copy_cost(),
                scenario.instance.gpu_headroom,
            )
            .expect("schedule succeeds");
            let last = profile.spans.len() - 1;
            GammaRow {
                gamma,
                overhead_secs: sched.outcome.overhead.as_secs_f64(),
                final_span_chunks: sched
                    .plan
                    .chunks
                    .iter()
                    .filter(|c| c.span_index == last)
                    .count(),
            }
        })
        .collect()
}

/// Renders the γ ablation.
pub fn gamma_table() -> Table {
    let mut t = Table::new(
        "Ablation: idle-span coefficient gamma (GPT-2 40B, 16 p3dn)",
        &["gamma", "Overhead (s)", "Chunks pushed to final span"],
    );
    for r in gamma_ablation() {
        t.push(vec![
            format!("{:.1}", r.gamma),
            format!("{:.3}", r.overhead_secs),
            r.final_span_chunks.to_string(),
        ]);
    }
    t
}

/// One row of the sub-buffer (pipeline-depth) ablation.
#[derive(Clone, Debug)]
pub struct SubBufferRow {
    /// Sub-buffers `p`.
    pub sub_buffers: usize,
    /// NIC occupancy of the checkpoint chunk stream (s).
    pub net_occupancy_secs: f64,
    /// Bubble time trapped on the NIC (s).
    pub bubbles_secs: f64,
}

/// Sweeps the pipeline depth for the 100B checkpoint stream.
pub fn sub_buffers_ablation() -> Vec<SubBufferRow> {
    let scenario = Deployment::dense_gpt2_100b_p4d();
    let chunk = scenario.config.sub_buffer_size() * scenario.instance.gpus as u64;
    let n_chunks = scenario.ckpt_bytes_per_machine().div_ceil_by(chunk) as usize;
    let chunks = vec![chunk; n_chunks];
    let net = scenario.instance.ckpt_net_cost();
    let copy = scenario.instance.copy_cost();
    [1usize, 2, 4, 8]
        .iter()
        .map(|&p| {
            let r = run_pipeline(&chunks, p, &net, &copy);
            SubBufferRow {
                sub_buffers: p,
                net_occupancy_secs: r.net_occupancy.as_secs_f64(),
                bubbles_secs: r.net_bubbles.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the sub-buffer ablation.
pub fn sub_buffers_table() -> Table {
    let mut t = Table::new(
        "Ablation: pipeline sub-buffers p (GPT-2 100B checkpoint stream)",
        &["p", "NIC occupancy (s)", "NIC bubbles (s)"],
    );
    for r in sub_buffers_ablation() {
        t.push(vec![
            r.sub_buffers.to_string(),
            secs(r.net_occupancy_secs),
            format!("{:.3}", r.bubbles_secs),
        ]);
    }
    t
}

/// One row of the rack-topology ablation.
#[derive(Clone, Debug)]
pub struct RackRow {
    /// Number of racks the 16 machines are spread over.
    pub racks: usize,
    /// Fraction of single-rack (switch) failures the rack-oblivious mixed
    /// placement survives from CPU memory.
    pub oblivious_survival: f64,
    /// Same for the rack-aware placement.
    pub aware_survival: f64,
}

/// Sweeps rack counts for the 16-machine, m = 2 deployment: correlated
/// switch failures vs placement awareness (extension; motivated by §6.1's
/// network-failure discussion).
pub fn rack_ablation() -> Vec<RackRow> {
    let n = 16;
    let m = 2;
    [2usize, 4, 8, 16]
        .iter()
        .map(|&racks| {
            let topology = Topology::contiguous(n, racks).expect("valid topology");
            let oblivious = Placement::mixed(n, m).expect("valid placement");
            let aware = rack_aware_mixed(&topology, m).expect("valid placement");
            RackRow {
                racks,
                oblivious_survival: rack_survival_rate(&oblivious, &topology),
                aware_survival: rack_survival_rate(&aware, &topology),
            }
        })
        .collect()
}

/// Renders the rack ablation.
pub fn rack_table() -> Table {
    let mut t = Table::new(
        "Extension: rack-aware placement vs top-of-rack switch failures (N=16, m=2)",
        &["Racks", "Oblivious survival", "Rack-aware survival"],
    );
    for r in rack_ablation() {
        t.push(vec![
            r.racks.to_string(),
            format!("{:.2}", r.oblivious_survival),
            format!("{:.2}", r.aware_survival),
        ]);
    }
    t
}

/// One row of the standby-machine ablation.
#[derive(Clone, Debug)]
pub struct StandbyRow {
    /// Pre-allocated standby machines.
    pub standbys: usize,
    /// Replacement wait during the drill (s).
    pub replacement_wait_secs: f64,
    /// Total downtime (s).
    pub total_downtime_secs: f64,
}

/// Sweeps the standby pool on the Fig. 14 drill.
pub fn standby_ablation() -> Vec<StandbyRow> {
    [0usize, 1, 2]
        .iter()
        .map(|&standbys| {
            let mut cfg = DrillConfig::fig14();
            cfg.operator = OperatorConfig {
                standbys,
                ..OperatorConfig::default()
            };
            let r = run_drill(&cfg).expect("drill recovers");
            StandbyRow {
                standbys,
                replacement_wait_secs: r.replacement_wait.as_secs_f64(),
                total_downtime_secs: r.total_downtime.as_secs_f64(),
            }
        })
        .collect()
}

/// Renders the standby ablation.
pub fn standby_table() -> Table {
    let mut t = Table::new(
        "Ablation: standby machines (hardware-failure drill)",
        &["Standbys", "Replacement wait (s)", "Total downtime (s)"],
    );
    for r in standby_ablation() {
        t.push(vec![
            r.standbys.to_string(),
            secs(r.replacement_wait_secs),
            secs(r.total_downtime_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_replicas_better_probability_higher_cost() {
        let rows = replicas_ablation();
        assert_eq!(rows.len(), 4);
        for w in rows.windows(2) {
            assert!(w[1].p_recover_k2 >= w[0].p_recover_k2);
            assert!(w[1].cpu_mem_gb > w[0].cpu_mem_gb);
        }
        // m = 1 cannot survive any machine loss involving its only copy.
        assert!(rows[0].p_recover_k2 < 0.2);
        // m = 2 (the paper's choice) recovers 93.3% of double failures
        // while staying interference-free.
        assert!((rows[1].p_recover_k2 - 0.933).abs() < 0.001);
        assert!(rows[1].interference_free);
        // m = 3 doubles the checkpoint time versus m = 2.
        assert!(rows[2].ckpt_secs > 1.9 * rows[1].ckpt_secs);
    }

    #[test]
    fn gamma_trades_margin_for_final_span_pressure() {
        let rows = gamma_ablation();
        // Smaller γ pushes more chunks into the final span.
        assert!(rows[0].final_span_chunks >= rows.last().unwrap().final_span_chunks);
        // The paper's γ = 0.8 keeps overhead at zero here.
        let g08 = rows.iter().find(|r| (r.gamma - 0.8).abs() < 1e-9).unwrap();
        assert_eq!(g08.overhead_secs, 0.0);
    }

    #[test]
    fn pipeline_depth_two_suffices_on_p4d() {
        let rows = sub_buffers_ablation();
        let p1 = &rows[0];
        let p2 = &rows[1];
        let p4 = &rows[2];
        assert!(p1.bubbles_secs > 0.5, "p=1 bubbles = {}", p1.bubbles_secs);
        assert_eq!(p2.bubbles_secs, 0.0);
        assert_eq!(p4.bubbles_secs, 0.0);
        assert!(p2.net_occupancy_secs < p1.net_occupancy_secs);
    }

    #[test]
    fn rack_awareness_survives_switch_failures() {
        let rows = rack_ablation();
        // Machines packed 8-per-rack or 4-per-rack: oblivious groups sit
        // inside racks and die with them; rack-aware groups span racks.
        for r in &rows {
            if r.racks < 16 {
                assert_eq!(r.oblivious_survival, 0.0, "racks={}", r.racks);
                assert_eq!(r.aware_survival, 1.0, "racks={}", r.racks);
            } else {
                // One machine per rack: a rack failure is a single-machine
                // failure — both placements survive (k < m).
                assert_eq!(r.oblivious_survival, 1.0);
                assert_eq!(r.aware_survival, 1.0);
            }
        }
    }

    #[test]
    fn standbys_cut_downtime_monotonically() {
        let rows = standby_ablation();
        assert!(rows[0].replacement_wait_secs > 240.0);
        assert!(rows[1].replacement_wait_secs < 60.0);
        assert!(rows[1].total_downtime_secs < rows[0].total_downtime_secs);
    }
}
