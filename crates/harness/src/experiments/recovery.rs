//! Figures 6 and 14: recovery mechanisms and the overhead breakdown.

use crate::drill::{run_drill, DrillConfig, DrillReport};
use crate::report::{secs, Table};
use gemini_cluster::FailureKind;

/// One mechanism of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// The mechanism.
    pub mechanism: &'static str,
    /// Which storage the checkpoints come from.
    pub source: &'static str,
    /// Measured retrieval time (s).
    pub retrieval_secs: f64,
    /// Measured total downtime (s).
    pub downtime_secs: f64,
    /// The iteration recovered to (failure struck during iteration 4).
    pub resumed_from: u64,
}

/// Regenerates Figure 6's comparison of recovery mechanisms: existing
/// solutions always fetch from remote persistent storage (6a); GEMINI
/// recovers software failures from local CPU memory (6b) and hardware
/// failures from surviving peers' CPU memory (6c).
pub fn fig6() -> Vec<Fig6Row> {
    let mut rows = Vec::new();
    // (6b) GEMINI, software failure: local checkpoints.
    let mut sw = DrillConfig::fig14();
    sw.failures = vec![(5, FailureKind::Software)];
    let r = run_drill(&sw).expect("software drill recovers");
    rows.push(Fig6Row {
        mechanism: "GEMINI, software failure (Fig. 6b)",
        source: "local CPU memory",
        retrieval_secs: r.retrieval_time.as_secs_f64(),
        downtime_secs: r.total_downtime.as_secs_f64(),
        resumed_from: r.resumed_from_iteration,
    });
    // (6c) GEMINI, two machines replaced: peers' CPU memory.
    let mut hw = DrillConfig::fig14();
    hw.failures = vec![(1, FailureKind::Hardware), (3, FailureKind::Hardware)];
    let r = run_drill(&hw).expect("hardware drill recovers");
    rows.push(Fig6Row {
        mechanism: "GEMINI, 2 machines replaced (Fig. 6c)",
        source: "remote CPU memory",
        retrieval_secs: r.retrieval_time.as_secs_f64(),
        downtime_secs: r.total_downtime.as_secs_f64(),
        resumed_from: r.resumed_from_iteration,
    });
    // (6a) Existing solutions: persistent storage regardless of failure
    // type. Emulated by wiping a whole placement group, which forces
    // GEMINI down the same path.
    let mut existing = DrillConfig::fig14();
    existing.failures = vec![(0, FailureKind::Hardware), (1, FailureKind::Hardware)];
    let r = run_drill(&existing).expect("fallback drill recovers");
    rows.push(Fig6Row {
        mechanism: "Existing solutions / GEMINI fallback (Fig. 6a)",
        source: "remote persistent storage",
        retrieval_secs: r.retrieval_time.as_secs_f64(),
        downtime_secs: r.total_downtime.as_secs_f64(),
        resumed_from: r.resumed_from_iteration,
    });
    rows
}

/// Renders Figure 6.
pub fn fig6_table() -> Table {
    let mut t = Table::new(
        "Figure 6: recovery mechanisms (failure during iteration 4)",
        &[
            "Mechanism",
            "Checkpoint source",
            "Retrieval (s)",
            "Downtime (s)",
            "Resumed from",
        ],
    );
    for r in fig6() {
        t.push(vec![
            r.mechanism.to_string(),
            r.source.to_string(),
            secs(r.retrieval_secs),
            secs(r.downtime_secs),
            r.resumed_from.to_string(),
        ]);
    }
    t
}

/// Runs the Fig. 14 drill (GPT-2 100B, one hardware failure during
/// iteration 4, one instance replaced).
pub fn fig14() -> DrillReport {
    run_drill(&DrillConfig::fig14()).expect("the fig14 drill always recovers")
}

/// Renders Figure 14.
pub fn fig14_table() -> Table {
    let r = fig14();
    let mut t = Table::new(
        "Figure 14: recovery overheads, GPT-2 100B, 1 hardware failure",
        &["Phase", "Time (s)", "Paper"],
    );
    t.push(vec![
        "Failure detection".into(),
        secs(r.detect_latency.as_secs_f64()),
        "15 s".into(),
    ]);
    t.push(vec![
        "Checkpoint serialization".into(),
        secs(r.serialize_time.as_secs_f64()),
        "162 s".into(),
    ]);
    t.push(vec![
        "Instance replacement (overlaps)".into(),
        secs(r.replacement_wait.as_secs_f64()),
        "4-7 min".into(),
    ]);
    t.push(vec![
        "Checkpoint retrieval".into(),
        secs(r.retrieval_time.as_secs_f64()),
        "< 3 s".into(),
    ]);
    t.push(vec![
        "Restart warmup".into(),
        secs(r.warmup_time.as_secs_f64()),
        "> 4 min".into(),
    ]);
    t.push(vec![
        "Total downtime".into(),
        secs(r.total_downtime.as_secs_f64()),
        "~12 min (hardware)".into(),
    ]);
    t.push(vec![
        "Resumed from iteration".into(),
        r.resumed_from_iteration.to_string(),
        format!("iteration {} failed", r.failed_iteration),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_mechanism_ladder() {
        let rows = fig6();
        assert_eq!(rows.len(), 3);
        // Local < remote CPU ≪ persistent for retrieval.
        assert!(rows[0].retrieval_secs < rows[1].retrieval_secs);
        assert!(rows[1].retrieval_secs * 20.0 < rows[2].retrieval_secs);
        // CPU-memory recoveries keep iteration 3; the fallback loses
        // everything back to the initial persisted state.
        assert_eq!(rows[0].resumed_from, 3);
        assert_eq!(rows[1].resumed_from, 3);
        assert_eq!(rows[2].resumed_from, 0);
    }

    #[test]
    fn fig14_breakdown_matches_paper() {
        let r = fig14();
        assert!((10.0..=17.0).contains(&r.detect_latency.as_secs_f64()));
        assert!((155.0..=170.0).contains(&r.serialize_time.as_secs_f64()));
        assert!(r.retrieval_time.as_secs_f64() < 5.0);
        let total_min = r.total_downtime.as_secs_f64() / 60.0;
        assert!((9.0..=14.0).contains(&total_min), "{total_min:.1} min");
    }
}
