//! Table 1 (instance memory) and Table 2 (model configurations).

use crate::report::Table;
use gemini_cluster::TABLE1_INSTANCES;
use gemini_training::TABLE2_MODELS;

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Instance name.
    pub name: &'static str,
    /// Cloud provider.
    pub cloud: &'static str,
    /// GPU description, e.g. "8 A100".
    pub gpus: String,
    /// Total GPU memory (GB, vendor convention).
    pub gpu_mem_gb: f64,
    /// CPU memory (GB).
    pub cpu_mem_gb: f64,
}

/// Regenerates Table 1 from the catalog.
pub fn table1() -> Vec<Table1Row> {
    TABLE1_INSTANCES
        .iter()
        .map(|i| Table1Row {
            name: i.name,
            cloud: i.cloud,
            gpus: format!(
                "{} {}",
                i.gpus,
                if i.gpu_peak_flops > 200e12 {
                    "A100"
                } else {
                    "V100"
                }
            ),
            gpu_mem_gb: i.total_gpu_mem().as_bytes() as f64 / (1u64 << 30) as f64,
            cpu_mem_gb: i.cpu_mem.as_gb_f64(),
        })
        .collect()
}

/// Renders Table 1.
pub fn table1_table() -> Table {
    let mut t = Table::new(
        "Table 1: GPU vs CPU memory of cloud GPU instances",
        &[
            "Instance",
            "Cloud",
            "GPU",
            "GPU memory (GB)",
            "CPU memory (GB)",
        ],
    );
    for r in table1() {
        t.push(vec![
            r.name.to_string(),
            r.cloud.to_string(),
            r.gpus,
            format!("{:.0}", r.gpu_mem_gb),
            format!("{:.0}", r.cpu_mem_gb),
        ]);
    }
    t
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Model name.
    pub name: &'static str,
    /// Hidden size.
    pub hidden: u64,
    /// Intermediate size.
    pub intermediate: u64,
    /// Layer count.
    pub layers: u32,
    /// Attention heads.
    pub heads: u32,
    /// Exact parameter count derived from the architecture.
    pub exact_params_b: f64,
    /// Checkpoint size per GPU on 128 GPUs (GB).
    pub ckpt_per_gpu_gb: f64,
}

/// Regenerates Table 2, extended with derived sizing.
pub fn table2() -> Vec<Table2Row> {
    TABLE2_MODELS
        .iter()
        .map(|m| Table2Row {
            name: m.name,
            hidden: m.hidden,
            intermediate: m.intermediate,
            layers: m.layers,
            heads: m.heads,
            exact_params_b: m.exact_params() as f64 / 1e9,
            ckpt_per_gpu_gb: m.checkpoint_bytes_per_gpu(128).as_gb_f64(),
        })
        .collect()
}

/// Renders Table 2.
pub fn table2_table() -> Table {
    let mut t = Table::new(
        "Table 2: model configurations",
        &[
            "Model",
            "Hidden",
            "Intermediate",
            "#Layers",
            "#AH",
            "Derived params (B)",
            "Ckpt/GPU @128 (GB)",
        ],
    );
    for r in table2() {
        t.push(vec![
            r.name.to_string(),
            r.hidden.to_string(),
            r.intermediate.to_string(),
            r.layers.to_string(),
            r.heads.to_string(),
            format!("{:.1}", r.exact_params_b),
            format!("{:.2}", r.ckpt_per_gpu_gb),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        let rows = table1();
        assert_eq!(rows.len(), 7);
        let p4d = rows.iter().find(|r| r.name == "p4d.24xlarge").unwrap();
        assert_eq!(p4d.gpu_mem_gb, 320.0);
        assert_eq!(p4d.cpu_mem_gb, 1152.0);
        assert!(p4d.gpus.contains("A100"));
    }

    #[test]
    fn table2_has_gpt2_100b_at_9_4gb_per_gpu() {
        let rows = table2();
        assert_eq!(rows.len(), 8);
        let r = rows.iter().find(|r| r.name == "GPT-2 100B").unwrap();
        assert!((r.ckpt_per_gpu_gb - 9.375).abs() < 0.01);
        assert_eq!(r.layers, 124);
    }
}
