//! Figures 7, 8 and 13: training throughput with and without GEMINI.

use crate::report::{secs, Table};
use crate::scenario::Deployment;
use gemini_cluster::InstanceType;
use gemini_training::ModelConfig;

/// One model's throughput numbers.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Model name.
    pub model: &'static str,
    /// Iteration time without checkpointing (s).
    pub baseline_iteration: f64,
    /// Iteration time with GEMINI checkpointing every iteration (s).
    pub gemini_iteration: f64,
    /// Network idle time without checkpointing (s).
    pub idle_without: f64,
    /// NIC time consumed by GEMINI's checkpoint traffic (s).
    pub ckpt_time: f64,
    /// Idle time remaining with GEMINI (s).
    pub idle_with: f64,
}

fn run(model: &'static ModelConfig, instance: &'static InstanceType) -> ThroughputRow {
    let scenario = Deployment::with_workload(
        model,
        instance,
        16,
        gemini_training::WorkloadSpec::dense(),
    );
    let sys = scenario
        .build_system(11)
        .expect("paper scenarios always assemble");
    let o = &sys.schedule.outcome;
    ThroughputRow {
        model: model.name,
        baseline_iteration: o.baseline_iteration.as_secs_f64(),
        gemini_iteration: o.iteration_time.as_secs_f64(),
        idle_without: sys.profile.total_idle().as_secs_f64(),
        ckpt_time: o.ckpt_network_time.as_secs_f64(),
        idle_with: o.remaining_idle.as_secs_f64(),
    }
}

/// Figure 7: iteration times of the three 100B models on 16 p4d, without
/// checkpointing and with GEMINI.
pub fn fig7() -> Vec<ThroughputRow> {
    ["GPT-2 100B", "RoBERTa 100B", "BERT 100B"]
        .iter()
        .map(|n| run(ModelConfig::by_name(n).unwrap(), InstanceType::p4d()))
        .collect()
}

/// Figure 8: network idle time and checkpoint time for the same models.
pub fn fig8() -> Vec<ThroughputRow> {
    fig7()
}

/// Figure 13: the p3dn generalization (10B–40B models).
pub fn fig13() -> Vec<ThroughputRow> {
    [
        "GPT-2 10B",
        "GPT-2 20B",
        "GPT-2 40B",
        "RoBERTa 40B",
        "BERT 40B",
    ]
    .iter()
    .map(|n| run(ModelConfig::by_name(n).unwrap(), InstanceType::p3dn()))
    .collect()
}

/// Renders Figure 7.
pub fn fig7_table() -> Table {
    let mut t = Table::new(
        "Figure 7: iteration time on 16 p4d.24xlarge (s)",
        &["Model", "No checkpoint", "GEMINI", "Overhead"],
    );
    for r in fig7() {
        t.push(vec![
            r.model.to_string(),
            secs(r.baseline_iteration),
            secs(r.gemini_iteration),
            format!(
                "{:.2}%",
                (r.gemini_iteration / r.baseline_iteration - 1.0) * 100.0
            ),
        ]);
    }
    t
}

/// Renders Figure 8.
pub fn fig8_table() -> Table {
    let mut t = Table::new(
        "Figure 8: network idle time on 16 p4d.24xlarge (s)",
        &[
            "Model",
            "Idle w/o ckpt",
            "GEMINI ckpt time",
            "Idle w/ GEMINI",
        ],
    );
    for r in fig8() {
        t.push(vec![
            r.model.to_string(),
            secs(r.idle_without),
            secs(r.ckpt_time),
            secs(r.idle_with),
        ]);
    }
    t
}

/// Renders Figure 13 (both panels).
pub fn fig13_table() -> Table {
    let mut t = Table::new(
        "Figure 13: 16 p3dn.24xlarge — iteration time and idle time (s)",
        &[
            "Model",
            "Iter no-ckpt",
            "Iter GEMINI",
            "Idle w/o ckpt",
            "Ckpt time",
            "Idle w/ GEMINI",
        ],
    );
    for r in fig13() {
        t.push(vec![
            r.model.to_string(),
            secs(r.baseline_iteration),
            secs(r.gemini_iteration),
            secs(r.idle_without),
            secs(r.ckpt_time),
            secs(r.idle_with),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_gemini_adds_no_overhead() {
        for r in fig7() {
            let overhead = r.gemini_iteration / r.baseline_iteration - 1.0;
            assert!(overhead < 0.005, "{}: {overhead:.4}", r.model);
            assert!((58.0..70.0).contains(&r.baseline_iteration), "{}", r.model);
        }
    }

    #[test]
    fn fig8_idle_time_remains() {
        for r in fig8() {
            assert!(r.ckpt_time < 3.0, "{}: ckpt {:.2}s", r.model, r.ckpt_time);
            assert!(r.idle_with > 0.0, "{}", r.model);
            // Idle w/o ≈ ckpt + idle w/ (the traffic fills idle time).
            let sum = r.ckpt_time + r.idle_with;
            assert!(
                (sum - r.idle_without).abs() < 0.5,
                "{}: {sum:.1} vs {:.1}",
                r.model,
                r.idle_without
            );
        }
    }

    #[test]
    fn fig13_models_scale_with_size() {
        let rows = fig13();
        assert_eq!(rows.len(), 5);
        let t10 = rows.iter().find(|r| r.model == "GPT-2 10B").unwrap();
        let t40 = rows.iter().find(|r| r.model == "GPT-2 40B").unwrap();
        assert!(t40.baseline_iteration > 3.0 * t10.baseline_iteration);
        // All fit their idle time with at most sub-second overhead.
        for r in &rows {
            assert!(
                r.gemini_iteration - r.baseline_iteration < 1.0,
                "{}: {} vs {}",
                r.model,
                r.gemini_iteration,
                r.baseline_iteration
            );
        }
    }
}
