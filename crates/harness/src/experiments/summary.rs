//! The abstract's headline claims, each measured by the pipeline that
//! reproduces its figure — a one-table acceptance check for the whole
//! reproduction.

use crate::report::Table;
use crate::scenario::Deployment;

/// One headline claim.
#[derive(Clone, Debug)]
pub struct Claim {
    /// The claim as the abstract states it.
    pub claim: &'static str,
    /// The paper's number.
    pub paper: &'static str,
    /// Our measured number.
    pub measured: String,
    /// Whether the measured value satisfies the claim.
    pub holds: bool,
}

/// Measures every abstract claim.
pub fn headline_claims() -> Vec<Claim> {
    let mut claims = Vec::new();

    // "reduces the checkpoint retrieval time by up to 250x"
    let best_reduction = super::wasted::fig11()
        .into_iter()
        .map(|r| r.reduction)
        .fold(0.0f64, f64::max);
    claims.push(Claim {
        claim: "checkpoint time reduced by up to 250x",
        paper: "250x",
        measured: format!("{best_reduction:.0}x"),
        holds: best_reduction >= 250.0,
    });

    // "improves the checkpoint frequency by up to 8x"
    let rows = super::wasted::fig12();
    let g = rows.iter().find(|r| r.solution == "GEMINI").unwrap();
    let h = rows.iter().find(|r| r.solution == "HighFreq").unwrap();
    let freq_ratio = g.per_hour / h.per_hour;
    claims.push(Claim {
        claim: "checkpoint frequency improved by up to 8x over HighFreq",
        paper: "8x",
        measured: format!("{freq_ratio:.1}x"),
        holds: freq_ratio >= 8.0,
    });

    // "achieves a faster failure recovery by more than 13x"
    let fig10 = super::wasted::fig10();
    let min_speedup = fig10
        .iter()
        .map(|r| r.highfreq_min / r.gemini_cpu_min)
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim {
        claim: "failure recovery more than 13x faster",
        paper: ">13x",
        measured: format!("{min_speedup:.1}x"),
        holds: min_speedup > 13.0,
    });

    // "optimal checkpoint frequency, i.e., every iteration"
    let sys = Deployment::dense_gpt2_100b_p4d()
        .build_system(13)
        .expect("scenario assembles");
    claims.push(Claim {
        claim: "checkpoints every iteration",
        paper: "every iteration",
        measured: "every iteration".to_string(),
        holds: sys.schedule.is_interference_free(),
    });

    // "incurs no overhead on training throughput"
    let max_overhead = super::throughput::fig7()
        .into_iter()
        .map(|r| r.gemini_iteration / r.baseline_iteration - 1.0)
        .fold(0.0f64, f64::max);
    claims.push(Claim {
        claim: "no training-throughput overhead",
        paper: "0%",
        measured: format!("{:.2}%", max_overhead * 100.0),
        holds: max_overhead < 0.005,
    });

    // §4: "with two checkpoint replicas, GEMINI can resume training from
    // CPU memory in most cases" (93.3% at N=16, k=2).
    let fig9 = super::placement::fig9();
    let p = fig9.iter().find(|r| r.instances == 16).unwrap().gemini_k2;
    claims.push(Claim {
        claim: "P(recover from CPU memory), N=16 m=2 k=2",
        paper: "93.3%",
        measured: format!("{:.1}%", p * 100.0),
        holds: (p - 0.933).abs() < 0.001,
    });

    claims
}

/// Renders the summary.
pub fn summary_table() -> Table {
    let mut t = Table::new(
        "Headline claims (paper abstract vs this reproduction)",
        &["Claim", "Paper", "Measured", "Holds"],
    );
    for c in headline_claims() {
        t.push(vec![
            c.claim.to_string(),
            c.paper.to_string(),
            c.measured,
            if c.holds { "yes" } else { "NO" }.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_headline_claim_holds() {
        for c in headline_claims() {
            assert!(
                c.holds,
                "claim failed: {} (measured {})",
                c.claim, c.measured
            );
        }
    }
}
