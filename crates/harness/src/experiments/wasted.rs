//! Figures 1, 10, 11 and 12: the wasted-time analysis.

use crate::report::{secs, Table};
use crate::scenario::Deployment;
use gemini_baselines::remote::{highfreq, strawman, RemoteSetup};
use gemini_core::ckpt::StorageTier;
use gemini_core::placement::probability::corollary1_probability;
use gemini_core::timing::{gemini_ckpt_time, persistent_ckpt_time};
use gemini_core::wasted::WastedTimeModel;
use gemini_net::{Bandwidth, TransferCost};
use gemini_sim::SimDuration;

fn remote_setup(scenario: &Deployment, iteration: SimDuration) -> RemoteSetup {
    RemoteSetup {
        total_bytes: scenario.ckpt_bytes_total(),
        machines: scenario.machines,
        iteration_time: iteration,
        storage: scenario.storage_cost(),
        serialize_bytes_per_sec: scenario.config.serialize_bytes_per_sec,
    }
}

/// The Figure 1 anatomy: a failure at iteration 310 with checkpoints every
/// 100 iterations.
#[derive(Clone, Debug)]
pub struct Fig1Row {
    /// Quantity name.
    pub what: &'static str,
    /// Value in iterations (or seconds where noted).
    pub value: f64,
}

/// Regenerates the Figure 1 walk-through.
pub fn fig1() -> Vec<Fig1Row> {
    let ckpt_every = 100.0f64; // iterations, as in BLOOM
    let failure_at = 310.0f64;
    let last_complete = (failure_at / ckpt_every).floor() * ckpt_every - ckpt_every; // ckpt 3 incomplete → roll to 200
    vec![
        Fig1Row {
            what: "checkpoint interval (iterations)",
            value: ckpt_every,
        },
        Fig1Row {
            what: "failure at iteration",
            value: failure_at,
        },
        Fig1Row {
            what: "rollback target iteration",
            value: last_complete,
        },
        Fig1Row {
            what: "lost iterations",
            value: failure_at - last_complete,
        },
        Fig1Row {
            what: "average lost (iterations, Eq. 1's 1/(2f))",
            value: ckpt_every / 2.0,
        },
    ]
}

/// Renders Figure 1.
pub fn fig1_table() -> Table {
    let mut t = Table::new(
        "Figure 1: failure-recovery anatomy (checkpoint every 100 iterations)",
        &["Quantity", "Value"],
    );
    for r in fig1() {
        t.push(vec![r.what.to_string(), format!("{:.0}", r.value)]);
    }
    t
}

/// One bar-group of Figure 10.
#[derive(Clone, Debug)]
pub struct Fig10Row {
    /// Number of instances replaced simultaneously.
    pub replaced: usize,
    /// Strawman's average wasted time (minutes).
    pub strawman_min: f64,
    /// HighFreq's average wasted time (minutes).
    pub highfreq_min: f64,
    /// GEMINI's average wasted time when recovery stays in CPU memory
    /// (minutes).
    pub gemini_cpu_min: f64,
    /// Probability GEMINI recovers from CPU memory at this failure size.
    pub gemini_cpu_prob: f64,
    /// GEMINI's expectation over both outcomes (CPU-memory vs degraded to
    /// Strawman).
    pub gemini_expected_min: f64,
}

/// Regenerates Figure 10: average wasted time of GPT-2 100B on 16 p4d with
/// 0/1/2 replaced instances.
pub fn fig10() -> Vec<Fig10Row> {
    let scenario = Deployment::dense_gpt2_100b_p4d();
    let sys = scenario.build_system(13).expect("scenario assembles");
    let iter = sys.iteration_time();
    let setup = remote_setup(&scenario, iter);
    let strawman_avg = strawman(&setup).wasted.average_wasted().as_secs_f64() / 60.0;
    let highfreq_avg = highfreq(&setup).wasted.average_wasted().as_secs_f64() / 60.0;

    (0..=2)
        .map(|replaced| {
            // GEMINI's regime: checkpoint completes every iteration
            // (t_ckpt = T_iter from the wasted-time perspective: the state
            // becomes durable by the end of the iteration it captures).
            let tier = match replaced {
                0 => StorageTier::LocalCpu,
                _ => StorageTier::RemoteCpu,
            };
            // t_ckpt = T_iter: the in-memory checkpoint becomes durable by
            // the end of the iteration whose states it captures.
            let gemini = WastedTimeModel::new(iter, iter, iter, sys.retrieval_time(tier));
            let gemini_cpu = gemini.average_wasted().as_secs_f64() / 60.0;
            let prob = if replaced == 0 {
                1.0
            } else {
                corollary1_probability(scenario.machines, scenario.config.replicas, replaced)
            };
            Fig10Row {
                replaced,
                strawman_min: strawman_avg,
                highfreq_min: highfreq_avg,
                gemini_cpu_min: gemini_cpu,
                gemini_cpu_prob: prob,
                gemini_expected_min: prob * gemini_cpu + (1.0 - prob) * strawman_avg,
            }
        })
        .collect()
}

/// Renders Figure 10.
pub fn fig10_table() -> Table {
    let mut t = Table::new(
        "Figure 10: average wasted time, GPT-2 100B on 16 p4d (minutes)",
        &[
            "Replaced",
            "Strawman",
            "HighFreq",
            "GEMINI (CPU mem)",
            "P(CPU mem)",
            "GEMINI (expected)",
        ],
    );
    for r in fig10() {
        t.push(vec![
            r.replaced.to_string(),
            format!("{:.1}", r.strawman_min),
            format!("{:.1}", r.highfreq_min),
            format!("{:.2}", r.gemini_cpu_min),
            format!("{:.3}", r.gemini_cpu_prob),
            format!("{:.2}", r.gemini_expected_min),
        ]);
    }
    t
}

/// One point of Figure 11.
#[derive(Clone, Debug)]
pub struct Fig11Row {
    /// Number of instances.
    pub instances: usize,
    /// Network bandwidth (Gbps).
    pub bandwidth_gbps: f64,
    /// GEMINI checkpoint time (s).
    pub gemini_secs: f64,
    /// Baseline (persistent storage) checkpoint time (s).
    pub baseline_secs: f64,
    /// Reduction factor.
    pub reduction: f64,
}

/// Regenerates Figure 11: checkpoint-time reduction vs instances at
/// 100/200/400 Gbps training networks.
pub fn fig11() -> Vec<Fig11Row> {
    let scenario = Deployment::dense_gpt2_100b_p4d();
    let total = scenario.ckpt_bytes_total();
    let storage = scenario.storage_cost();
    let baseline = persistent_ckpt_time(total, &storage).as_secs_f64();
    let mut rows = Vec::new();
    for &gbps in &[100.0, 200.0, 400.0] {
        for &n in &[4usize, 8, 12, 16] {
            let net = TransferCost::new(
                scenario.instance.net_alpha,
                Bandwidth::from_gbps(gbps).scaled(scenario.instance.ckpt_net_efficiency),
            );
            let copy = scenario.instance.copy_cost();
            let g = gemini_ckpt_time(total / n as u64, 2, &net, &copy).as_secs_f64();
            rows.push(Fig11Row {
                instances: n,
                bandwidth_gbps: gbps,
                gemini_secs: g,
                baseline_secs: baseline,
                reduction: baseline / g,
            });
        }
    }
    rows
}

/// Renders Figure 11.
pub fn fig11_table() -> Table {
    let mut t = Table::new(
        "Figure 11: checkpoint-time reduction of GEMINI over the baselines",
        &[
            "Instances",
            "Bandwidth",
            "GEMINI (s)",
            "Baseline (s)",
            "Reduction",
        ],
    );
    for r in fig11() {
        t.push(vec![
            r.instances.to_string(),
            format!("{:.0}Gbps", r.bandwidth_gbps),
            secs(r.gemini_secs),
            secs(r.baseline_secs),
            format!("{:.0}x", r.reduction),
        ]);
    }
    t
}

/// One bar of Figure 12.
#[derive(Clone, Debug)]
pub struct Fig12Row {
    /// Solution name.
    pub solution: &'static str,
    /// Checkpoints per hour.
    pub per_hour: f64,
    /// Checkpoint interval (s).
    pub interval_secs: f64,
}

/// Regenerates Figure 12: checkpoint frequencies.
pub fn fig12() -> Vec<Fig12Row> {
    let scenario = Deployment::dense_gpt2_100b_p4d();
    let sys = scenario.build_system(13).expect("scenario assembles");
    let iter = sys.iteration_time();
    let setup = remote_setup(&scenario, iter);
    let s = strawman(&setup);
    let h = highfreq(&setup);
    vec![
        Fig12Row {
            solution: "GEMINI",
            per_hour: 3_600.0 / iter.as_secs_f64(),
            interval_secs: iter.as_secs_f64(),
        },
        Fig12Row {
            solution: "Strawman",
            per_hour: s.wasted.frequency_per_hour(),
            interval_secs: s.interval.as_secs_f64(),
        },
        Fig12Row {
            solution: "HighFreq",
            per_hour: h.wasted.frequency_per_hour(),
            interval_secs: h.interval.as_secs_f64(),
        },
    ]
}

/// Renders Figure 12.
pub fn fig12_table() -> Table {
    let mut t = Table::new(
        "Figure 12: checkpoint frequency, GPT-2 100B on 16 p4d",
        &["Solution", "Checkpoints/hour", "Interval (s)"],
    );
    for r in fig12() {
        t.push(vec![
            r.solution.to_string(),
            format!("{:.2}", r.per_hour),
            secs(r.interval_secs),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_rolls_back_to_200() {
        let rows = fig1();
        let target = rows
            .iter()
            .find(|r| r.what.starts_with("rollback"))
            .unwrap();
        assert_eq!(target.value, 200.0);
        let lost = rows.iter().find(|r| r.what == "lost iterations").unwrap();
        assert_eq!(lost.value, 110.0);
    }

    #[test]
    fn fig10_gemini_wins_by_more_than_13x() {
        for r in fig10() {
            // §7.2: software failures cost ≈1.5 iterations.
            if r.replaced == 0 {
                let expect = 1.5 * 62.0 / 60.0;
                assert!(
                    (r.gemini_cpu_min - expect).abs() < 0.35,
                    "gemini = {:.2} min",
                    r.gemini_cpu_min
                );
            }
            // CPU-memory recovery beats HighFreq by >13×.
            let speedup = r.highfreq_min / r.gemini_cpu_min;
            assert!(speedup > 13.0, "replaced={}: {speedup:.1}x", r.replaced);
            // Baselines are flat across failure sizes.
            assert!((r.strawman_min - fig10()[0].strawman_min).abs() < 1e-9);
        }
    }

    #[test]
    fn fig10_probabilities() {
        let rows = fig10();
        assert_eq!(rows[0].gemini_cpu_prob, 1.0);
        assert_eq!(rows[1].gemini_cpu_prob, 1.0); // k < m
        assert!((rows[2].gemini_cpu_prob - 0.933).abs() < 0.001);
        // The expected value sits between the two outcomes.
        assert!(rows[2].gemini_expected_min > rows[2].gemini_cpu_min);
        assert!(rows[2].gemini_expected_min < rows[2].strawman_min);
    }

    #[test]
    fn fig11_matches_paper_reductions() {
        let rows = fig11();
        // 16 instances, 100 Gbps → ≈65×; 400 Gbps → >250× (§7.2).
        let r100 = rows
            .iter()
            .find(|r| r.instances == 16 && r.bandwidth_gbps == 100.0)
            .unwrap();
        assert!((50.0..90.0).contains(&r100.reduction), "{}", r100.reduction);
        let r400 = rows
            .iter()
            .find(|r| r.instances == 16 && r.bandwidth_gbps == 400.0)
            .unwrap();
        assert!(r400.reduction > 250.0, "{}", r400.reduction);
        // Baseline flat, GEMINI improves with N and bandwidth.
        for w in rows.windows(2) {
            assert_eq!(w[0].baseline_secs, w[1].baseline_secs);
        }
    }

    #[test]
    fn fig12_frequency_ratios() {
        let rows = fig12();
        let g = rows.iter().find(|r| r.solution == "GEMINI").unwrap();
        let s = rows.iter().find(|r| r.solution == "Strawman").unwrap();
        let h = rows.iter().find(|r| r.solution == "HighFreq").unwrap();
        assert!((7.0..11.0).contains(&(g.per_hour / h.per_hour)));
        assert!(g.per_hour / s.per_hour > 170.0);
    }
}
