//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each submodule exposes a function per artifact returning typed rows,
//! plus a `*_table` renderer producing a [`crate::report::Table`]. The
//! `gemini-bench` crate's `figures`/`tables` binaries print them all.
//!
//! | Artifact | Function |
//! |---|---|
//! | Table 1 | [`tables::table1`] |
//! | Table 2 | [`tables::table2`] |
//! | Fig. 1 (wasted-time anatomy) | [`wasted::fig1`] |
//! | Fig. 6 (recovery mechanisms) | [`recovery::fig6`] |
//! | Fig. 7 (iteration time, 100B) | [`throughput::fig7`] |
//! | Fig. 8 (network idle time, 100B) | [`throughput::fig8`] |
//! | Fig. 9 (recovery probability) | [`placement::fig9`] |
//! | Fig. 10 (average wasted time) | [`wasted::fig10`] |
//! | Fig. 11 (checkpoint-time reduction) | [`wasted::fig11`] |
//! | Fig. 12 (checkpoint frequency) | [`wasted::fig12`] |
//! | Fig. 13 (p3dn iteration/idle time) | [`throughput::fig13`] |
//! | Fig. 14 (recovery overheads) | [`recovery::fig14`] |
//! | Fig. 15a (ratio vs failure rate) | [`scale::fig15a`] |
//! | Fig. 15b (ratio vs cluster size) | [`scale::fig15b`] |
//! | Fig. 16 (interleaving schemes) | [`interleave::fig16`] |
//! | Ablations (m, γ, p, standbys) | [`ablations`] |

pub mod ablations;
pub mod interleave;
pub mod placement;
pub mod recovery;
pub mod scale;
pub mod summary;
pub mod tables;
pub mod throughput;
pub mod wasted;

use crate::par;
use crate::report::Table;
use gemini_telemetry::TelemetrySink;

/// The full artifact list in paper order (tables first, then figures).
///
/// Each entry is an independent regenerator `fn(fast) -> Table`; the table
/// drives both the serial and the parallel render paths, so the two produce
/// the artifacts in exactly the same order. Every regenerator is a pure
/// function of `fast` (stochastic sweeps fork their own labelled
/// [`gemini_sim::rng::DetRng`] streams), which is what makes index-merged
/// parallel rendering byte-identical to the serial loop.
const ARTIFACTS: &[fn(bool) -> Table] = &[
    |_| tables::table1_table(),
    |_| tables::table2_table(),
    |_| wasted::fig1_table(),
    |_| recovery::fig6_table(),
    |_| throughput::fig7_table(),
    |_| throughput::fig8_table(),
    |_| placement::fig9_table(),
    |_| wasted::fig10_table(),
    |_| wasted::fig11_table(),
    |_| wasted::fig12_table(),
    |_| throughput::fig13_table(),
    |_| recovery::fig14_table(),
    |fast| scale::fig15a_table(fast),
    |fast| scale::fig15b_table(fast),
    |_| interleave::fig16_table(),
    |_| ablations::replicas_table(),
    |_| ablations::gamma_table(),
    |_| ablations::sub_buffers_table(),
    |_| ablations::standby_table(),
    |_| ablations::rack_table(),
    |_| summary::summary_table(),
];

/// Per-artifact cost hint for the pool's granularity model: even the
/// cheapest table regenerates in milliseconds, so the whole set is always
/// worth parallelizing on a multi-core host (and the hint lets the pool
/// skip threads only when the host itself cannot run two at once).
const ARTIFACT_COST: par::TaskCost = par::TaskCost::millis(2);

/// [`render_all`], additionally accounting each regenerated artifact into
/// `sink` (`harness.artifacts_rendered` / `harness.artifact_rows` counters
/// plus the deterministic `parallel.tasks` counter), so figure regeneration
/// shows up in metrics exports. Uses the process-default job count
/// ([`gemini_parallel::default_jobs`], i.e. `--jobs` / `GEMINI_JOBS`).
pub fn render_all_with(fast: bool, sink: &TelemetrySink) -> Vec<Table> {
    render_all_with_jobs(fast, par::default_jobs(), sink)
}

/// [`render_all_jobs`] with telemetry accounting. The counters are recorded
/// from the index-merged result vector *after* the parallel region, in
/// artifact order — so metrics exports are byte-identical at every `jobs`
/// value (only deterministic pool stats are recorded; see
/// [`par::record_stats`]).
pub fn render_all_with_jobs(fast: bool, jobs: usize, sink: &TelemetrySink) -> Vec<Table> {
    let (tables, stats) =
        par::par_map_stats_cost(jobs, ARTIFACTS.len(), ARTIFACT_COST, |i| ARTIFACTS[i](fast));
    if sink.is_enabled() {
        par::record_stats(sink, &stats);
        for t in &tables {
            sink.counter_add("harness.artifacts_rendered", 1);
            sink.counter_add("harness.artifact_rows", t.rows.len() as u64);
        }
    }
    tables
}

/// Renders every artifact (tables first, then figures in paper order).
/// `fast` shrinks the stochastic sweeps so the suite stays test-friendly.
/// Runs at the process-default job count (serial unless `--jobs` /
/// `GEMINI_JOBS` raised it); output is byte-identical at any job count.
pub fn render_all(fast: bool) -> Vec<Table> {
    render_all_jobs(fast, par::default_jobs())
}

/// [`render_all`] at an explicit job count. Artifacts are regenerated as an
/// indexed task set and merged by index, so the returned vector (and hence
/// all markdown/CSV/JSON derived from it) is byte-identical to the `jobs=1`
/// serial loop.
pub fn render_all_jobs(fast: bool, jobs: usize) -> Vec<Table> {
    par::par_map_cost(jobs, ARTIFACTS.len(), ARTIFACT_COST, |i| ARTIFACTS[i](fast))
}

/// [`render_all_jobs`], also returning the pool statistics (task count plus
/// wall/busy timings) for perf reporting — the `perf` binary feeds these to
/// [`par::record_stats_timing`] when building `BENCH_harness.json`.
pub fn render_all_stats(fast: bool, jobs: usize) -> (Vec<Table>, par::ParStats) {
    par::par_map_stats_cost(jobs, ARTIFACTS.len(), ARTIFACT_COST, |i| ARTIFACTS[i](fast))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_renders() {
        let tables = render_all(true);
        assert_eq!(tables.len(), ARTIFACTS.len());
        assert_eq!(tables.len(), 21);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{} is empty", t.title);
            let md = t.to_markdown();
            assert!(md.contains("|"), "{} markdown broken", t.title);
        }
    }

    #[test]
    fn parallel_render_matches_serial() {
        let serial = render_all_jobs(true, 1);
        let parallel = render_all_jobs(true, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(parallel.iter()) {
            assert_eq!(s.title, p.title);
            assert_eq!(s.to_markdown(), p.to_markdown(), "{} diverged", s.title);
        }
    }

    #[test]
    fn telemetry_render_counts_tasks_deterministically() {
        let sink = TelemetrySink::enabled();
        let tables = render_all_with_jobs(true, 3, &sink);
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("harness.artifacts_rendered")),
            tables.len() as u64
        );
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("parallel.tasks")),
            tables.len() as u64
        );
        // The wall-clock gauges must NOT be present on this path.
        assert_eq!(
            snap.gauge(gemini_telemetry::Key::plain("parallel.speedup")),
            None
        );
    }
}
