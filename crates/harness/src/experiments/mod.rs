//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each submodule exposes a function per artifact returning typed rows,
//! plus a `*_table` renderer producing a [`crate::report::Table`]. The
//! `gemini-bench` crate's `figures`/`tables` binaries print them all.
//!
//! | Artifact | Function |
//! |---|---|
//! | Table 1 | [`tables::table1`] |
//! | Table 2 | [`tables::table2`] |
//! | Fig. 1 (wasted-time anatomy) | [`wasted::fig1`] |
//! | Fig. 6 (recovery mechanisms) | [`recovery::fig6`] |
//! | Fig. 7 (iteration time, 100B) | [`throughput::fig7`] |
//! | Fig. 8 (network idle time, 100B) | [`throughput::fig8`] |
//! | Fig. 9 (recovery probability) | [`placement::fig9`] |
//! | Fig. 10 (average wasted time) | [`wasted::fig10`] |
//! | Fig. 11 (checkpoint-time reduction) | [`wasted::fig11`] |
//! | Fig. 12 (checkpoint frequency) | [`wasted::fig12`] |
//! | Fig. 13 (p3dn iteration/idle time) | [`throughput::fig13`] |
//! | Fig. 14 (recovery overheads) | [`recovery::fig14`] |
//! | Fig. 15a (ratio vs failure rate) | [`scale::fig15a`] |
//! | Fig. 15b (ratio vs cluster size) | [`scale::fig15b`] |
//! | Fig. 16 (interleaving schemes) | [`interleave::fig16`] |
//! | Ablations (m, γ, p, standbys) | [`ablations`] |

pub mod ablations;
pub mod interleave;
pub mod placement;
pub mod recovery;
pub mod scale;
pub mod summary;
pub mod tables;
pub mod throughput;
pub mod wasted;

use crate::report::Table;
use gemini_telemetry::TelemetrySink;

/// [`render_all`], additionally accounting each regenerated artifact into
/// `sink` (`harness.artifacts_rendered` / `harness.artifact_rows`
/// counters), so figure regeneration shows up in metrics exports.
pub fn render_all_with(fast: bool, sink: &TelemetrySink) -> Vec<Table> {
    let tables = render_all(fast);
    if sink.is_enabled() {
        for t in &tables {
            sink.counter_add("harness.artifacts_rendered", 1);
            sink.counter_add("harness.artifact_rows", t.rows.len() as u64);
        }
    }
    tables
}

/// Renders every artifact (tables first, then figures in paper order).
/// `fast` shrinks the stochastic sweeps so the suite stays test-friendly.
pub fn render_all(fast: bool) -> Vec<Table> {
    vec![
        tables::table1_table(),
        tables::table2_table(),
        wasted::fig1_table(),
        recovery::fig6_table(),
        throughput::fig7_table(),
        throughput::fig8_table(),
        placement::fig9_table(),
        wasted::fig10_table(),
        wasted::fig11_table(),
        wasted::fig12_table(),
        throughput::fig13_table(),
        recovery::fig14_table(),
        scale::fig15a_table(fast),
        scale::fig15b_table(fast),
        interleave::fig16_table(),
        ablations::replicas_table(),
        ablations::gamma_table(),
        ablations::sub_buffers_table(),
        ablations::standby_table(),
        ablations::rack_table(),
        summary::summary_table(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn everything_renders() {
        let tables = render_all(true);
        assert_eq!(tables.len(), 21);
        for t in &tables {
            assert!(!t.rows.is_empty(), "{} is empty", t.title);
            let md = t.to_markdown();
            assert!(md.contains("|"), "{} markdown broken", t.title);
        }
    }
}
