//! Figure 16: the traffic-interleaving ablation.

use crate::report::{secs, Table};
use crate::scenario::Deployment;
use gemini_baselines::schemes::{evaluate_scheme, InterleaveScheme, SchemeOutcome};
use gemini_sim::DetRng;

/// Regenerates Figure 16: iteration time of GPT-2 40B on 16 p3dn under the
/// five checkpointing-to-CPU-memory schemes.
pub fn fig16() -> Vec<SchemeOutcome> {
    let scenario = Deployment::dense_gpt2_40b_p3dn();
    let mut rng = DetRng::new(16);
    let profile = scenario.profile(&mut rng);
    InterleaveScheme::all()
        .into_iter()
        .map(|scheme| {
            evaluate_scheme(
                scheme,
                &profile,
                scenario.ckpt_bytes_per_machine(),
                scenario.instance.gpus,
                &scenario.config,
                &scenario.instance.ckpt_net_cost(),
                &scenario.instance.copy_cost(),
                scenario.instance.gpu_headroom,
            )
            .expect("scheme evaluation succeeds")
        })
        .collect()
}

/// Renders Figure 16.
pub fn fig16_table() -> Table {
    let mut t = Table::new(
        "Figure 16: iteration time of GPT-2 40B (16 p3dn) per scheme",
        &["Scheme", "Iteration (s)", "Overhead", "Buffer/GPU"],
    );
    for o in fig16() {
        t.push(vec![
            o.scheme.name().to_string(),
            o.iteration_time
                .map(|d| secs(d.as_secs_f64()))
                .unwrap_or_else(|| "OOM".into()),
            o.overhead_frac
                .map(|f| format!("{:.1}%", f * 100.0))
                .unwrap_or_else(|| "OOM".into()),
            format!("{}", o.required_buffer_per_gpu),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig16_shape() {
        let rows = fig16();
        assert_eq!(rows.len(), 5);
        let get = |s: InterleaveScheme| rows.iter().find(|o| o.scheme == s).unwrap().clone();
        let baseline = get(InterleaveScheme::Baseline);
        let blocking = get(InterleaveScheme::Blocking);
        let naive = get(InterleaveScheme::NaiveInterleave);
        let nopipe = get(InterleaveScheme::InterleaveNoPipeline);
        let gemini = get(InterleaveScheme::Gemini);
        assert_eq!(baseline.overhead_frac, Some(0.0));
        assert!(blocking.overhead_frac.unwrap() > 0.06);
        assert!(naive.oom);
        assert!(nopipe.overhead_frac.unwrap() > 0.0);
        assert!(gemini.overhead_frac.unwrap() < 0.005);
        assert!(blocking.overhead_frac.unwrap() > nopipe.overhead_frac.unwrap());
    }
}
