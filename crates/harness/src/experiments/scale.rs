//! Figure 15: scalability to frequent failures and large clusters.

use crate::campaign::{run_campaign, CampaignConfig, Solution};
use crate::par;
use crate::report::Table;

/// One x-position of Fig. 15a or 15b.
#[derive(Clone, Debug)]
pub struct ScaleRow {
    /// The x value (failures/day for 15a; instances for 15b).
    pub x: f64,
    /// Effective training-time ratio per solution.
    pub no_failure: f64,
    /// GEMINI's ratio.
    pub gemini: f64,
    /// Strawman's ratio.
    pub strawman: f64,
    /// HighFreq's ratio.
    pub highfreq: f64,
}

/// The four solutions in a fixed sweep order (column order of Fig. 15).
const SOLUTIONS: [Solution; 4] = [
    Solution::NoFailure,
    Solution::Gemini,
    Solution::Strawman,
    Solution::HighFreq,
];

/// Runs the xs × solutions campaign grid through the deterministic pool.
///
/// The grid is flattened to an indexed task set (`task t` → `x = xs[t / 4]`,
/// `solution = SOLUTIONS[t % 4]`); each campaign derives its randomness from
/// its own config (seeded per x), never from scheduling, and results merge
/// by index — so the rows are byte-identical at every job count.
fn sweep(xs: &[f64], mk: impl Fn(Solution, f64) -> CampaignConfig + Sync) -> Vec<ScaleRow> {
    let ratios = par::par_map(par::default_jobs(), xs.len() * SOLUTIONS.len(), |t| {
        let x = xs[t / SOLUTIONS.len()];
        let sol = SOLUTIONS[t % SOLUTIONS.len()];
        run_campaign(&mk(sol, x))
            .expect("campaign runs")
            .effective_ratio
    });
    xs.iter()
        .enumerate()
        .map(|(i, &x)| {
            let base = i * SOLUTIONS.len();
            ScaleRow {
                x,
                no_failure: ratios[base],
                gemini: ratios[base + 1],
                strawman: ratios[base + 2],
                highfreq: ratios[base + 3],
            }
        })
        .collect()
}

/// Figure 15a: effective training-time ratio vs failures per day
/// (16 p4d, GPT-2 100B, software failures).
pub fn fig15a(fast: bool) -> Vec<ScaleRow> {
    let xs: &[f64] = if fast {
        &[0.0, 4.0, 8.0]
    } else {
        &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]
    };
    sweep(xs, |sol, x| CampaignConfig::fig15(sol, x, 42))
}

/// Figure 15b: effective training-time ratio vs cluster size at OPT-175B's
/// 1.5% machine-failures/day.
pub fn fig15b(fast: bool) -> Vec<ScaleRow> {
    let xs: &[f64] = if fast {
        &[16.0, 200.0, 1000.0]
    } else {
        &[
            8.0, 16.0, 32.0, 64.0, 128.0, 200.0, 400.0, 600.0, 800.0, 1000.0,
        ]
    };
    sweep(xs, |sol, x| CampaignConfig::fig15b(sol, x as usize, 42))
}

/// Renders Figure 15a.
pub fn fig15a_table(fast: bool) -> Table {
    let mut t = Table::new(
        "Figure 15a: effective training time ratio vs failures per day",
        &[
            "Failures/day",
            "No failure",
            "GEMINI",
            "HighFreq",
            "Strawman",
        ],
    );
    for r in fig15a(fast) {
        t.push(vec![
            format!("{:.0}", r.x),
            format!("{:.3}", r.no_failure),
            format!("{:.3}", r.gemini),
            format!("{:.3}", r.highfreq),
            format!("{:.3}", r.strawman),
        ]);
    }
    t
}

/// Renders Figure 15b.
pub fn fig15b_table(fast: bool) -> Table {
    let mut t = Table::new(
        "Figure 15b: effective training time ratio vs number of instances \
         (1.5% machine failures/day)",
        &["Instances", "No failure", "GEMINI", "HighFreq", "Strawman"],
    );
    for r in fig15b(fast) {
        t.push(vec![
            format!("{:.0}", r.x),
            format!("{:.3}", r.no_failure),
            format!("{:.3}", r.gemini),
            format!("{:.3}", r.highfreq),
            format!("{:.3}", r.strawman),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15a_shape() {
        let rows = fig15a(true);
        // At zero failures: GEMINI ≈ ideal; HighFreq pays serialization.
        let r0 = &rows[0];
        assert!(r0.gemini > 0.99);
        assert!(r0.highfreq < 0.90);
        // At 8/day GEMINI stays close to ideal; baselines degrade.
        let r8 = rows.last().unwrap();
        assert!(r8.gemini > 0.94, "gemini = {}", r8.gemini);
        assert!(r8.gemini > r8.highfreq && r8.highfreq > r8.strawman);
    }

    #[test]
    fn fig15b_thousand_instances_matches_paper() {
        let rows = fig15b(true);
        let r1000 = rows.iter().find(|r| r.x == 1000.0).unwrap();
        // §7.3: GEMINI ≈ 91%, ≈54% higher than HighFreq; Strawman can
        // hardly proceed.
        assert!((0.85..0.97).contains(&r1000.gemini), "g = {}", r1000.gemini);
        assert!(
            r1000.gemini / r1000.highfreq > 1.3,
            "g/h = {:.2}",
            r1000.gemini / r1000.highfreq
        );
        assert!(r1000.strawman < 0.35, "s = {}", r1000.strawman);
    }
}
