//! Figure 9: probability of recovering from CPU-memory checkpoints.

use crate::par;
use crate::report::Table;
use gemini_core::placement::probability::{
    corollary1_probability, monte_carlo_recovery_probability, ring_m2_probability,
};
use gemini_core::Placement;
use gemini_sim::DetRng;

/// One cluster size's probabilities.
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Number of instances `N`.
    pub instances: usize,
    /// GEMINI (group placement), m=2, k=2.
    pub gemini_k2: f64,
    /// GEMINI, m=2, k=3.
    pub gemini_k3: f64,
    /// Ring placement, m=2, k=2.
    pub ring_k2: f64,
    /// Ring placement, m=2, k=3.
    pub ring_k3: f64,
    /// Monte Carlo cross-check of `gemini_k2`.
    pub gemini_k2_mc: f64,
}

/// Regenerates Figure 9 over the paper's x-range (up to 128 instances).
///
/// The cluster sizes run as an indexed task set through the deterministic
/// pool: each size forks its Monte-Carlo stream purely from
/// `(root seed, n)` via [`DetRng::fork_index`], so the estimates are
/// independent of scheduling and the rows are byte-identical at every job
/// count.
pub fn fig9() -> Vec<Fig9Row> {
    let rng = DetRng::new(99);
    const SIZES: [usize; 8] = [8, 16, 24, 32, 48, 64, 96, 128];
    par::par_map(par::default_jobs(), SIZES.len(), |i| {
        let n = SIZES[i];
        let placement = Placement::mixed(n, 2).expect("valid placement");
        Fig9Row {
            instances: n,
            gemini_k2: corollary1_probability(n, 2, 2),
            gemini_k3: corollary1_probability(n, 2, 3),
            ring_k2: ring_m2_probability(n, 2),
            ring_k3: ring_m2_probability(n, 3),
            gemini_k2_mc: monte_carlo_recovery_probability(
                &placement,
                2,
                20_000,
                &mut rng.fork_index(n as u64),
            ),
        }
    })
}

/// Renders Figure 9.
pub fn fig9_table() -> Table {
    let mut t = Table::new(
        "Figure 9: P(recover from CPU memory), m = 2",
        &[
            "Instances",
            "GEMINI k=2",
            "GEMINI k=3",
            "Ring k=2",
            "Ring k=3",
            "GEMINI k=2 (Monte Carlo)",
        ],
    );
    for r in fig9() {
        t.push(vec![
            r.instances.to_string(),
            format!("{:.3}", r.gemini_k2),
            format!("{:.3}", r.gemini_k3),
            format!("{:.3}", r.ring_k2),
            format!("{:.3}", r.ring_k3),
            format!("{:.3}", r.gemini_k2_mc),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_at_n16() {
        let rows = fig9();
        let r16 = rows.iter().find(|r| r.instances == 16).unwrap();
        assert!((r16.gemini_k2 - 0.933).abs() < 0.001);
        assert!((r16.gemini_k3 - 0.800).abs() < 0.001);
        // §7.2: Ring at k=3 is 25% lower than GEMINI.
        let drop = (r16.gemini_k3 - r16.ring_k3) / r16.gemini_k3;
        assert!((0.15..0.30).contains(&drop), "drop = {drop:.3}");
    }

    #[test]
    fn probability_increases_with_n_and_gemini_dominates_ring() {
        let rows = fig9();
        for w in rows.windows(2) {
            assert!(w[1].gemini_k2 >= w[0].gemini_k2);
            assert!(w[1].gemini_k3 >= w[0].gemini_k3);
        }
        for r in &rows {
            assert!(r.gemini_k2 >= r.ring_k2, "N={}", r.instances);
            assert!(r.gemini_k3 >= r.ring_k3, "N={}", r.instances);
            // k < m would be 1; k ≥ m stays below 1.
            assert!(r.gemini_k2 < 1.0);
        }
    }

    #[test]
    fn monte_carlo_tracks_analytic() {
        for r in fig9() {
            assert!(
                (r.gemini_k2 - r.gemini_k2_mc).abs() < 0.015,
                "N={}: {} vs {}",
                r.instances,
                r.gemini_k2,
                r.gemini_k2_mc
            );
        }
    }
}
