//! Long-horizon training campaigns with failure injection (paper §7.3,
//! Fig. 15).
//!
//! Follows the paper's own simulation methodology: take the overheads
//! measured for one failure (detection, serialization, retrieval,
//! replacement, warm-up) and the steady-state costs of each checkpointing
//! solution, inject Poisson failures over a multi-day horizon, and report
//! the **effective training time ratio** — the fraction of wall-clock time
//! that made productive training progress.
//!
//! Per the paper, software failures are simulated (hardware failures with
//! standby machines cost about the same), and the per-day failure count
//! either is swept directly (Fig. 15a) or derives from OPT-175B's observed
//! 1.5% machine-failures/day at the given cluster size (Fig. 15b).

use crate::scenario::Deployment;
use gemini_baselines::remote::{highfreq, strawman, RemoteBaseline, RemoteSetup};
use gemini_core::ckpt::StorageTier;
use gemini_core::GeminiError;
use gemini_sim::{DetRng, SimDuration};
use gemini_telemetry::TelemetrySink;
use serde::{Deserialize, Serialize};

/// Which checkpointing solution the campaign runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Solution {
    /// No failures, no checkpoint overhead: the ideal upper bound.
    NoFailure,
    /// GEMINI: per-iteration in-memory checkpoints.
    Gemini,
    /// Every-3-hours persistent checkpoints (BLOOM's cadence).
    Strawman,
    /// Persistent checkpoints as fast as storage bandwidth allows.
    HighFreq,
}

impl Solution {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Solution::NoFailure => "No failure",
            Solution::Gemini => "GEMINI",
            Solution::Strawman => "Strawman",
            Solution::HighFreq => "HighFreq",
        }
    }
}

/// Configuration of one campaign.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// The deployment.
    pub scenario: Deployment,
    /// The solution under test.
    pub solution: Solution,
    /// Simulated wall-clock horizon.
    pub horizon: SimDuration,
    /// Expected failures per day across the whole cluster.
    pub failures_per_day: f64,
    /// RNG seed.
    pub seed: u64,
}

impl CampaignConfig {
    /// The Fig. 15 base: GPT-2 100B on 16 p4d over one simulated week.
    pub fn fig15(solution: Solution, failures_per_day: f64, seed: u64) -> CampaignConfig {
        CampaignConfig {
            scenario: Deployment::dense_gpt2_100b_p4d(),
            solution,
            horizon: SimDuration::from_hours(7 * 24),
            failures_per_day,
            seed,
        }
    }

    /// Fig. 15b's scaling variant: OPT-175B's 1.5% per-machine-per-day
    /// failure rate at the given cluster size. Following the paper's own
    /// methodology ("based on the incurred overhead by one failure, we can
    /// simulate the training performance … with different numbers of
    /// instances"), the per-failure and per-checkpoint overheads stay at
    /// their 16-machine measured values and only the failure frequency
    /// scales with the cluster size.
    pub fn fig15b(solution: Solution, machines: usize, seed: u64) -> CampaignConfig {
        CampaignConfig::fig15(solution, 0.015 * machines as f64, seed)
    }
}

/// The outcome of a campaign.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The solution simulated.
    pub solution: Solution,
    /// Productive-training fraction of the horizon (Fig. 15's y-axis).
    pub effective_ratio: f64,
    /// Failures injected.
    pub failures: u64,
    /// Training iterations completed.
    pub iterations: u64,
    /// Total time lost to failure recovery (rollback + overheads).
    pub recovery_lost: SimDuration,
    /// Total time lost to steady-state checkpoint stalls (serialization).
    pub ckpt_stall_lost: SimDuration,
}

/// Per-solution steady-state parameters derived from the scenario.
struct Regime {
    /// Productive time per cycle.
    useful_per_cycle: f64,
    /// Stall time per cycle (serialization blocking training).
    stall_per_cycle: f64,
    /// Average rollback loss when a failure strikes (time since last
    /// complete checkpoint, sampled uniformly).
    interval: f64,
    /// Fixed per-failure overhead: detection + serialization-on-failure +
    /// retrieval + warm-up.
    per_failure_overhead: f64,
    /// How long a checkpoint takes to become durable after the state it
    /// captures (the asynchronous upload lag for the remote baselines —
    /// progress made during the lag is not yet protected).
    completion_lag: f64,
}

fn remote_setup(scenario: &Deployment, iteration_time: f64) -> RemoteSetup {
    RemoteSetup {
        total_bytes: scenario.ckpt_bytes_total(),
        machines: scenario.machines,
        iteration_time: SimDuration::from_secs_f64(iteration_time),
        storage: scenario.storage_cost(),
        serialize_bytes_per_sec: scenario.config.serialize_bytes_per_sec,
    }
}

fn baseline_regime(b: &RemoteBaseline, detection: f64, warmup: f64) -> Regime {
    Regime {
        useful_per_cycle: b.interval.as_secs_f64(),
        stall_per_cycle: b.serialize_stall.as_secs_f64(),
        interval: b.interval.as_secs_f64(),
        per_failure_overhead: detection + b.wasted.retrieval_time.as_secs_f64() + warmup,
        completion_lag: b.wasted.ckpt_time.as_secs_f64(),
    }
}

/// Runs one campaign.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignResult, GeminiError> {
    execute_campaign(config, &TelemetrySink::disabled())
}

/// Deprecated shim over [`crate::Scenario::campaign`] with an explicit
/// sink.
#[deprecated(note = "use gemini_harness::Scenario::campaign(cfg).sink(sink).run()")]
pub fn run_campaign_with(
    config: &CampaignConfig,
    sink: &TelemetrySink,
) -> Result<CampaignResult, GeminiError> {
    execute_campaign(config, sink)
}

/// Runs a batch of campaigns through the deterministic pool, returning
/// results in the order of `configs`.
///
/// Each campaign's randomness derives purely from its own
/// [`CampaignConfig::seed`] (`DetRng::new(seed).fork("campaign")`), never
/// from scheduling, and results merge by task index — so the returned
/// vector is bit-identical at every `jobs` value. On error, the error of
/// the lowest-index failing config is returned (again independent of
/// scheduling).
pub fn run_campaigns(
    configs: &[CampaignConfig],
    jobs: usize,
) -> Result<Vec<CampaignResult>, GeminiError> {
    crate::par::try_par_map(jobs, configs.len(), |i| run_campaign(&configs[i]))
}

/// Builds the seeds × failure-rates × solutions cross-product of Fig. 15a
/// campaign configs, in lexicographic (seed-major) order. Feed the result
/// to [`run_campaigns`] for a deterministic parallel sweep.
pub fn campaign_grid(seeds: &[u64], rates: &[f64], solutions: &[Solution]) -> Vec<CampaignConfig> {
    let mut out = Vec::with_capacity(seeds.len() * rates.len() * solutions.len());
    for &seed in seeds {
        for &rate in rates {
            for &sol in solutions {
                out.push(CampaignConfig::fig15(sol, rate, seed));
            }
        }
    }
    out
}

/// Runs one campaign, recording per-solution metrics through `sink`:
/// `campaign.failures{solution=…}`, a `campaign.rollback_us` histogram per
/// injected failure, and the headline `campaign.effective_ratio` gauge.
pub(crate) fn execute_campaign(
    config: &CampaignConfig,
    sink: &TelemetrySink,
) -> Result<CampaignResult, GeminiError> {
    let sys = config.scenario.build_system(config.seed)?;
    let gcfg = &config.scenario.config;
    let iter_time = sys.iteration_time().as_secs_f64();
    let detection = gcfg.health_ttl.as_secs_f64();
    let warmup = gcfg.restart_warmup.as_secs_f64();

    let regime = match config.solution {
        Solution::NoFailure | Solution::Gemini => Regime {
            useful_per_cycle: iter_time,
            stall_per_cycle: 0.0, // interference-free interleaving
            interval: iter_time,  // a complete checkpoint every iteration
            per_failure_overhead: detection
                + sys.serialize_time().as_secs_f64()
                + sys.retrieval_time(StorageTier::LocalCpu).as_secs_f64()
                + warmup,
            // GEMINI's checkpoint completes within the iteration it
            // captures (§5.3); no unprotected lag.
            completion_lag: 0.0,
        },
        Solution::Strawman => baseline_regime(
            &strawman(&remote_setup(&config.scenario, iter_time)),
            detection,
            warmup,
        ),
        Solution::HighFreq => baseline_regime(
            &highfreq(&remote_setup(&config.scenario, iter_time)),
            detection,
            warmup,
        ),
    };

    let horizon = config.horizon.as_secs_f64();
    let rate_per_sec = match config.solution {
        Solution::NoFailure => 0.0,
        _ => config.failures_per_day / 86_400.0,
    };
    let mut rng = DetRng::new(config.seed).fork("campaign");

    // March through the horizon: productive cycles punctuated by failures.
    let mut now = 0.0f64;
    let mut useful = 0.0f64;
    let mut stall_lost = 0.0f64;
    let mut recovery_lost = 0.0f64;
    let mut failures = 0u64;
    let mut since_ckpt = 0.0f64; // progress since the last complete checkpoint
    let cycle = regime.useful_per_cycle + regime.stall_per_cycle;

    let mut next_failure = now + rng.exponential(rate_per_sec);
    while now < horizon {
        if next_failure >= horizon && rate_per_sec == 0.0 {
            // Failure-free remainder.
            let span = horizon - now;
            let full_cycles = (span / cycle).floor();
            useful += full_cycles * regime.useful_per_cycle;
            stall_lost += full_cycles * regime.stall_per_cycle;
            let rem = span - full_cycles * cycle;
            useful += rem.min(regime.useful_per_cycle);
            stall_lost += (rem - regime.useful_per_cycle).max(0.0);
            break;
        }
        if next_failure >= horizon {
            let span = horizon - now;
            let (u, s) = split_cycles(span, &regime, &mut since_ckpt);
            useful += u;
            stall_lost += s;
            break;
        }
        // Train until the failure.
        let span = next_failure - now;
        let (u, s) = split_cycles(span, &regime, &mut since_ckpt);
        useful += u;
        stall_lost += s;
        now = next_failure;
        failures += 1;
        // The failure wipes progress since the last complete checkpoint
        // and pays the fixed recovery overhead.
        let rollback = (since_ckpt + regime.completion_lag)
            .min(regime.interval + regime.completion_lag)
            .min(useful);
        useful -= rollback;
        let overhead = regime.per_failure_overhead;
        recovery_lost += rollback + overhead.min(horizon - now);
        now = (now + overhead).min(horizon);
        since_ckpt = 0.0;
        sink.counter_add_labeled("campaign.failures", "solution", config.solution.name(), 1);
        sink.observe_us("campaign.rollback_us", || (rollback * 1e6) as u64);
        next_failure = now + rng.exponential(rate_per_sec);
    }

    let effective_ratio = (useful / horizon).clamp(0.0, 1.0);
    sink.gauge_set_labeled(
        "campaign.effective_ratio",
        "solution",
        config.solution.name(),
        || effective_ratio,
    );
    sink.gauge_set_labeled(
        "campaign.recovery_lost_us",
        "solution",
        config.solution.name(),
        || recovery_lost * 1e6,
    );
    sink.gauge_set_labeled(
        "campaign.ckpt_stall_lost_us",
        "solution",
        config.solution.name(),
        || stall_lost * 1e6,
    );
    Ok(CampaignResult {
        solution: config.solution,
        effective_ratio,
        failures,
        iterations: (useful / iter_time) as u64,
        recovery_lost: SimDuration::from_secs_f64(recovery_lost),
        ckpt_stall_lost: SimDuration::from_secs_f64(stall_lost),
    })
}

/// Splits `span` seconds of training into useful time and checkpoint
/// stalls, tracking progress since the last complete checkpoint.
fn split_cycles(span: f64, regime: &Regime, since_ckpt: &mut f64) -> (f64, f64) {
    let cycle = regime.useful_per_cycle + regime.stall_per_cycle;
    let full = (span / cycle).floor();
    let mut useful = full * regime.useful_per_cycle;
    let mut stall = full * regime.stall_per_cycle;
    let rem = span - full * cycle;
    let rem_useful = rem.min(regime.useful_per_cycle);
    useful += rem_useful;
    stall += rem - rem_useful;
    // Progress since the last checkpoint: completed cycles checkpoint at
    // their boundary; the remainder is unprotected.
    *since_ckpt = if full > 0.0 {
        rem_useful
    } else {
        *since_ckpt + rem_useful
    };
    (useful, stall)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ratio(solution: Solution, per_day: f64) -> f64 {
        run_campaign(&CampaignConfig::fig15(solution, per_day, 42))
            .unwrap()
            .effective_ratio
    }

    #[test]
    fn no_failure_ratio_is_one() {
        let r = ratio(Solution::NoFailure, 0.0);
        assert!(r > 0.999, "r = {r}");
    }

    #[test]
    fn gemini_stays_near_ideal_even_at_8_failures_per_day() {
        // Fig. 15a: "even with 8 failures per day, GEMINI remains highly
        // efficient with a performance ratio close to the baseline".
        let r = ratio(Solution::Gemini, 8.0);
        assert!(r > 0.94, "r = {r:.3}");
    }

    #[test]
    fn highfreq_loses_about_14_percent_with_no_failures() {
        // Fig. 15a at x = 0: HighFreq pays its serialization stalls.
        let r = ratio(Solution::HighFreq, 0.0);
        assert!((0.82..0.90).contains(&r), "r = {r:.3}");
    }

    #[test]
    fn strawman_worse_than_highfreq_under_frequent_failures() {
        // §7.3: "Strawman is worse than HighFreq due to its prohibitive
        // wasted time." At very low rates Strawman's 3-hour cadence is
        // cheap (HighFreq pays 81 s serialization every 9 iterations);
        // the curves cross as failures become frequent — Fig. 15a's shape.
        for per_day in [6.0, 8.0] {
            let s = ratio(Solution::Strawman, per_day);
            let h = ratio(Solution::HighFreq, per_day);
            assert!(
                s < h,
                "per_day={per_day}: strawman {s:.3} vs highfreq {h:.3}"
            );
        }
        // And at zero failures the order flips.
        assert!(ratio(Solution::Strawman, 0.0) > ratio(Solution::HighFreq, 0.0));
    }

    #[test]
    fn ordering_gemini_highfreq_strawman() {
        for per_day in [6.0, 8.0] {
            let g = ratio(Solution::Gemini, per_day);
            let h = ratio(Solution::HighFreq, per_day);
            let s = ratio(Solution::Strawman, per_day);
            assert!(g > h && h > s, "per_day={per_day}: {g:.3} {h:.3} {s:.3}");
        }
        // GEMINI dominates everything at every rate.
        for per_day in [1.0, 4.0] {
            let g = ratio(Solution::Gemini, per_day);
            assert!(g > ratio(Solution::HighFreq, per_day));
            assert!(g > ratio(Solution::Strawman, per_day));
        }
    }

    #[test]
    fn ratios_degrade_with_failure_rate() {
        let mut prev = 1.1;
        for per_day in [0.0, 2.0, 4.0, 8.0] {
            let r = ratio(Solution::Strawman, per_day);
            assert!(r < prev + 1e-9, "per_day={per_day}");
            prev = r;
        }
    }

    #[test]
    fn fig15b_thousand_instances() {
        // Fig. 15b: at 1000 instances (15 failures/day) GEMINI ≈ 91%,
        // ≈54% better than HighFreq; Strawman can hardly proceed.
        let g = run_campaign(&CampaignConfig::fig15b(Solution::Gemini, 1000, 7))
            .unwrap()
            .effective_ratio;
        let h = run_campaign(&CampaignConfig::fig15b(Solution::HighFreq, 1000, 7))
            .unwrap()
            .effective_ratio;
        let s = run_campaign(&CampaignConfig::fig15b(Solution::Strawman, 1000, 7))
            .unwrap()
            .effective_ratio;
        assert!((0.85..0.97).contains(&g), "gemini = {g:.3}");
        assert!(g / h > 1.3, "gemini/highfreq = {:.2}", g / h);
        assert!(s < 0.35, "strawman = {s:.3}");
    }

    #[test]
    fn campaign_metrics_flow_through_the_sink() {
        let sink = TelemetrySink::enabled();
        let r = execute_campaign(&CampaignConfig::fig15(Solution::Gemini, 4.0, 9), &sink).unwrap();
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::labeled(
                "campaign.failures",
                "solution",
                "GEMINI"
            )),
            r.failures
        );
        assert_eq!(
            snap.gauge(gemini_telemetry::Key::labeled(
                "campaign.effective_ratio",
                "solution",
                "GEMINI"
            )),
            Some(r.effective_ratio)
        );
    }

    #[test]
    fn batched_campaigns_match_serial_at_any_job_count() {
        let grid = campaign_grid(
            &[3, 9],
            &[0.0, 4.0],
            &[Solution::Gemini, Solution::HighFreq],
        );
        assert_eq!(grid.len(), 8);
        let serial = run_campaigns(&grid, 1).unwrap();
        for jobs in [2, 4, 8] {
            let par = run_campaigns(&grid, jobs).unwrap();
            assert_eq!(serial.len(), par.len());
            for (s, p) in serial.iter().zip(par.iter()) {
                assert_eq!(s.effective_ratio.to_bits(), p.effective_ratio.to_bits());
                assert_eq!(s.failures, p.failures);
                assert_eq!(s.iterations, p.iterations);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_campaign(&CampaignConfig::fig15(Solution::Gemini, 4.0, 9)).unwrap();
        let b = run_campaign(&CampaignConfig::fig15(Solution::Gemini, 4.0, 9)).unwrap();
        assert_eq!(a.effective_ratio, b.effective_ratio);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn failure_counts_scale_with_rate() {
        let lo = run_campaign(&CampaignConfig::fig15(Solution::Gemini, 1.0, 3))
            .unwrap()
            .failures;
        let hi = run_campaign(&CampaignConfig::fig15(Solution::Gemini, 8.0, 3))
            .unwrap()
            .failures;
        assert!(hi > lo * 4, "lo={lo} hi={hi}");
        // A week at 8/day ≈ 56 failures.
        assert!((30..90).contains(&hi), "hi={hi}");
    }
}
