//! The chaos engine: deterministic, seeded fault-injection campaigns.
//!
//! The recovery drill ([`crate::drill`]) injects exactly one failure batch
//! and stops when training resumes. Real clusters misbehave in richer
//! ways: machines die *while* a recovery is already in flight, whole
//! placement groups go down together, the distributed KV store itself
//! blacks out, heartbeats arrive late, NICs degrade or partition, the
//! cloud operator runs out of capacity, and root agents churn. This
//! module composes those faults into named, reproducible *chaos plans*
//! and runs them through the same discrete-event stack the drill uses —
//! worker/root agents heartbeating into [`gemini_kvstore::KvStore`],
//! leader election, scan-based detection, serialization, replacement via
//! [`gemini_cluster::CloudOperator`], plan-driven retrieval — hardened
//! with bounded retry ([`gemini_kvstore::RetryPolicy`]) and graceful
//! degradation ([`RecoveryPlanner::plan_degraded`]).
//!
//! # Detection under chaos
//!
//! The drill may treat the first missing health key as a confirmed
//! failure because nothing else can make keys vanish. Under chaos a KV
//! blackout or a delayed heartbeat batch can expire *every* lease at
//! once; reacting instantly would trigger a spurious cluster-wide
//! recovery. The chaos root therefore requires a **confirmation streak**:
//! a rank is declared failed only after its key has been missing on
//! [`CONFIRM_TICKS`] consecutive 1-second scans — longer than a heartbeat
//! period, so a machine that is merely re-registering after a blip always
//! clears itself in time.
//!
//! # Invariants
//!
//! Every run checks four invariants and reports violations in
//! [`ChaosReport::violations`] (empty ⇔ green):
//!
//! 1. **At most one root leader at any instant** (checked on every scan
//!    tick via the KV election).
//! 2. **No committed checkpoint is lost below the placement tolerance**:
//!    if the hardware-failed set is recoverable per
//!    [`gemini_core::Placement::recoverable`] and no NIC partition is
//!    active, recovery must not fall back to persistent storage or roll
//!    back past the last committed iteration. A deliberate
//!    persistent-first **policy tier override** is the one sanctioned
//!    exception — it trades rollback for a faster path and is checked
//!    *cross-run* by [`check_policy_preserves_commits`] instead.
//!
//! # Policies
//!
//! Every run optionally carries a [`PolicySpec`]: a fixed comparator
//! freezes the fault-tolerance knobs ([`PolicyKnobs`]) at launch, while
//! the adaptive spec drives them through [`gemini_core::policy`]'s online
//! engine at iteration boundaries (checkpoint cadence, persistent-upload
//! interval, retrieval-tier preference; replica-count re-planning is left
//! to [`crate::runtime`]). Policy-off runs ([`run_chaos_with`]) remain
//! byte-identical to the pre-policy engine. Every run — with or without a
//! policy — accounts its wasted time (paper §2.1 Eq. 1: rework + downtime
//! + visible overhead) in a [`WastedLedger`] on the report.
//! 3. **Recovery always terminates**: no wave may still be in flight (and
//!    no rank still down) when the horizon is reached.
//! 4. **Byte-identical reruns per seed**: [`ChaosReport::render`] of two
//!    runs with the same plan and seed must compare equal (asserted by
//!    the integration suite and the CI smoke, not in-run).

use crate::scenario::Deployment;
use gemini_baselines::competing::{scheme_signals, SchemeInputs};
use gemini_cluster::{CloudOperator, FailureKind, OperatorConfig};
use gemini_core::agents::{RootAgent, WorkerAgent};
use gemini_core::policy::{
    ModeSignals, PolicyEngine, PolicyKnobs, PolicySignals, PolicySpec, RecoveryMode, SchemeChoice,
    SchemeSignals, TierPreference,
};
use gemini_core::recovery::{
    RecoveryCase, RecoveryPlan, RecoveryPlanner, RetrievalSource, ShrinkPlan, TimeoutClass,
};
use gemini_core::{GeminiError, StorageTier, WastedLedger};
use gemini_kvstore::{KvStore, RetryPolicy};
use gemini_sim::{Context, DetRng, Engine, Model, SimDuration, SimTime};
use gemini_telemetry::{
    intern_label, CausalEvent, CausalKind, EngineTelemetryProbe, FailureClass, Key,
    PolicySignalsSnapshot, TelemetryEvent, TelemetrySink,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Consecutive scans a health key must be missing before the root
/// confirms the rank as failed (see the module docs). At one scan per
/// second this is comfortably above the 5 s heartbeat period, so
/// re-registration after a KV blip or a delayed heartbeat batch always
/// wins the race against a spurious recovery.
pub const CONFIRM_TICKS: u32 = 7;

/// How long a churned (resigned) root abstains from re-campaigning, so
/// leadership genuinely moves to another machine.
const CHURN_MUTE: SimDuration = SimDuration::from_secs(15);

/// How many ranks (the lowest-numbered) act as root-leader candidates.
/// At the paper's 16-machine scale this covers the whole cluster, so
/// behaviour is identical to all-ranks candidacy; at fleet scale it
/// bounds the per-tick KV campaign/census cost to a constant instead of
/// O(N), mirroring how production deployments elect among a small seed
/// set rather than the entire fleet.
pub const ROOT_CANDIDATES: usize = 16;

/// Fraction of a persistent upload's duration charged to the wasted-time
/// ledger as training-visible interference. The upload itself runs on the
/// storage path, but draining GPU→CPU staging buffers and the control
/// traffic contend with training for part of it (§7.1's `torch.save()`
/// stalls are the extreme case; GEMINI's async persist only grazes
/// training). Charged to the [`WastedLedger`] only — the simulated
/// timeline is never perturbed, so determinism is untouched.
pub const PERSIST_VISIBLE_FRAC: f64 = 0.25;

/// One injectable fault.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Kill one machine (software: process crash; hardware: the machine
    /// and its CPU checkpoint replicas are gone).
    Kill {
        /// The victim rank.
        rank: usize,
        /// Software or hardware.
        kind: FailureKind,
    },
    /// Kill every member of one placement group simultaneously — the
    /// correlated rack/switch failure that defeats group placement.
    KillGroup {
        /// Index into [`gemini_core::Placement::groups`].
        group: usize,
        /// Software or hardware.
        kind: FailureKind,
    },
    /// The distributed KV store is unreachable for `duration`: heartbeats
    /// are lost, campaigns and scans cannot run. Leases keep expiring.
    KvOutage {
        /// Outage length.
        duration: SimDuration,
    },
    /// Heartbeats sent during the window are delivered only when it ends
    /// (delayed delivery, not loss).
    HeartbeatDelay {
        /// Window length.
        duration: SimDuration,
    },
    /// NIC bandwidth degradation: remote retrievals take `factor`× as
    /// long while the window is active.
    NicDegrade {
        /// Slowdown multiplier (> 1).
        factor: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// NIC partition: the listed ranks cannot *serve* remote-CPU
    /// retrievals while the window is active (their own heartbeats use
    /// the control-plane path and still flow).
    NicPartition {
        /// Unreachable ranks.
        ranks: Vec<usize>,
        /// Window length.
        duration: SimDuration,
    },
    /// The cloud operator's control plane denies replacement requests for
    /// `duration` (ASG capacity exhaustion / API outage).
    OperatorOutage {
        /// Outage length.
        duration: SimDuration,
    },
    /// A spot-market preemption: the cloud gives `notice` of advance
    /// warning, the victim flushes an incremental checkpoint of its
    /// un-committed state inside the window, then the machine is
    /// reclaimed (a hardware loss). MoE workloads flush only the dirty
    /// expert fraction; dense workloads flush a full commit.
    SpotPreempt {
        /// The victim rank.
        rank: usize,
        /// Advance warning between the notice and the reclaim.
        notice: SimDuration,
    },
    /// Root-agent churn: `kills` times, every `period`, the current
    /// leader resigns and abstains from re-campaigning for a while.
    RootChurn {
        /// Number of forced resignations.
        kills: usize,
        /// Spacing between them.
        period: SimDuration,
    },
}

/// A fault scheduled at an absolute simulation time.
#[derive(Clone, Debug)]
pub struct TimedFault {
    /// When the fault strikes (window faults open at this instant).
    pub at: SimTime,
    /// What happens.
    pub fault: FaultKind,
}

/// A named, fully deterministic chaos scenario.
#[derive(Clone, Debug)]
pub struct ChaosPlan {
    /// Stable name (used in reports and the CI smoke).
    pub name: String,
    /// The deployment under test.
    pub scenario: Deployment,
    /// Cloud-operator behaviour (standbys etc.).
    pub operator: OperatorConfig,
    /// The fault schedule.
    pub faults: Vec<TimedFault>,
    /// How long the simulation runs. Recovery must finish before this.
    pub horizon: SimTime,
    /// Backoff schedule for replacement requests denied by the operator.
    pub retry: RetryPolicy,
}

impl ChaosPlan {
    fn base(name: &str) -> ChaosPlan {
        ChaosPlan {
            name: name.to_string(),
            scenario: Deployment::dense_gpt2_100b_p4d(),
            operator: OperatorConfig::default(),
            faults: Vec::new(),
            horizon: SimTime::from_secs(2400),
            retry: RetryPolicy::default(),
        }
    }

    /// One hardware kill mid-iteration, while the checkpoint interleave
    /// is streaming — the baseline chaos plan (drill-equivalent, but with
    /// confirmation-streak detection and training resuming afterwards).
    pub fn kill_mid_checkpoint() -> ChaosPlan {
        let mut p = ChaosPlan::base("kill_mid_checkpoint");
        p.faults = vec![TimedFault {
            at: SimTime::from_secs(500),
            fault: FaultKind::Kill {
                rank: 5,
                kind: FailureKind::Hardware,
            },
        }];
        p
    }

    /// A whole placement group dies at once (correlated rack failure):
    /// every CPU replica of the group's shards is gone, so recovery must
    /// legitimately fall back to the persisted checkpoint.
    pub fn correlated_group_loss() -> ChaosPlan {
        let mut p = ChaosPlan::base("correlated_group_loss");
        p.faults = vec![TimedFault {
            at: SimTime::from_secs(600),
            fault: FaultKind::KillGroup {
                group: 1,
                kind: FailureKind::Hardware,
            },
        }];
        p.horizon = SimTime::from_secs(4800);
        p
    }

    /// A 30 s KV-store blackout expires every health lease at once; the
    /// confirmation streak must prevent a spurious cluster-wide recovery.
    /// A real software failure later checks detection still works.
    pub fn kv_outage_blackout() -> ChaosPlan {
        let mut p = ChaosPlan::base("kv_outage_blackout");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(300),
                fault: FaultKind::KvOutage {
                    duration: SimDuration::from_secs(30),
                },
            },
            TimedFault {
                at: SimTime::from_secs(700),
                fault: FaultKind::Kill {
                    rank: 3,
                    kind: FailureKind::Software,
                },
            },
        ];
        p
    }

    /// The elected root resigns three times in a row; leadership must
    /// hand over cleanly (never two leaders, no lease pile-up) and a
    /// failure injected during the churn is still detected.
    pub fn root_churn() -> ChaosPlan {
        let mut p = ChaosPlan::base("root_churn");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(200),
                fault: FaultKind::RootChurn {
                    kills: 3,
                    period: SimDuration::from_secs(30),
                },
            },
            TimedFault {
                at: SimTime::from_secs(600),
                fault: FaultKind::Kill {
                    rank: 9,
                    kind: FailureKind::Software,
                },
            },
        ];
        p
    }

    /// Zero standbys plus a 90 s operator outage that swallows the
    /// replacement request: the root must retry with bounded backoff
    /// ([`RetryPolicy`]) until the control plane recovers.
    pub fn replacement_exhaustion() -> ChaosPlan {
        let mut p = ChaosPlan::base("replacement_exhaustion");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(390),
                fault: FaultKind::Kill {
                    rank: 6,
                    kind: FailureKind::Hardware,
                },
            },
            TimedFault {
                at: SimTime::from_secs(400),
                fault: FaultKind::OperatorOutage {
                    duration: SimDuration::from_secs(90),
                },
            },
        ];
        // Worst-case patience 2+4+8+16+32+60+60 = 182 s > the 90 s outage.
        p.retry = RetryPolicy::new(
            8,
            SimDuration::from_secs(2),
            SimDuration::from_secs(60),
        );
        p.horizon = SimTime::from_secs(3000);
        p
    }

    /// A hardware kill whose only remote-CPU source is NIC-partitioned
    /// exactly when retrieval starts: the planner must degrade gracefully
    /// to the persistent checkpoint instead of erroring.
    pub fn degraded_nic_partition() -> ChaosPlan {
        let mut p = ChaosPlan::base("degraded_nic_partition");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(500),
                fault: FaultKind::Kill {
                    rank: 5,
                    kind: FailureKind::Hardware,
                },
            },
            // Rank 4 holds the only other replica of rank 5's shard
            // (group placement pairs (4, 5)); partition it across the
            // whole detection + serialization + replacement window.
            TimedFault {
                at: SimTime::from_secs(480),
                fault: FaultKind::NicPartition {
                    ranks: vec![4],
                    duration: SimDuration::from_secs(720),
                },
            },
        ];
        p.horizon = SimTime::from_secs(4800);
        p
    }

    /// Delayed heartbeat batches (long enough to expire leases, short
    /// enough that re-registration beats the confirmation streak) plus a
    /// degraded NIC during the eventual retrieval.
    pub fn flaky_heartbeats() -> ChaosPlan {
        let mut p = ChaosPlan::base("flaky_heartbeats");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(250),
                fault: FaultKind::HeartbeatDelay {
                    duration: SimDuration::from_secs(12),
                },
            },
            TimedFault {
                at: SimTime::from_secs(320),
                fault: FaultKind::HeartbeatDelay {
                    duration: SimDuration::from_secs(12),
                },
            },
            TimedFault {
                at: SimTime::from_secs(700),
                fault: FaultKind::NicDegrade {
                    factor: 2.0,
                    duration: SimDuration::from_secs(900),
                },
            },
            TimedFault {
                at: SimTime::from_secs(800),
                fault: FaultKind::Kill {
                    rank: 11,
                    kind: FailureKind::Hardware,
                },
            },
        ];
        p
    }

    /// Two correlated group losses in a row: the first should teach an
    /// adaptive policy that correlated failures are live, so it persists
    /// more aggressively before the second strikes. A fixed 3 h persist
    /// interval rolls the second recovery all the way back to the launch
    /// checkpoint.
    pub fn repeat_group_loss() -> ChaosPlan {
        let mut p = ChaosPlan::base("repeat_group_loss");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(900),
                fault: FaultKind::KillGroup {
                    group: 1,
                    kind: FailureKind::Hardware,
                },
            },
            TimedFault {
                at: SimTime::from_secs(5_100),
                fault: FaultKind::KillGroup {
                    group: 2,
                    kind: FailureKind::Hardware,
                },
            },
        ];
        p.horizon = SimTime::from_secs(9_600);
        p
    }

    /// The training NIC collapses (1500× degrade) before a hardware kill:
    /// remote-CPU retrieval over the dying fabric costs over an hour,
    /// while the persistent anchor — reached over the separate storage
    /// path — costs ~8 minutes plus bounded rework. An adaptive tier
    /// preference should flip to persistent-first; the paper's fixed
    /// hierarchy grinds through the degraded fabric.
    pub fn nic_collapse() -> ChaosPlan {
        let mut p = ChaosPlan::base("nic_collapse");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(240),
                fault: FaultKind::NicDegrade {
                    factor: 1_500.0,
                    duration: SimDuration::from_secs(14_000),
                },
            },
            TimedFault {
                at: SimTime::from_secs(1_000),
                fault: FaultKind::Kill {
                    rank: 5,
                    kind: FailureKind::Hardware,
                },
            },
        ];
        p.horizon = SimTime::from_secs(14_400);
        p
    }

    /// One spot-market preemption with a two-minute advance warning
    /// while the replacement pool is healthy: the benign half of the
    /// spot pair. The notice window flushes an incremental checkpoint,
    /// so the wave rolls back zero iterations even under a sparse
    /// cadence; wait-mode recovery is cheap here.
    pub fn spot_preemption_notice() -> ChaosPlan {
        let mut p = ChaosPlan::base("spot_preemption_notice");
        p.faults = vec![TimedFault {
            at: SimTime::from_secs(520),
            fault: FaultKind::SpotPreempt {
                rank: 6,
                notice: SimDuration::from_secs(120),
            },
        }];
        p
    }

    /// A spot-capacity crunch: the operator's control plane is down for
    /// 25 minutes (replacement requests are denied) and two machines are
    /// preempted inside the window, each with a 90-second warning.
    /// Wait-mode recovery stalls on the replacement backoff until the
    /// outage lifts; shrink-and-continue adopts the orphaned shards onto
    /// the survivors and trains on at 14/16 width. The retry budget is
    /// sized so the wait path still terminates before the horizon.
    pub fn spot_capacity_crunch() -> ChaosPlan {
        let mut p = ChaosPlan::base("spot_capacity_crunch");
        p.faults = vec![
            TimedFault {
                at: SimTime::from_secs(60),
                fault: FaultKind::OperatorOutage {
                    duration: SimDuration::from_secs(1_500),
                },
            },
            TimedFault {
                at: SimTime::from_secs(600),
                fault: FaultKind::SpotPreempt {
                    rank: 3,
                    notice: SimDuration::from_secs(90),
                },
            },
            TimedFault {
                at: SimTime::from_secs(610),
                fault: FaultKind::SpotPreempt {
                    rank: 11,
                    notice: SimDuration::from_secs(90),
                },
            },
        ];
        p.retry = RetryPolicy::new(40, SimDuration::from_secs(5), SimDuration::from_secs(60));
        p.horizon = SimTime::from_secs(3_600);
        p
    }

    /// The baseline hardware kill on the MoE deployment: exercises the
    /// expert-parallel timeline's sparse checkpoints through the same
    /// detection/serialize/retrieve/warm-up lifecycle as
    /// [`Self::kill_mid_checkpoint`].
    pub fn moe_kill_mid_checkpoint() -> ChaosPlan {
        let mut p = ChaosPlan::base("moe_kill_mid_checkpoint");
        p.scenario = Deployment::moe_gpt2_100b_p4d();
        p.faults = vec![TimedFault {
            at: SimTime::from_secs(500),
            fault: FaultKind::Kill {
                rank: 5,
                kind: FailureKind::Hardware,
            },
        }];
        p
    }

    /// Fleet-scale churn: 10 000 machines riding the SoA state path.
    /// Independent Poisson single-machine (software) churn — exponential
    /// inter-arrivals sampled once, at plan construction, from a fixed
    /// [`DetRng`] stream so the plan is a deterministic value — plus one
    /// correlated hardware group loss mid-run. The four invariants apply
    /// unchanged: single leader (over the [`ROOT_CANDIDATES`] seed set),
    /// no committed checkpoint lost below tolerance, recovery terminates
    /// before the horizon, zero spurious detections despite thousands of
    /// live heartbeat leases.
    pub fn fleet_wide_churn() -> ChaosPlan {
        const FLEET: usize = 10_000;
        let mut p = ChaosPlan::base("fleet_wide_churn");
        p.scenario.machines = FLEET;
        let mut rng = DetRng::new(0xF1EE7);
        let mut faults = Vec::new();
        // Poisson churn over [500 s, 1400 s): mean inter-arrival 180 s.
        // At 10k machines one iteration takes ~7 minutes, so the window
        // opens only after the first in-memory checkpoint has committed
        // (~426 s) — before that, a software-only failure has nothing to
        // recover from and the planner (correctly) refuses. Ranks are
        // drawn outside the root-candidate seed set so leader election
        // stays live however the churn lands (candidate loss is covered
        // by the paper-scale plans).
        let mut t = 500.0f64;
        loop {
            t += rng.exponential(1.0 / 180.0);
            if t >= 1400.0 {
                break;
            }
            let rank = rng.uniform_u64(ROOT_CANDIDATES as u64, FLEET as u64) as usize;
            faults.push(TimedFault {
                at: SimTime::from_secs(t as u64),
                fault: FaultKind::Kill {
                    rank,
                    kind: FailureKind::Software,
                },
            });
        }
        // One correlated rack loss in the middle of the churn window:
        // group 100 of mixed(10 000, 2) is the machine pair (200, 201) —
        // well clear of the candidate set.
        faults.push(TimedFault {
            at: SimTime::from_secs(900),
            fault: FaultKind::KillGroup {
                group: 100,
                kind: FailureKind::Hardware,
            },
        });
        faults.sort_by_key(|f| f.at);
        p.faults = faults;
        // Waves queue behind each other under churn (confirmed failures
        // arriving mid-retrieval defer to a follow-up wave), so the
        // horizon leaves room for the deferred tail to drain.
        p.horizon = SimTime::from_secs(4_200);
        p
    }

    /// Every named plan — the campaign matrix runs each against several
    /// seeds.
    pub fn catalog() -> Vec<ChaosPlan> {
        vec![
            ChaosPlan::kill_mid_checkpoint(),
            ChaosPlan::correlated_group_loss(),
            ChaosPlan::kv_outage_blackout(),
            ChaosPlan::root_churn(),
            ChaosPlan::replacement_exhaustion(),
            ChaosPlan::degraded_nic_partition(),
            ChaosPlan::flaky_heartbeats(),
            ChaosPlan::repeat_group_loss(),
            ChaosPlan::nic_collapse(),
            ChaosPlan::spot_preemption_notice(),
            ChaosPlan::spot_capacity_crunch(),
            ChaosPlan::moe_kill_mid_checkpoint(),
        ]
    }

    /// [`Self::catalog`] plus the fleet-scale plan — everything the chaos
    /// bin can name or run individually. The default campaign matrix
    /// sticks to the paper-scale catalog (the policy baselines are priced
    /// over it); the 10 000-machine plan runs as its own smoke and bench.
    pub fn extended_catalog() -> Vec<ChaosPlan> {
        let mut all = Self::catalog();
        all.push(Self::fleet_wide_churn());
        all
    }
}

/// One completed recovery wave.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WaveReport {
    /// Wave number (0-based, in completion order).
    pub index: usize,
    /// The failures handled, as `rank:kind` labels.
    pub failures: Vec<String>,
    /// When the root confirmed the (first batch of) failures.
    pub detected_at: SimTime,
    /// Which recovery mechanism applied.
    pub case: RecoveryCase,
    /// The iteration training rolled back to.
    pub resumed_from_iteration: u64,
    /// When training resumed (or the wave completed, if more ranks were
    /// still down).
    pub resumed_at: SimTime,
    /// `resumed_at - detected_at`.
    pub downtime: SimDuration,
    /// Why the plan degraded to persistent storage, if it did.
    pub degraded: Option<String>,
    /// The freshest committed iteration *recoverable* at detection time —
    /// best CPU-tier iteration over intact hosts, or the persistent
    /// anchor, whichever is newer. The policy-safety check
    /// ([`check_policy_preserves_commits`]) compares this field across
    /// runs: an adaptive policy must never make it smaller than a fixed
    /// policy's.
    pub available_at_detect: u64,
}

/// The outcome of one chaos run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChaosReport {
    /// The plan that ran.
    pub plan_name: String,
    /// The seed it ran under.
    pub seed: u64,
    /// The simulation horizon.
    pub horizon: SimTime,
    /// How many scheduled faults actually fired before the horizon.
    pub faults_injected: usize,
    /// Completed recovery waves, in order.
    pub waves: Vec<WaveReport>,
    /// Most concurrent leaders ever observed (invariant: ≤ 1).
    pub max_concurrent_leaders: usize,
    /// Times leadership changed identity.
    pub leader_changes: u64,
    /// Distinct alive ranks that ever reached the confirmation streak
    /// (invariant: 0 — the streak must absorb KV blips).
    pub spurious_detections: u64,
    /// Denied replacement requests that were retried with backoff.
    pub retry_attempts: u64,
    /// Replacement requests the operator denied (outage windows).
    pub replacements_denied: u64,
    /// The training iteration reached by the horizon.
    pub final_iteration: u64,
    /// Which policy drove the fault-tolerance knobs (`off` = the legacy
    /// fixed-at-launch behaviour, a fixed policy's name, or `adaptive`).
    pub policy: String,
    /// Knob changes the adaptive engine applied (0 for fixed / off).
    pub policy_decisions: u64,
    /// Persistent uploads completed by the policy driver during the run.
    pub persists_completed: u64,
    /// Recoveries rerouted to the persistent tier by the policy's tier
    /// preference.
    pub tier_overrides: u64,
    /// The fault-tolerance scheme active when the horizon was reached
    /// (`off` when no policy drives the run).
    pub scheme: String,
    /// Scheme switches the adaptive engine applied (0 for fixed / off).
    pub scheme_switches: u64,
    /// The recovery mode active when the horizon was reached (`off` when
    /// no policy drives the run; the policy-off executor always waits).
    pub mode: String,
    /// Recovery-mode switches the adaptive engine applied (0 for fixed /
    /// off).
    pub mode_switches: u64,
    /// The wasted-time ledger (paper §2.1): rework + downtime + visible
    /// checkpoint/persist overhead.
    pub wasted: WastedLedger,
    /// The causal flight-recorder trace: every recovery narrated as
    /// incident-stitched events (fault injected → confirmed → wave →
    /// retrieval → rollback → resume) plus background policy/persist
    /// events. Model-side state, so it is identical with the sink on or
    /// off and byte-identical across `--jobs` (covered by `render`).
    pub trace: Vec<CausalEvent>,
    /// Invariant violations; empty ⇔ the run is green.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether all invariants held.
    pub fn is_green(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic plain-text rendering. Two runs of the same plan and
    /// seed must produce byte-identical output (invariant 4); CI compares
    /// this, not JSON, so the offline serde stubs stay out of the loop.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos plan={} seed={} horizon={:.3}s\n",
            self.plan_name,
            self.seed,
            self.horizon.as_secs_f64()
        ));
        out.push_str(&format!(
            "faults_injected={} waves={}\n",
            self.faults_injected,
            self.waves.len()
        ));
        out.push_str(&format!(
            "leaders max_concurrent={} changes={}\n",
            self.max_concurrent_leaders, self.leader_changes
        ));
        out.push_str(&format!(
            "counters retries={} denied={} spurious={}\n",
            self.retry_attempts, self.replacements_denied, self.spurious_detections
        ));
        out.push_str(&format!(
            "policy={} decisions={} persists={} tier_overrides={} scheme={} \
             scheme_switches={} mode={} mode_switches={}\n",
            self.policy,
            self.policy_decisions,
            self.persists_completed,
            self.tier_overrides,
            self.scheme,
            self.scheme_switches,
            self.mode,
            self.mode_switches
        ));
        out.push_str(&format!(
            "wasted failures={} rework_iters={} rework={:.3}s downtime={:.3}s \
             overhead={:.3}s total={:.3}s\n",
            self.wasted.failures,
            self.wasted.rework_iters,
            self.wasted.rework.as_secs_f64(),
            self.wasted.downtime.as_secs_f64(),
            self.wasted.overhead.as_secs_f64(),
            self.wasted.total().as_secs_f64(),
        ));
        for w in &self.waves {
            out.push_str(&format!(
                "wave {}: failures=[{}] detected={:.3}s case={:?} resumed_iter={} \
                 resumed_at={:.3}s downtime={:.3}s degraded={} available={}\n",
                w.index,
                w.failures.join(","),
                w.detected_at.as_secs_f64(),
                w.case,
                w.resumed_from_iteration,
                w.resumed_at.as_secs_f64(),
                w.downtime.as_secs_f64(),
                w.degraded.as_deref().unwrap_or("-"),
                w.available_at_detect,
            ));
        }
        out.push_str(&format!("final_iteration={}\n", self.final_iteration));
        if self.violations.is_empty() {
            out.push_str("violations: none\n");
        } else {
            for v in &self.violations {
                out.push_str(&format!("violation: {v}\n"));
            }
        }
        for ev in &self.trace {
            out.push_str(&ev.render_line());
            out.push('\n');
        }
        // Derived incident analysis rides the same byte-identity
        // invariant: critical path, bounding phase and the exact
        // attribution check are all part of the canonical rendering.
        for line in crate::incident::render_summary(self) {
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

fn class_of(kind: FailureKind) -> FailureClass {
    match kind {
        FailureKind::Hardware => FailureClass::Hardware,
        FailureKind::Software => FailureClass::Software,
    }
}

fn kind_label(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Hardware => "hw",
        FailureKind::Software => "sw",
    }
}

#[derive(Debug)]
enum Ev {
    IterationDone(u64),
    Heartbeat(usize),
    DeliverHeartbeat(usize),
    CoordinationTick,
    Inject(usize),
    Churn { remaining: usize, period: SimDuration },
    SerializeDone { wave: usize, token: u64 },
    ReplacementAttempt { wave: usize, rank: usize, attempt: u32 },
    ReplacementReady { wave: usize, rank: usize },
    RetrievalDone { wave: usize },
    WarmupDone { wave: usize },
    PersistDone { iteration: u64, token: u64 },
    SpotKill { rank: usize },
}

struct Wave {
    index: usize,
    failures: Vec<(usize, FailureKind)>,
    detected_at: SimTime,
    serialize_token: u64,
    serialize_done: bool,
    replacements_pending: BTreeSet<usize>,
    plan: Option<RecoveryPlan>,
    committed_at_detect: u64,
    available_at_detect: u64,
    /// The recovery mode captured when the wave opened: a shrink-mode
    /// wave never requests replacements and retrieves through a
    /// [`ShrinkPlan`] instead.
    shrink_mode: bool,
    /// The executed shrink plan, once retrieval starts (shrink-mode
    /// hardware waves only).
    shrink: Option<ShrinkPlan>,
}

/// Drives the fault-tolerance knobs of one chaos run: either a frozen
/// [`PolicyKnobs`] (fixed comparator) or a live [`PolicyEngine`]
/// (adaptive). `None` on the [`ChaosModel`] means the legacy fixed-at-
/// launch behaviour — bit-for-bit identical to runs before policies
/// existed.
///
/// The chaos engine applies the **cadence**, **persist interval** and
/// **tier preference** knobs. Replica-count (`m`) re-planning requires a
/// placement rebuild and is deliberately *not* applied mid-chaos; the
/// [`crate::runtime`] layer applies it at safe boundaries instead.
struct PolicyDriver {
    name: String,
    knobs: PolicyKnobs,
    engine: Option<PolicyEngine>,
    last_persist_at: SimTime,
    persist_token: u64,
    persist_inflight: bool,
    persists_done: u64,
    tier_overrides: u64,
    scheme_switches: u64,
    mode_switches: u64,
}

impl PolicyDriver {
    fn new(spec: &PolicySpec) -> PolicyDriver {
        let (knobs, engine) = match spec {
            PolicySpec::Fixed(f) => (f.knobs, None),
            PolicySpec::Adaptive(cfg) => {
                let initial = PolicyKnobs::paper_default();
                (initial, Some(PolicyEngine::new(cfg.clone(), initial)))
            }
        };
        PolicyDriver {
            name: spec.name().to_string(),
            knobs,
            engine,
            last_persist_at: SimTime::ZERO,
            persist_token: 0,
            persist_inflight: false,
            persists_done: 0,
            tier_overrides: 0,
            scheme_switches: 0,
            mode_switches: 0,
        }
    }
}

struct ChaosModel {
    sys: crate::scenario::GeminiSystem,
    kv: KvStore,
    sink: TelemetrySink,
    workers: Vec<WorkerAgent>,
    roots: Vec<RootAgent>,
    operator: CloudOperator,
    retry: RetryPolicy,
    faults: Vec<TimedFault>,
    // Precomputed fault windows.
    kv_outages: Vec<(SimTime, SimTime)>,
    hb_delays: Vec<(SimTime, SimTime)>,
    degrades: Vec<(SimTime, SimTime, f64)>,
    partitions: Vec<(SimTime, SimTime, Vec<usize>)>,
    /// Operator control-plane outage windows — the replacement-wait
    /// signal the recovery-mode pricing reads.
    op_outages: Vec<(SimTime, SimTime)>,
    // Live state.
    policy: Option<PolicyDriver>,
    /// Feasibility and pricing of the competing fault-tolerance schemes
    /// on this deployment, computed once at launch (the fabric and model
    /// shapes never change mid-run; degradation enters through the
    /// retrieval signals instead).
    scheme_signals: SchemeSignals,
    /// Whether an `m + 1`-th replica fits in CPU memory, priced once at
    /// launch (feeds the step-up recovery-mode candidate).
    step_up_feasible: bool,
    /// The extra replica's per-commit checkpoint traffic.
    step_up_overhead: SimDuration,
    ledger: WastedLedger,
    correlated_pending: BTreeSet<usize>,
    // Per-rank hot state lives in flat rank-indexed lanes (SoA), not
    // keyed maps: the coordination tick scans every rank once per
    // simulated second, and at fleet scale (10k machines × a month) the
    // O(log n) probes and pointer-chasing of per-rank map entries are
    // what the DES event budget goes to. Lane scans also visit ranks in
    // ascending order, which is exactly the iteration order the old
    // BTree keys had — reports and traces are unchanged.
    /// Failure lane: `Some(kind)` while the rank is down.
    down: Vec<Option<FailureKind>>,
    /// Number of `Some` entries in `down` — O(1) "anyone down?" checks.
    down_count: usize,
    /// Ranks a shrink-and-continue recovery removed from the job: no
    /// longer down, but never re-registered either. They stay `handled`
    /// so their saturated streaks can never re-confirm.
    detached: Vec<bool>,
    /// Number of `true` entries in `detached`.
    detached_count: usize,
    /// Iteration-time stretch after shrinking: `N / survivors` under
    /// the linear-scaling assumption; `1.0` at full width.
    slowdown: f64,
    muted_until: Vec<SimTime>,
    streak: Vec<u32>,
    /// Ranks already adopted by a recovery wave.
    handled: Vec<bool>,
    wave: Option<Wave>,
    waves_done: Vec<WaveReport>,
    next_wave_index: usize,
    serialize_seq: u64,
    current_iteration: u64,
    last_committed: u64,
    training_blocked: bool,
    // Accounting.
    injected: usize,
    max_leaders: usize,
    leader_changes: u64,
    last_leader: Option<String>,
    /// Lane of ranks already counted as spurious detections.
    spurious: Vec<bool>,
    spurious_count: u64,
    retry_attempts: u64,
    violations: Vec<String>,
    // Flight recorder (model-side, sink-independent).
    trace: Vec<CausalEvent>,
    /// Per-rank trace indices (FaultInjected/Confirmed) still awaiting
    /// the incident id of the wave that will adopt them.
    pending_trace: Vec<Vec<usize>>,
    /// When the rank's current failure was injected.
    injected_at: Vec<Option<SimTime>>,
    /// Ranks whose current failure already recorded its Confirmed event.
    confirm_noted: Vec<bool>,
    /// Applied-decision counter: the policy epoch stamped onto waves and
    /// persist charges.
    policy_epoch: u64,
    /// Interned `"{plan}:{seed}"` label scoping per-run counters; empty
    /// (and unused) when the sink is disabled.
    cell: &'static str,
    /// Interned plan name for the detection-latency histogram.
    plan_label: &'static str,
}

fn in_window(windows: &[(SimTime, SimTime)], now: SimTime) -> bool {
    windows.iter().any(|&(s, e)| s <= now && now < e)
}

impl ChaosModel {
    fn kv_out(&self, now: SimTime) -> bool {
        in_window(&self.kv_outages, now)
    }

    /// If a heartbeat-delay window is active, the instant delivery
    /// resumes (the latest end among active windows).
    fn hb_delay_release(&self, now: SimTime) -> Option<SimTime> {
        self.hb_delays
            .iter()
            .filter(|&&(s, e)| s <= now && now < e)
            .map(|&(_, e)| e)
            .max()
    }

    fn unreachable_at(&self, now: SimTime) -> BTreeSet<usize> {
        let mut set = BTreeSet::new();
        for (s, e, ranks) in &self.partitions {
            if *s <= now && now < *e {
                set.extend(ranks.iter().copied());
            }
        }
        set
    }

    /// The recovery mode in force: the active policy's knob, or the
    /// paper's wait-for-replacement default on policy-off runs.
    fn active_mode(&self) -> RecoveryMode {
        self.policy
            .as_ref()
            .map_or(RecoveryMode::Wait, |d| d.knobs.mode)
    }

    fn degrade_factor_at(&self, now: SimTime) -> f64 {
        self.degrades
            .iter()
            .filter(|&&(s, e, _)| s <= now && now < e)
            .map(|&(_, _, f)| f.max(1.0))
            .product::<f64>()
            .max(1.0)
    }

    /// The freshest committed iteration recoverable right now: the best
    /// CPU-tier iteration over hosts whose CPU memory is intact, or the
    /// persistent anchor, whichever is newer.
    fn available_now(&self) -> u64 {
        let cpu_intact: BTreeSet<usize> = (0..self.sys.cluster.len())
            .filter(|&r| !matches!(self.down[r], Some(FailureKind::Hardware)) && !self.detached[r])
            .collect();
        let cpu = self
            .sys
            .store
            .latest_recoverable(&cpu_intact)
            .unwrap_or(0);
        let anchor = self.sys.store.persistent().map_or(0, |m| m.iteration);
        cpu.max(anchor)
    }

    /// Appends one event to the model-side flight recorder and returns
    /// its index (for later incident-id patching).
    fn push_trace(&mut self, incident: Option<u64>, at: SimTime, kind: CausalKind) -> usize {
        let idx = self.trace.len();
        self.trace.push(CausalEvent { incident, at, kind });
        idx
    }

    /// Patches the still-unadopted FaultInjected/Confirmed events of
    /// `ranks` with the incident id of the wave adopting them.
    fn adopt_pending(&mut self, incident: u64, ranks: &[usize]) {
        for &rank in ranks {
            for idx in std::mem::take(&mut self.pending_trace[rank]) {
                self.trace[idx].incident = Some(incident);
            }
        }
    }

    /// The machine-group label for a set of failed ranks: `gN` when every
    /// rank sits in the same placement group, `multi` otherwise.
    fn group_label(&self, ranks: &[usize]) -> String {
        let groups = self.sys.placement.groups();
        for (gi, group) in groups.iter().enumerate() {
            if ranks.iter().all(|r| group.members.contains(r)) {
                return format!("g{gi}");
            }
        }
        "multi".to_string()
    }

    /// Bumps a counter scoped to this run's `(plan, seed)` cell, so
    /// concurrent `Scenario` runs sharing a sink never blend series.
    fn cell_count(&self, name: &'static str) {
        self.sink
            .counter_add_key(Key::labeled(name, "cell", self.cell), 1);
    }

    /// Feeds confirmed failures into the adaptive engine (fixed drivers
    /// and policy-off runs ignore them). A failure is *correlated* when
    /// its rank went down as part of a whole-group kill — the only kind
    /// of loss CPU replication cannot absorb.
    fn note_confirmed(&mut self, now: SimTime, failures: &[(usize, FailureKind)]) {
        if let Some(engine) = self
            .policy
            .as_mut()
            .and_then(|driver| driver.engine.as_mut())
        {
            for &(rank, kind) in failures {
                engine.observe_failure(
                    now,
                    self.correlated_pending.contains(&rank),
                    kind == FailureKind::Software,
                );
            }
        }
        for &(rank, _) in failures {
            self.correlated_pending.remove(&rank);
        }
    }

    /// Policy work at an unblocked iteration boundary: evaluate the
    /// adaptive engine against freshly sampled signals, record applied
    /// decisions, and kick off a persistent upload when the active
    /// interval has elapsed. No-op on policy-off runs, so the legacy
    /// event stream is untouched.
    fn policy_boundary(&mut self, ctx: &mut Context<'_, Ev>, now: SimTime) {
        if self.policy.is_none() {
            return;
        }
        let degrade = self.degrade_factor_at(now);
        let persist_upload = self.sys.retrieval_time(StorageTier::Persistent);
        let retrieval_remote = self
            .sys
            .retrieval_time(StorageTier::RemoteCpu)
            .mul_f64(degrade);
        let n = self.sys.cluster.len();
        let healthy = n - self.down_count - self.detached_count;
        // Recovery-mode pricing facts. The replacement wait is what the
        // operator would quote right now: any remaining control-plane
        // outage, then standby activation (if standbys are provisioned)
        // or the mean fresh-reserve delay.
        let outage_left = self
            .op_outages
            .iter()
            .filter(|&&(s, e)| s <= now && now < e)
            .map(|&(_, e)| e.saturating_since(now))
            .max()
            .unwrap_or(SimDuration::ZERO);
        let oc = *self.operator.config();
        let provision = if oc.standbys > 0 {
            oc.standby_activation
        } else {
            SimDuration::from_secs_f64(
                (oc.reserve_min.as_secs_f64() + oc.reserve_max.as_secs_f64()) / 2.0,
            )
        };
        let mode_signals = ModeSignals {
            replacement_wait: outage_left + provision,
            shrink_feasible: healthy > self.sys.scenario.config.replicas,
            repartition_time: self.sys.serialize_time() + retrieval_remote,
            // Throughput lost if the *next* hardware failure is absorbed
            // by shrinking (on top of any width already given up).
            degraded_frac: (n - healthy + 1) as f64 / n.max(1) as f64,
            // Stepping up means provisioning a hot spare — impossible
            // while the operator's control plane is down, so during an
            // outage the only candidates are waiting it out or shrinking.
            step_up_feasible: self.step_up_feasible && outage_left == SimDuration::ZERO,
            step_up_overhead: self.step_up_overhead,
        };
        let signals = PolicySignals {
            now,
            committed: self.last_committed,
            iteration_time: self.sys.iteration_time(),
            ckpt_overhead: self.sys.schedule.outcome.overhead,
            retrieval_remote,
            retrieval_persistent: persist_upload,
            persist_upload,
            persist_anchor: self.sys.store.persistent().map(|m| m.iteration),
            healthy_machines: healthy,
            machines: n,
            scheme: self.scheme_signals,
            mode: mode_signals,
        };
        let driver = self.policy.as_mut().expect("policy driver present");
        let mut decided: Option<(String, PolicySignalsSnapshot)> = None;
        let mut charged: Option<SimDuration> = None;
        if let Some(engine) = driver.engine.as_mut() {
            self.sink
                .counter_add_key(Key::labeled("policy.evaluations", "cell", self.cell), 1);
            if let Some(rec) = engine.evaluate(&signals) {
                // Apply cadence / persist / tier / scheme; `m` re-planning
                // is the runtime's job (placement rebuilds are unsafe
                // mid-chaos).
                let prev_scheme = driver.knobs.scheme;
                let prev_mode = driver.knobs.mode;
                driver.knobs = PolicyKnobs {
                    replicas: driver.knobs.replicas,
                    ..rec.knobs
                };
                if driver.knobs.mode != prev_mode {
                    driver.mode_switches += 1;
                    self.sink.counter_add_key(
                        Key::labeled("policy.mode.switches", "cell", self.cell),
                        1,
                    );
                    let from = prev_mode.label().to_string();
                    let to = driver.knobs.mode.label().to_string();
                    let why = rec.reason.clone();
                    self.sink.event(now, move || TelemetryEvent::Note {
                        message: format!("recovery mode {from} -> {to}: {why}"),
                    });
                }
                if driver.knobs.scheme != prev_scheme {
                    driver.scheme_switches += 1;
                    self.sink.counter_add_key(
                        Key::labeled("policy.scheme.switches", "cell", self.cell),
                        1,
                    );
                    let from = prev_scheme.label().to_string();
                    let to = driver.knobs.scheme.label().to_string();
                    let why = rec.reason.clone();
                    self.sink.event(now, move || TelemetryEvent::SchemeSwitch {
                        from,
                        to,
                        reason: why,
                    });
                }
                self.sink
                    .counter_add_key(Key::labeled("policy.decisions", "cell", self.cell), 1);
                self.policy_epoch += 1;
                decided = Some((rec.reason.clone(), signals.snapshot()));
                let knobs = rec.knobs;
                let reason = rec.reason.clone();
                self.sink.event(now, move || TelemetryEvent::PolicyDecision {
                    ckpt_every_iters: knobs.ckpt_every_iters,
                    persist_interval_secs: knobs
                        .persist_interval
                        .map(|d| d.as_secs_f64().round() as u64),
                    replicas: knobs.replicas as u64,
                    tier_preference: knobs.tier.label().to_string(),
                    reason,
                });
            }
        }
        if let Some(interval) = driver.knobs.persist_interval {
            if !driver.persist_inflight
                && now.saturating_since(driver.last_persist_at) >= interval
            {
                driver.persist_inflight = true;
                driver.persist_token += 1;
                driver.last_persist_at = now;
                let token = driver.persist_token;
                let iteration = self.last_committed;
                let overhead = persist_upload.mul_f64(PERSIST_VISIBLE_FRAC);
                self.ledger.record_overhead(overhead);
                charged = Some(overhead);
                self.sink.counter_add_key(
                    Key::labeled("policy.persists_started", "cell", self.cell),
                    1,
                );
                ctx.schedule_after(persist_upload, Ev::PersistDone { iteration, token });
            }
        }
        if let Some((reason, signals)) = decided {
            let epoch = self.policy_epoch;
            self.push_trace(
                None,
                now,
                CausalKind::PolicyDecision {
                    epoch,
                    reason,
                    signals,
                },
            );
        }
        if let Some(amount) = charged {
            let epoch = self.policy_epoch;
            self.push_trace(None, now, CausalKind::PersistCharged { amount, epoch });
        }
    }

    fn kill(&mut self, ctx: &mut Context<'_, Ev>, rank: usize, kind: FailureKind) {
        if rank >= self.sys.cluster.len() || self.down[rank].is_some() {
            return;
        }
        self.down[rank] = Some(kind);
        self.down_count += 1;
        self.sys.cluster.fail(rank, kind).expect("rank exists");
        if kind == FailureKind::Hardware {
            self.sys.store.machine_lost(rank);
        }
        self.training_blocked = true;
        let now = ctx.now();
        self.injected_at[rank] = Some(now);
        let idx = self.push_trace(
            None,
            now,
            CausalKind::FaultInjected {
                rank,
                class: class_of(kind),
            },
        );
        self.pending_trace[rank].push(idx);
        self.sink.event(now, || TelemetryEvent::FailureInjected {
            rank,
            kind: class_of(kind),
        });
    }

    fn begin_hw_replacement(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        wave_idx: usize,
        rank: usize,
    ) {
        self.sys
            .cluster
            .begin_replacement(rank)
            .expect("rank exists");
        if let Some(w) = self.wave.as_mut() {
            w.replacements_pending.insert(rank);
        }
        ctx.schedule_after(
            SimDuration::ZERO,
            Ev::ReplacementAttempt {
                wave: wave_idx,
                rank,
                attempt: 0,
            },
        );
    }

    fn announce_failures(&mut self, now: SimTime, ranks: &[usize]) {
        for &rank in ranks {
            self.sink
                .event(now, || TelemetryEvent::HeartbeatMissed { rank });
        }
        let by = self.last_leader.clone().unwrap_or_default();
        let rank_vec = ranks.to_vec();
        self.sink.event(now, || TelemetryEvent::FailureDetected {
            ranks: rank_vec,
            by,
        });
    }

    fn start_wave(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        now: SimTime,
        failures: Vec<(usize, FailureKind)>,
    ) {
        let index = self.next_wave_index;
        self.next_wave_index += 1;
        for &(r, _) in &failures {
            self.handled[r] = true;
        }
        self.note_confirmed(now, &failures);
        let ranks: Vec<usize> = failures.iter().map(|&(r, _)| r).collect();
        self.announce_failures(now, &ranks);
        self.serialize_seq += 1;
        let token = self.serialize_seq;
        let alive_count = self.sys.cluster.len() - self.down_count;
        self.sink
            .event(now, || TelemetryEvent::SerializationStarted {
                ranks: alive_count,
            });
        ctx.schedule_after(
            self.sys.serialize_time(),
            Ev::SerializeDone { wave: index, token },
        );
        let shrink_mode = self.active_mode() == RecoveryMode::Shrink;
        self.wave = Some(Wave {
            index,
            failures: failures.clone(),
            detected_at: now,
            serialize_token: token,
            serialize_done: false,
            replacements_pending: BTreeSet::new(),
            plan: None,
            committed_at_detect: self.last_committed,
            available_at_detect: self.available_now(),
            shrink_mode,
            shrink: None,
        });
        let incident = index as u64;
        self.adopt_pending(incident, &ranks);
        let group = self.group_label(&ranks);
        let policy_epoch = self.policy_epoch;
        self.push_trace(
            Some(incident),
            now,
            CausalKind::WaveOpened {
                ranks: ranks.clone(),
                group,
                policy_epoch,
            },
        );
        for (rank, kind) in failures {
            if kind == FailureKind::Hardware && !shrink_mode {
                self.begin_hw_replacement(ctx, index, rank);
            }
        }
    }

    /// A failure confirmed while the active wave is still serializing is
    /// merged into it: the wave restarts its serialization clock (the
    /// snapshot must now exclude the new victim) and requests any extra
    /// replacements.
    fn merge_wave(
        &mut self,
        ctx: &mut Context<'_, Ev>,
        now: SimTime,
        failures: Vec<(usize, FailureKind)>,
    ) {
        let Some(index) = self.wave.as_ref().map(|w| w.index) else {
            return;
        };
        for &(r, _) in &failures {
            self.handled[r] = true;
        }
        self.note_confirmed(now, &failures);
        let ranks: Vec<usize> = failures.iter().map(|&(r, _)| r).collect();
        self.announce_failures(now, &ranks);
        self.serialize_seq += 1;
        let token = self.serialize_seq;
        let available = self.available_now();
        if let Some(w) = self.wave.as_mut() {
            w.failures.extend(failures.iter().copied());
            w.serialize_token = token;
            w.serialize_done = false;
            // The merged victims may have taken replicas with them.
            w.available_at_detect = w.available_at_detect.min(available);
        }
        ctx.schedule_after(
            self.sys.serialize_time(),
            Ev::SerializeDone { wave: index, token },
        );
        let incident = index as u64;
        self.adopt_pending(incident, &ranks);
        let group = self.group_label(&ranks);
        self.push_trace(
            Some(incident),
            now,
            CausalKind::WaveMerged {
                ranks: ranks.clone(),
                group,
            },
        );
        let shrink_mode = self.wave.as_ref().is_some_and(|w| w.shrink_mode);
        for (rank, kind) in failures {
            if kind == FailureKind::Hardware && !shrink_mode {
                self.begin_hw_replacement(ctx, index, rank);
            }
        }
    }

    fn maybe_start_retrieval(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        let ready = self.wave.as_ref().is_some_and(|w| {
            w.plan.is_none() && w.serialize_done && w.replacements_pending.is_empty()
        });
        if !ready {
            return;
        }
        let unreachable = self.unreachable_at(now);
        let failures = self.wave.as_ref().expect("wave active").failures.clone();
        // Shrink-and-continue: a shrink-mode wave with hardware losses
        // skips replacements entirely — the survivors adopt the orphaned
        // checkpoint shards and training restarts at reduced width. The
        // shrink plan is lifted into a synthetic `RecoveryPlan` (sources =
        // the adoption moves) so the rest of the wave lifecycle —
        // invariant checks, telemetry, makespan, warm-up — is the exact
        // code the wait path runs.
        let shrink_wave = self.wave.as_ref().is_some_and(|w| w.shrink_mode)
            && failures.iter().any(|&(_, k)| k == FailureKind::Hardware);
        let mut shrink_plan: Option<ShrinkPlan> = None;
        let mut plan = if shrink_wave {
            let hw_down: BTreeSet<usize> = self
                .down
                .iter()
                .enumerate()
                .filter(|(_, k)| matches!(k, Some(FailureKind::Hardware)))
                .map(|(r, _)| r)
                .collect();
            let sp = match RecoveryPlanner.plan_shrink(&self.sys.store, &hw_down) {
                Ok(p) => p,
                Err(e) => {
                    self.violations.push(format!("shrink planning failed: {e}"));
                    self.wave = None;
                    return;
                }
            };
            // Execute the adoptions: each survivor copies the orphaned
            // replica it inherits into its own CPU memory (the
            // persistent-fallback case reloads from storage instead).
            for mv in &sp.moves {
                if mv.tier != StorageTier::Persistent {
                    if let Err(e) = self.sys.store.adopt_shard(mv.owner, mv.to, sp.iteration) {
                        self.violations.push(format!("shrink adoption failed: {e}"));
                    }
                }
            }
            let sources = sp
                .moves
                .iter()
                .map(|mv| RetrievalSource {
                    rank: mv.owner,
                    tier: mv.tier,
                    from: mv.from,
                })
                .collect();
            let rp = RecoveryPlan {
                case: sp.case,
                iteration: sp.iteration,
                sources,
                replaced: Vec::new(),
                degraded: Some(format!(
                    "shrink: {} survivors, throughput x{:.3}",
                    sp.survivors.len(),
                    sp.throughput_factor
                )),
            };
            shrink_plan = Some(sp);
            rp
        } else {
            match RecoveryPlanner.plan_degraded(&self.sys.store, &failures, &unreachable) {
                Ok(p) => p,
                Err(e) => {
                    self.violations
                        .push(format!("recovery planning failed: {e}"));
                    self.wave = None;
                    return;
                }
            }
        };
        // Policy tier override: when the active knobs prefer the
        // persistent anchor (degraded fabric makes remote-CPU retrieval
        // costlier than persistent + rollback), reroute a CPU-tier plan
        // onto the storage path. The rollback cost is deliberate; the
        // safety net is check_policy_preserves_commits, not invariant 2.
        let mut tier_overridden = false;
        if let Some(driver) = self.policy.as_mut() {
            if !shrink_wave
                && driver.knobs.tier == TierPreference::PersistentFirst
                && plan.case == RecoveryCase::HardwareFromCpu
            {
                if let Some(anchor) = self.sys.store.persistent() {
                    let sources = (0..self.sys.cluster.len())
                        .map(|rank| RetrievalSource {
                            rank,
                            tier: StorageTier::Persistent,
                            from: None,
                        })
                        .collect();
                    plan = RecoveryPlan {
                        case: RecoveryCase::PersistentFallback,
                        iteration: anchor.iteration,
                        sources,
                        replaced: plan.replaced.clone(),
                        degraded: Some(
                            "policy: persistent-first tier override".to_string(),
                        ),
                    };
                    driver.tier_overrides += 1;
                    tier_overridden = true;
                    self.sink.counter_add("policy.tier_overrides", 1);
                }
            }
        }
        // Invariant 2: with the *cumulative* hardware-failed set within
        // tolerance and no partition active, the committed checkpoint
        // must survive in CPU memory. A deliberate policy reroute is the
        // one sanctioned exception (checked cross-run instead).
        let hw_down: BTreeSet<usize> = self
            .down
            .iter()
            .enumerate()
            .filter(|(_, k)| matches!(k, Some(FailureKind::Hardware)))
            .map(|(r, _)| r)
            .collect();
        if !tier_overridden
            && self.sys.placement.recoverable(&hw_down)
            && unreachable.is_empty()
        {
            let committed = self
                .wave
                .as_ref()
                .expect("wave active")
                .committed_at_detect;
            if plan.case == RecoveryCase::PersistentFallback {
                // Only a violation when a CPU checkpoint had actually been
                // committed: under a sparse cadence (`ckpt_every_iters` >
                // 1) a fault can legitimately land before the first commit
                // ever completes, and falling back to the seeded
                // persistent anchor is then the *correct* path.
                if committed > 0 {
                    self.violations.push(format!(
                        "committed checkpoint lost below placement tolerance at t={:.0}s",
                        now.as_secs_f64()
                    ));
                }
            } else if plan.iteration < committed {
                self.violations.push(format!(
                    "rolled back past committed iteration {} to {} at t={:.0}s",
                    committed,
                    plan.iteration,
                    now.as_secs_f64()
                ));
            }
        }
        plan.record_telemetry(&self.sink, now);
        let incident = self.wave.as_ref().expect("wave active").index as u64;
        let (local, remote, persistent) = plan.tier_counts();
        let case = format!("{:?}", plan.case);
        let rollback_to = plan.iteration;
        let reads = plan.tier_reads();
        self.push_trace(
            Some(incident),
            now,
            CausalKind::RetrievalStarted {
                case,
                rollback_to,
                local,
                remote,
                persistent,
            },
        );
        for (rank, tier) in reads {
            self.push_trace(Some(incident), now, CausalKind::TierRead { rank, tier });
        }
        let mut makespan = plan.retrieval_makespan(
            self.sys.scenario.ckpt_bytes_per_machine(),
            self.sys.scenario.machines,
            &self.sys.scenario.instance.ckpt_net_cost(),
            &self.sys.scenario.instance.copy_cost(),
            &self.sys.scenario.storage_cost(),
        );
        // NIC degradation slows the training fabric; it hits remote-CPU
        // retrieval only. Local copies and the separate storage path
        // (persistent tier) bypass it — that bypass is exactly what the
        // persistent-first tier preference exploits.
        let base_makespan = makespan;
        if plan.case == RecoveryCase::HardwareFromCpu {
            let factor = self.degrade_factor_at(now);
            if factor > 1.0 {
                makespan = makespan.mul_f64(factor);
            }
        }
        // Competing-scheme retrieval effects (policy runs only; the
        // CpuInterleaved default is the exact legacy path):
        // * GpuTier — a software-only wave restores from the victim's own
        //   GPU memory, capping the makespan at the PCIe copy-back time
        //   (hardware losses take the GPU tier with them: no effect).
        // * ShardedHybrid — hardware waves fan the shard reads in from
        //   several peers. On a healthy fabric the replacement machine's
        //   own ingress NIC is already the bottleneck, so fan-in is
        //   floored at the undegraded makespan; it only claws back
        //   per-link degradation.
        if let Some(driver) = self.policy.as_ref().filter(|_| !shrink_wave) {
            match driver.knobs.scheme {
                SchemeChoice::GpuTier
                    if self.scheme_signals.gpu_feasible
                        && plan.case == RecoveryCase::SoftwareLocal
                        && self.scheme_signals.gpu_retrieval < makespan =>
                {
                    makespan = self.scheme_signals.gpu_retrieval;
                    self.cell_count("policy.scheme.fast_retrievals");
                }
                SchemeChoice::ShardedHybrid
                    if self.scheme_signals.sharded_feasible
                        && plan.case == RecoveryCase::HardwareFromCpu =>
                {
                    let fanned = base_makespan
                        .max(makespan.mul_f64(self.scheme_signals.sharded_factor));
                    if fanned < makespan {
                        makespan = fanned;
                        self.cell_count("policy.scheme.fast_retrievals");
                    }
                }
                _ => {}
            }
        }
        let index = self.wave.as_ref().expect("wave active").index;
        {
            let w = self.wave.as_mut().expect("wave active");
            w.plan = Some(plan);
            w.shrink = shrink_plan;
        }
        ctx.schedule_after(makespan, Ev::RetrievalDone { wave: index });
    }

    fn coordination_tick(&mut self, ctx: &mut Context<'_, Ev>) {
        let now = ctx.now();
        if self.kv_out(now) {
            return; // the KV store is unreachable: no campaigns, no scans
        }
        // Every alive, un-muted *candidate* campaigns; the store
        // arbitrates. Candidacy is capped at the first ROOT_CANDIDATES
        // ranks: at the paper's 16-machine scale every machine is a
        // candidate (behaviour unchanged), while at fleet scale a
        // 10k-rank cluster does not need — and production seed-node sets
        // do not run — ten thousand campaigns per coordination second.
        let candidates = self.roots.len().min(ROOT_CANDIDATES);
        for rank in 0..candidates {
            if self.down[rank].is_some() || now < self.muted_until[rank] {
                continue;
            }
            let _ = self.roots[rank].campaign(&mut self.kv, now);
        }
        // Invariant 1: leader census through the election key.
        let mut leaders: Vec<usize> = Vec::new();
        for rank in 0..candidates {
            if self.down[rank].is_some() {
                continue;
            }
            if self.roots[rank].is_leader(&mut self.kv, now) {
                leaders.push(rank);
            }
        }
        self.max_leaders = self.max_leaders.max(leaders.len());
        if leaders.len() > 1 {
            self.violations.push(format!(
                "{} concurrent leaders at t={:.0}s",
                leaders.len(),
                now.as_secs_f64()
            ));
        }
        let Some(&leader) = leaders.first() else {
            return; // leaderless gap (lease not yet expired): no scan
        };
        let identity = self.roots[leader].identity().to_string();
        if self.last_leader.as_deref() != Some(identity.as_str()) {
            if self.last_leader.is_some() {
                self.leader_changes += 1;
            }
            self.last_leader = Some(identity);
        }
        // Scan and advance confirmation streaks. The report's rank lists
        // are iterated directly (missing applied after alive, so a rank
        // somehow present in both still counts as missing) rather than
        // probing `contains` per rank — that inner probe made the tick
        // O(n^2) and dominated fleet-scale runs at n = 10,000.
        let n = self.sys.cluster.len();
        let report = self.roots[leader].scan(&mut self.kv, now, n);
        for &rank in &report.alive {
            self.streak[rank] = 0;
        }
        for &rank in &report.missing {
            self.streak[rank] = self.streak[rank].saturating_add(1);
        }
        // Record the confirmation instant once per real failure: the
        // flight recorder's Detect phase and the per-plan
        // detection-latency histogram both hang off this event.
        for rank in 0..n {
            if self.streak[rank] >= CONFIRM_TICKS
                && self.down[rank].is_some()
                && !self.confirm_noted[rank]
            {
                self.confirm_noted[rank] = true;
                let injected = self.injected_at[rank].unwrap_or(now);
                let latency = now.saturating_since(injected);
                let idx = self.push_trace(None, now, CausalKind::Confirmed { rank, latency });
                self.pending_trace[rank].push(idx);
                self.sink.observe_us_key(
                    Key::labeled("chaos.detection_latency_us", "plan", self.plan_label),
                    crate::incident::DETECTION_LATENCY_BOUNDS_US,
                    || latency.as_nanos() / 1_000,
                );
            }
        }
        let confirmed: Vec<usize> = (0..n)
            .filter(|&r| self.streak[r] >= CONFIRM_TICKS && !self.handled[r])
            .collect();
        if confirmed.is_empty() {
            return;
        }
        let mut real: Vec<(usize, FailureKind)> = Vec::new();
        for rank in confirmed {
            match self.down[rank] {
                Some(kind) => real.push((rank, kind)),
                None => {
                    // Alive but confirmed missing: the streak failed to
                    // absorb a blip. Counted, asserted zero by the suite.
                    if !self.spurious[rank] {
                        self.spurious[rank] = true;
                        self.spurious_count += 1;
                        self.cell_count("chaos.spurious_detections");
                    }
                }
            }
        }
        if real.is_empty() {
            return;
        }
        enum Action {
            Start,
            Merge,
            Defer,
        }
        let action = match &self.wave {
            None => Action::Start,
            Some(w) if w.plan.is_none() => Action::Merge,
            Some(_) => Action::Defer,
        };
        match action {
            Action::Start => self.start_wave(ctx, now, real),
            Action::Merge => self.merge_wave(ctx, now, real),
            // Retrieval already in flight: the ranks stay missing, their
            // streaks stay saturated, and the next tick after this wave
            // completes starts the follow-up wave.
            Action::Defer => {}
        }
    }
}

impl Model for ChaosModel {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::IterationDone(i) => {
                if self.training_blocked {
                    return; // chain dies; restarted when training resumes
                }
                let now = ctx.now();
                self.current_iteration = i;
                // Checkmate-style gradient replication makes *every*
                // iteration recoverable regardless of the checkpoint
                // cadence — the replicated gradients reconstruct the step
                // — but pays its fabric tax on every iteration (priced
                // below). Infeasible deployments fall back to the plain
                // cadence, so a frozen `checkmate_grad` comparator on an
                // undersized cluster degrades to `paper_3h`, not to magic.
                let grad_active = self.policy.as_ref().is_some_and(|p| {
                    p.knobs.scheme == SchemeChoice::GradientReplicate
                        && self.scheme_signals.gradient_feasible
                });
                let cadence = if grad_active {
                    1
                } else {
                    self.policy
                        .as_ref()
                        .map_or(1, |p| p.knobs.ckpt_every_iters.max(1))
                };
                if i % cadence == 0 {
                    self.sys.store.record_complete(i);
                    self.last_committed = i;
                    self.sink.event(now, || TelemetryEvent::IterationComplete {
                        iteration: i,
                    });
                }
                self.policy_boundary(ctx, now);
                let mut next_in = self.sys.iteration_time();
                if self.slowdown > 1.0 {
                    // Running shrunk: every iteration is stretched by the
                    // lost width, and that stretch is exactly the degraded
                    // throughput the wasted-time matrix charges to the
                    // shrink mode.
                    let shrink_tax = self.sys.iteration_time().mul_f64(self.slowdown - 1.0);
                    self.ledger.record_overhead(shrink_tax);
                    let epoch = self.policy_epoch;
                    self.push_trace(
                        None,
                        now,
                        CausalKind::PersistCharged {
                            amount: shrink_tax,
                            epoch,
                        },
                    );
                    next_in = next_in + shrink_tax;
                }
                if grad_active {
                    // The all-reduce stretches by the replication traffic:
                    // visible overhead in the ledger *and* a longer step.
                    let tax = self.scheme_signals.gradient_overhead;
                    self.ledger.record_overhead(tax);
                    next_in = next_in + tax;
                }
                ctx.schedule_after(next_in, Ev::IterationDone(i + 1));
            }
            Ev::PersistDone { iteration, token } => {
                let Some(driver) = self.policy.as_mut() else {
                    return;
                };
                if driver.persist_token != token {
                    return; // stale upload superseded (defensive; tokens are serial)
                }
                driver.persist_inflight = false;
                driver.persists_done += 1;
                // Monotonic guard: a rollback may have re-persisted an
                // older iteration in the meantime — never regress the
                // durable anchor.
                let monotonic = self
                    .sys
                    .store
                    .persistent()
                    .map_or(true, |m| iteration >= m.iteration);
                if monotonic {
                    self.sys.store.persist(iteration);
                }
                self.cell_count("policy.persists");
                self.sink.event(ctx.now(), || TelemetryEvent::Note {
                    message: format!("persistent checkpoint durable at iteration {iteration}"),
                });
            }
            Ev::Heartbeat(rank) => {
                if self.down[rank].is_some() {
                    return; // the process is gone; restarted on recovery
                }
                let now = ctx.now();
                if let Some(release) = self.hb_delay_release(now) {
                    // Sent now, delivered when the delay window closes.
                    ctx.schedule_at(release, Ev::DeliverHeartbeat(rank));
                } else if !self.kv_out(now) {
                    self.workers[rank]
                        .heartbeat(&mut self.kv, now)
                        .expect("heartbeat");
                }
                ctx.schedule_after(
                    self.sys.scenario.config.heartbeat_period,
                    Ev::Heartbeat(rank),
                );
            }
            Ev::DeliverHeartbeat(rank) => {
                let now = ctx.now();
                if self.down[rank].is_some() || self.kv_out(now) {
                    return;
                }
                self.workers[rank]
                    .heartbeat(&mut self.kv, now)
                    .expect("heartbeat");
            }
            Ev::CoordinationTick => {
                self.coordination_tick(ctx);
                ctx.schedule_after(SimDuration::from_secs(1), Ev::CoordinationTick);
            }
            Ev::SpotKill { rank } => {
                // The notice window has elapsed: the spot machine is
                // reclaimed, taking its CPU checkpoint replicas with it.
                self.kill(ctx, rank, FailureKind::Hardware);
            }
            Ev::Inject(i) => {
                let fault = self.faults[i].fault.clone();
                self.injected += 1;
                let label = format!("{fault:?}");
                self.sink
                    .event(ctx.now(), || TelemetryEvent::ChaosFault { fault: label });
                self.cell_count("chaos.faults");
                match fault {
                    FaultKind::Kill { rank, kind } => self.kill(ctx, rank, kind),
                    FaultKind::KillGroup { group, kind } => {
                        let members: Vec<usize> = self
                            .sys
                            .placement
                            .groups()
                            .get(group)
                            .map(|g| g.members.clone())
                            .unwrap_or_default();
                        for rank in members {
                            // Mark before killing: the whole group went
                            // down together, so when the detection streak
                            // confirms these ranks the policy engine must
                            // count them as *correlated* losses.
                            self.correlated_pending.insert(rank);
                            self.kill(ctx, rank, kind);
                        }
                    }
                    FaultKind::OperatorOutage { duration } => {
                        self.operator.set_outage_until(ctx.now() + duration);
                    }
                    FaultKind::SpotPreempt { rank, notice } => {
                        if rank < self.sys.cluster.len() && self.down[rank].is_none() {
                            // Advance warning: flush an incremental
                            // checkpoint of the current step before the
                            // machine is reclaimed. MoE flushes only the
                            // backbone + dirty expert fraction; dense
                            // flushes a full commit. The flush traffic is
                            // training-visible overhead, capped at the
                            // notice window.
                            let frac = match self.sys.scenario.workload.moe() {
                                Some(spec) => gemini_training::MoeSetup::new(
                                    self.sys.scenario.model,
                                    self.sys.scenario.instance,
                                    self.sys.scenario.machines,
                                    spec,
                                )
                                .steady_incremental_fraction()
                                .clamp(0.0, 1.0),
                                None => 1.0,
                            };
                            let iteration = self.current_iteration;
                            self.sys.store.record_complete(iteration);
                            self.last_committed = self.last_committed.max(iteration);
                            let flush = self
                                .sys
                                .bulk_ckpt_time()
                                .mul_f64(frac)
                                .min(notice);
                            self.ledger.record_overhead(flush);
                            let epoch = self.policy_epoch;
                            self.push_trace(
                                None,
                                ctx.now(),
                                CausalKind::PersistCharged {
                                    amount: flush,
                                    epoch,
                                },
                            );
                            self.cell_count("chaos.spot_flushes");
                            self.sink.event(ctx.now(), move || TelemetryEvent::Note {
                                message: format!(
                                    "spot preemption notice for rank {rank}: flushed \
                                     incremental checkpoint at iteration {iteration} \
                                     ({:.0}% of full)",
                                    frac * 100.0
                                ),
                            });
                            ctx.schedule_after(notice, Ev::SpotKill { rank });
                        }
                    }
                    FaultKind::RootChurn { kills, period } => {
                        if kills > 0 {
                            ctx.schedule_after(
                                SimDuration::ZERO,
                                Ev::Churn {
                                    remaining: kills,
                                    period,
                                },
                            );
                        }
                    }
                    // Window faults act through the precomputed windows;
                    // the Inject event only marks them in the event log.
                    FaultKind::KvOutage { .. }
                    | FaultKind::HeartbeatDelay { .. }
                    | FaultKind::NicDegrade { .. }
                    | FaultKind::NicPartition { .. } => {}
                }
            }
            Ev::Churn { remaining, period } => {
                let now = ctx.now();
                if !self.kv_out(now) {
                    let mut leader = None;
                    for rank in 0..self.roots.len().min(ROOT_CANDIDATES) {
                        if self.down[rank].is_none()
                            && self.roots[rank].is_leader(&mut self.kv, now)
                        {
                            leader = Some(rank);
                            break;
                        }
                    }
                    if let Some(rank) = leader {
                        let _ = self.roots[rank].resign(&mut self.kv, now);
                        self.muted_until[rank] = now + CHURN_MUTE;
                        let label =
                            format!("root churn: {} resigned", self.roots[rank].identity());
                        self.sink
                            .event(now, || TelemetryEvent::ChaosFault { fault: label });
                    }
                }
                if remaining > 1 {
                    ctx.schedule_after(
                        period,
                        Ev::Churn {
                            remaining: remaining - 1,
                            period,
                        },
                    );
                }
            }
            Ev::SerializeDone { wave, token } => {
                let current = self
                    .wave
                    .as_ref()
                    .is_some_and(|w| w.index == wave && w.serialize_token == token);
                if !current {
                    return; // superseded by a merge, or a stale wave
                }
                self.wave.as_mut().expect("wave active").serialize_done = true;
                self.push_trace(Some(wave as u64), ctx.now(), CausalKind::SerializeDone);
                self.sink
                    .event(ctx.now(), || TelemetryEvent::SerializationFinished);
                self.maybe_start_retrieval(ctx);
            }
            Ev::ReplacementAttempt {
                wave,
                rank,
                attempt,
            } => {
                let active = self
                    .wave
                    .as_ref()
                    .is_some_and(|w| w.index == wave && w.replacements_pending.contains(&rank));
                if !active {
                    return;
                }
                let now = ctx.now();
                match self.operator.try_request_replacement(now, ctx.rng()) {
                    Some(provision) => {
                        self.sink
                            .event(now, || TelemetryEvent::ReplacementRequested {
                                rank,
                                standby: provision.from_standby,
                                ready_at: provision.ready_at,
                            });
                        ctx.schedule_at(
                            provision.ready_at,
                            Ev::ReplacementReady { wave, rank },
                        );
                    }
                    None => {
                        self.retry_attempts += 1;
                        let class = TimeoutClass::classify(attempt, self.retry.max_attempts);
                        let label = match class {
                            TimeoutClass::Transient => "transient",
                            TimeoutClass::Degraded => "degraded",
                            TimeoutClass::Fatal => "fatal",
                        };
                        self.sink.counter_add_key(
                            Key::labeled2(
                                "chaos.replacement_retries",
                                "class",
                                label,
                                "cell",
                                self.cell,
                            ),
                            1,
                        );
                        match self.retry.backoff(attempt) {
                            Some(backoff) => {
                                self.sink.event(now, || TelemetryEvent::RetryAttempt {
                                    operation: "cluster.replacement".to_string(),
                                    attempt,
                                    backoff,
                                });
                                ctx.schedule_after(
                                    backoff,
                                    Ev::ReplacementAttempt {
                                        wave,
                                        rank,
                                        attempt: attempt + 1,
                                    },
                                );
                            }
                            None => {
                                // Fatal: the wave can never finish; the
                                // termination invariant reports it.
                                self.violations.push(format!(
                                    "replacement retry budget exhausted for rank {rank} \
                                     after {} attempts",
                                    attempt + 1
                                ));
                            }
                        }
                    }
                }
            }
            Ev::ReplacementReady { wave, rank } => {
                let active = self
                    .wave
                    .as_ref()
                    .is_some_and(|w| w.index == wave && w.replacements_pending.contains(&rank));
                if !active {
                    return;
                }
                self.sys
                    .cluster
                    .complete_replacement(rank, ctx.now())
                    .expect("rank was put in Replacing state");
                self.wave
                    .as_mut()
                    .expect("wave active")
                    .replacements_pending
                    .remove(&rank);
                self.push_trace(
                    Some(wave as u64),
                    ctx.now(),
                    CausalKind::ReplacementReady { rank },
                );
                self.sink
                    .event(ctx.now(), || TelemetryEvent::MachineReplaced { rank });
                self.maybe_start_retrieval(ctx);
            }
            Ev::RetrievalDone { wave } => {
                let active = self
                    .wave
                    .as_ref()
                    .is_some_and(|w| w.index == wave && w.plan.is_some());
                if !active {
                    return;
                }
                self.push_trace(Some(wave as u64), ctx.now(), CausalKind::RetrievalDone);
                self.sink
                    .event(ctx.now(), || TelemetryEvent::RetrievalFinished);
                ctx.schedule_after(
                    self.sys.scenario.config.restart_warmup,
                    Ev::WarmupDone { wave },
                );
            }
            Ev::WarmupDone { wave } => {
                if !self.wave.as_ref().is_some_and(|w| w.index == wave) {
                    return;
                }
                let now = ctx.now();
                let w = self.wave.take().expect("wave active");
                let plan = w.plan.expect("retrieval implies a plan");
                for &(rank, kind) in &w.failures {
                    if w.shrink.is_some() && kind == FailureKind::Hardware {
                        // Shrink-and-continue: the machine leaves the job
                        // instead of being replaced. It stays `handled`
                        // (its saturated streak can never re-confirm) and
                        // never re-registers or heartbeats again.
                        if self.down[rank].take().is_some() {
                            self.down_count -= 1;
                        }
                        if !self.detached[rank] {
                            self.detached[rank] = true;
                            self.detached_count += 1;
                        }
                        self.injected_at[rank] = None;
                        self.pending_trace[rank].clear();
                        continue;
                    }
                    if kind == FailureKind::Software {
                        self.sys.cluster.restart(rank).expect("rank exists");
                    }
                    if self.down[rank].take().is_some() {
                        self.down_count -= 1;
                    }
                    self.handled[rank] = false;
                    self.streak[rank] = 0;
                    self.confirm_noted[rank] = false;
                    self.injected_at[rank] = None;
                    self.pending_trace[rank].clear();
                    if !self.kv_out(now) {
                        self.workers[rank]
                            .register(&mut self.kv, now)
                            .expect("re-register");
                    }
                    ctx.schedule_after(
                        self.sys.scenario.config.heartbeat_period,
                        Ev::Heartbeat(rank),
                    );
                }
                if let Some(sp) = &w.shrink {
                    let n = self.sys.cluster.len();
                    let width = n.saturating_sub(self.detached_count).max(1);
                    self.slowdown = n as f64 / width as f64;
                    let factor = sp.throughput_factor;
                    self.sink.event(now, move || TelemetryEvent::Note {
                        message: format!(
                            "shrunk to {width} survivors (throughput x{factor:.3})"
                        ),
                    });
                    self.cell_count("chaos.shrinks");
                }
                // Wasted-time ledger (Eq. 1's terms, measured not modelled):
                // every iteration past the resume point must be re-trained,
                // and the whole detect→resume window was downtime.
                let rolled_back = self.current_iteration.saturating_sub(plan.iteration);
                self.ledger.record_failure(
                    rolled_back,
                    self.sys.iteration_time(),
                    now.saturating_since(w.detected_at),
                );
                let incident = w.index as u64;
                // Same expression as the ledger's rework contribution, so
                // the attribution invariant holds to the nanosecond.
                let rework = self.sys.iteration_time() * rolled_back;
                self.push_trace(
                    Some(incident),
                    now,
                    CausalKind::RolledBack {
                        from: self.current_iteration,
                        to: plan.iteration,
                        rework,
                    },
                );
                self.current_iteration = plan.iteration;
                self.push_trace(
                    Some(incident),
                    now,
                    CausalKind::Resumed {
                        iteration: plan.iteration,
                    },
                );
                self.sink
                    .event(now, || TelemetryEvent::TrainingResumed {
                        iteration: plan.iteration,
                    });
                self.cell_count("chaos.waves");
                if self.sink.is_enabled() {
                    let name = format!("wave-{}", w.index);
                    self.sink.span("chaos", || name.clone(), w.detected_at, now);
                }
                self.waves_done.push(WaveReport {
                    index: w.index,
                    failures: w
                        .failures
                        .iter()
                        .map(|&(r, k)| format!("{r}:{}", kind_label(k)))
                        .collect(),
                    detected_at: w.detected_at,
                    case: plan.case,
                    resumed_from_iteration: plan.iteration,
                    resumed_at: now,
                    downtime: now.saturating_since(w.detected_at),
                    degraded: plan.degraded.clone(),
                    available_at_detect: w.available_at_detect,
                });
                if self.down_count == 0 {
                    self.training_blocked = false;
                    let mut next_in = self.sys.iteration_time();
                    if self.slowdown > 1.0 {
                        next_in = next_in.mul_f64(self.slowdown);
                    }
                    ctx.schedule_after(next_in, Ev::IterationDone(plan.iteration + 1));
                }
                // Otherwise more ranks are still down (killed during the
                // retrieval); their saturated streaks start the next wave
                // on the next coordination tick.
            }
        }
    }
}

/// Runs one chaos plan under `seed`, recording through a fresh enabled
/// sink.
pub fn run_chaos(plan: &ChaosPlan, seed: u64) -> Result<ChaosReport, GeminiError> {
    execute_chaos(plan, seed, TelemetrySink::enabled(), None)
}

/// Deprecated shim over [`crate::Scenario::chaos`] with an explicit sink.
/// Telemetry never feeds back into the model, so a disabled sink yields
/// the exact same report, faster.
#[deprecated(note = "use gemini_harness::Scenario::chaos(plan).seed(s).sink(sink).run()")]
pub fn run_chaos_with(
    plan: &ChaosPlan,
    seed: u64,
    sink: TelemetrySink,
) -> Result<ChaosReport, GeminiError> {
    execute_chaos(plan, seed, sink, None)
}

/// The single chaos executor behind every public entry point.
pub(crate) fn execute_chaos(
    plan: &ChaosPlan,
    seed: u64,
    sink: TelemetrySink,
    policy: Option<&PolicySpec>,
) -> Result<ChaosReport, GeminiError> {
    let mut sys = plan.scenario.build_system(seed)?;
    // Jobs start from a persisted initial checkpoint (iteration 0) — what
    // the persistent-fallback path rolls back to.
    sys.store.persist(0);
    sys.schedule.record_telemetry(&sink, SimTime::ZERO);
    let n = sys.cluster.len();
    let groups = sys.placement.groups().len();
    for f in &plan.faults {
        match &f.fault {
            FaultKind::Kill { rank, .. } if *rank >= n => {
                return Err(GeminiError::UnknownRank(*rank));
            }
            FaultKind::KillGroup { group, .. } if *group >= groups => {
                return Err(GeminiError::InvalidPartitionInput(
                    "chaos plan references an unknown placement group",
                ));
            }
            FaultKind::SpotPreempt { rank, .. } if *rank >= n => {
                return Err(GeminiError::UnknownRank(*rank));
            }
            FaultKind::NicPartition { ranks, .. } => {
                if let Some(&r) = ranks.iter().find(|&&r| r >= n) {
                    return Err(GeminiError::UnknownRank(r));
                }
            }
            _ => {}
        }
    }

    // Precompute the window faults.
    let mut kv_outages = Vec::new();
    let mut hb_delays = Vec::new();
    let mut degrades = Vec::new();
    let mut partitions = Vec::new();
    let mut op_outages = Vec::new();
    for f in &plan.faults {
        match &f.fault {
            FaultKind::KvOutage { duration } => kv_outages.push((f.at, f.at + *duration)),
            FaultKind::OperatorOutage { duration } => {
                // Applied through the Inject event as before; the window
                // copy feeds the recovery-mode replacement-wait signal.
                op_outages.push((f.at, f.at + *duration));
            }
            FaultKind::HeartbeatDelay { duration } => {
                hb_delays.push((f.at, f.at + *duration));
            }
            FaultKind::NicDegrade { factor, duration } => {
                degrades.push((f.at, f.at + *duration, *factor));
            }
            FaultKind::NicPartition { ranks, duration } => {
                partitions.push((f.at, f.at + *duration, ranks.clone()));
            }
            _ => {}
        }
    }

    let gcfg = sys.scenario.config;
    let iter_time = sys.iteration_time();
    // Price the competing fault-tolerance schemes on this deployment once:
    // feasibility and static costs feed the policy engine's scheme choice
    // and the executor's retrieval/commit effects.
    let scheme_sig = scheme_signals(&SchemeInputs::from_deployment(
        sys.scenario.instance,
        sys.scenario.model,
        n,
        gcfg.replicas,
        iter_time,
        sys.schedule.outcome.overhead,
        sys.retrieval_time(StorageTier::LocalCpu),
        sys.retrieval_time(StorageTier::RemoteCpu),
        sys.retrieval_time(StorageTier::Persistent),
    ));
    // Step-up feasibility and cost, priced once: the machine must hold
    // its own shard plus `m + 1` replica slots, and the extra replica
    // adds its proportional share of the bulk checkpoint traffic PLUS
    // the standing rent of the hot spare itself — one extra machine's
    // share of fleet time, paid every iteration whether or not anything
    // fails, with a 25% carry premium for keeping its CPU image warm.
    // Without the rent term a hot spare looks free and the mode
    // comparator would step up even on a quiet fleet.
    let step_up_feasible =
        sys.scenario.ckpt_bytes_per_machine() * (gcfg.replicas as u64 + 2)
            <= sys.scenario.instance.cpu_mem;
    let step_up_overhead = sys
        .bulk_ckpt_time()
        .mul_f64(1.0 / gcfg.replicas.max(1) as f64)
        + sys.iteration_time().mul_f64(1.25 / n.max(1) as f64);
    // A fixed step-up policy pre-allocates the hot spare it recovers
    // through (the operator activates it instead of reserving afresh).
    let mut operator_cfg = plan.operator;
    if let Some(PolicySpec::Fixed(f)) = policy {
        if f.knobs.mode == RecoveryMode::StepUp {
            operator_cfg.standbys += 1;
        }
    }
    let mut kv = KvStore::new().with_telemetry(sink.clone());
    let mut workers: Vec<WorkerAgent> = (0..n)
        .map(|r| WorkerAgent::new(r, r as u64, gcfg))
        .collect();
    for w in workers.iter_mut() {
        w.register(&mut kv, SimTime::ZERO).expect("register");
    }
    let roots: Vec<RootAgent> = (0..n)
        .map(|r| RootAgent::new(&format!("machine-{r}"), &gcfg))
        .collect();

    // The cell label scopes per-run counters to this (plan, seed); interning
    // only matters when metrics are actually recorded, so skip the global
    // intern table entirely on disabled sinks (campaign hot path).
    let (cell, plan_label) = if sink.is_enabled() {
        (
            intern_label(&format!("{}:{}", plan.name, seed)),
            intern_label(&plan.name),
        )
    } else {
        ("", "")
    };

    let mut model = ChaosModel {
        sys,
        kv,
        sink: sink.clone(),
        workers,
        roots,
        operator: CloudOperator::new(operator_cfg).with_telemetry(sink.clone()),
        retry: plan.retry,
        faults: plan.faults.clone(),
        kv_outages,
        hb_delays,
        degrades,
        partitions,
        op_outages,
        policy: policy.map(PolicyDriver::new),
        scheme_signals: scheme_sig,
        step_up_feasible,
        step_up_overhead,
        ledger: WastedLedger::default(),
        correlated_pending: BTreeSet::new(),
        down: vec![None; n],
        down_count: 0,
        detached: vec![false; n],
        detached_count: 0,
        slowdown: 1.0,
        muted_until: vec![SimTime::ZERO; n],
        streak: vec![0; n],
        handled: vec![false; n],
        wave: None,
        waves_done: Vec::new(),
        next_wave_index: 0,
        serialize_seq: 0,
        current_iteration: 0,
        last_committed: 0,
        training_blocked: false,
        injected: 0,
        max_leaders: 0,
        leader_changes: 0,
        last_leader: None,
        spurious: vec![false; n],
        spurious_count: 0,
        retry_attempts: 0,
        violations: Vec::new(),
        trace: Vec::new(),
        pending_trace: vec![Vec::new(); n],
        injected_at: vec![None; n],
        confirm_noted: vec![false; n],
        policy_epoch: 0,
        cell,
        plan_label,
    };

    let mut engine =
        Engine::new(seed).with_probe(EngineTelemetryProbe::boxed(sink.clone(), 256));
    engine.prime_at(SimTime::ZERO, Ev::CoordinationTick);
    for r in 0..n {
        engine.prime_after(gcfg.heartbeat_period, Ev::Heartbeat(r));
    }
    engine.prime_after(iter_time, Ev::IterationDone(1));
    for (i, f) in plan.faults.iter().enumerate() {
        engine.prime_at(f.at, Ev::Inject(i));
    }
    engine.run(&mut model, Some(plan.horizon), 50_000_000);

    // Invariant 3: recovery terminates before the horizon.
    let mut violations = model.violations;
    if let Some(w) = &model.wave {
        violations.push(format!(
            "recovery wave {} still in flight at the horizon",
            w.index
        ));
    }
    if model.down_count > 0 {
        violations.push(format!(
            "{} rank(s) still down at the horizon",
            model.down_count
        ));
    }
    if sink.is_enabled() {
        sink.counter_add_key(Key::labeled("chaos.runs", "cell", cell), 1);
        sink.counter_add_key(
            Key::labeled("chaos.violations", "cell", cell),
            violations.len() as u64,
        );
    }

    let (
        policy_name,
        policy_decisions,
        persists_completed,
        tier_overrides,
        scheme,
        scheme_switches,
        mode,
        mode_switches,
    ) = match &model.policy {
        Some(d) => (
            d.name.clone(),
            d.engine.as_ref().map_or(0, |e| e.stats().applied),
            d.persists_done,
            d.tier_overrides,
            d.knobs.scheme.label().to_string(),
            d.scheme_switches,
            d.knobs.mode.label().to_string(),
            d.mode_switches,
        ),
        None => (
            "off".to_string(),
            0,
            0,
            0,
            "off".to_string(),
            0,
            "off".to_string(),
            0,
        ),
    };

    let report = ChaosReport {
        plan_name: plan.name.clone(),
        seed,
        horizon: plan.horizon,
        faults_injected: model.injected,
        waves: model.waves_done,
        max_concurrent_leaders: model.max_leaders,
        leader_changes: model.leader_changes,
        spurious_detections: model.spurious_count,
        retry_attempts: model.retry_attempts,
        replacements_denied: model.operator.requests_denied(),
        final_iteration: model.current_iteration,
        policy: policy_name,
        policy_decisions,
        persists_completed,
        tier_overrides,
        scheme,
        scheme_switches,
        mode,
        mode_switches,
        wasted: model.ledger,
        trace: model.trace,
        violations,
    };
    // Post-run sink artifacts (flight-recorder mirror, incident metrics,
    // phase spans, chrome-trace flow lane). Emitted *after* the run so the
    // enabled-sink event stream never perturbs model execution order.
    crate::incident::record_sink_artifacts(&report, &sink);
    Ok(report)
}

/// The cross-run policy-safety check: for every wave (matched by index),
/// the `candidate` run must have had at least as fresh a committed
/// checkpoint *recoverable at detection* as the `baseline` run of the
/// same plan and seed. An adaptive policy may deliberately roll back
/// further (tier override trades rollback for a faster path), but it must
/// never have *lost* a committed checkpoint a fixed policy would have
/// kept. Returns human-readable violations (empty ⇔ safe).
pub fn check_policy_preserves_commits(
    candidate: &ChaosReport,
    baseline: &ChaosReport,
) -> Vec<String> {
    let mut out = Vec::new();
    for (c, b) in candidate.waves.iter().zip(&baseline.waves) {
        if c.available_at_detect < b.available_at_detect {
            out.push(format!(
                "wave {}: policy '{}' had only iteration {} recoverable at \
                 detection where '{}' kept {}",
                c.index, candidate.policy, c.available_at_detect, baseline.policy,
                b.available_at_detect
            ));
        }
    }
    out
}

/// Runs every `plan` × every `seed` (plan-major order) across `jobs`
/// workers, with telemetry disabled for speed. Deterministic: the result
/// vector depends only on the inputs, never on scheduling.
pub fn run_chaos_campaign(
    plans: &[ChaosPlan],
    seeds: &[u64],
    jobs: usize,
) -> Result<Vec<ChaosReport>, GeminiError> {
    let total = plans.len() * seeds.len();
    crate::par::try_par_map(jobs, total, |i| {
        let plan = &plans[i / seeds.len()];
        let seed = seeds[i % seeds.len()];
        execute_chaos(plan, seed, TelemetrySink::disabled(), None)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local shorthand for the executor with an explicit sink.
    fn chaos_with(
        plan: &ChaosPlan,
        seed: u64,
        sink: TelemetrySink,
    ) -> Result<ChaosReport, GeminiError> {
        execute_chaos(plan, seed, sink, None)
    }

    /// Test-local shorthand for a policy-driven run.
    fn chaos_policy(
        plan: &ChaosPlan,
        seed: u64,
        sink: TelemetrySink,
        policy: &PolicySpec,
    ) -> Result<ChaosReport, GeminiError> {
        execute_chaos(plan, seed, sink, Some(policy))
    }

    #[test]
    fn kill_mid_checkpoint_recovers_green() {
        let report = run_chaos(&ChaosPlan::kill_mid_checkpoint(), 1).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.max_concurrent_leaders, 1);
        assert_eq!(report.spurious_detections, 0);
        // Training resumed and kept iterating after the wave.
        assert!(report.final_iteration > report.waves[0].resumed_from_iteration);
    }

    #[test]
    fn confirmation_streak_delays_detection_but_bounds_it() {
        let report = run_chaos(&ChaosPlan::kill_mid_checkpoint(), 1).unwrap();
        let detected = report.waves[0].detected_at.as_secs_f64();
        // Kill at 500 s; TTL 15 s + CONFIRM_TICKS scans + scan granularity.
        assert!(
            (515.0..=525.0).contains(&detected),
            "detected at {detected:.1}s"
        );
    }

    #[test]
    fn group_loss_degrades_to_persistent_legitimately() {
        let report = run_chaos(&ChaosPlan::correlated_group_loss(), 2).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::PersistentFallback);
        assert_eq!(report.waves[0].resumed_from_iteration, 0);
    }

    #[test]
    fn kv_outage_causes_no_spurious_recovery() {
        // Outage only — every lease expires, nothing must be "recovered".
        let mut plan = ChaosPlan::kv_outage_blackout();
        plan.faults.truncate(1); // keep only the KvOutage
        let report = run_chaos(&plan, 3).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert!(report.waves.is_empty());
        assert_eq!(report.spurious_detections, 0);
    }

    #[test]
    fn kv_outage_then_real_failure_still_detected() {
        let report = run_chaos(&ChaosPlan::kv_outage_blackout(), 3).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::SoftwareLocal);
        assert_eq!(report.spurious_detections, 0);
    }

    #[test]
    fn root_churn_never_elects_two_leaders() {
        let report = run_chaos(&ChaosPlan::root_churn(), 4).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.max_concurrent_leaders, 1);
        // Three forced resignations → leadership moved at least three times.
        assert!(
            report.leader_changes >= 3,
            "leader_changes = {}",
            report.leader_changes
        );
        assert_eq!(report.waves.len(), 1);
    }

    #[test]
    fn replacement_exhaustion_retries_with_backoff_until_success() {
        let report = run_chaos(&ChaosPlan::replacement_exhaustion(), 5).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert!(report.retry_attempts > 0, "expected denied-then-retried");
        assert_eq!(report.retry_attempts, report.replacements_denied);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::HardwareFromCpu);
    }

    #[test]
    fn nic_partition_degrades_to_persistent_gracefully() {
        let report = run_chaos(&ChaosPlan::degraded_nic_partition(), 6).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::PersistentFallback);
        assert!(
            report.waves[0].degraded.is_some(),
            "degradation reason must be recorded"
        );
    }

    #[test]
    fn flaky_heartbeats_absorbed_by_the_streak() {
        let report = run_chaos(&ChaosPlan::flaky_heartbeats(), 7).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.spurious_detections, 0);
        assert_eq!(report.waves.len(), 1, "only the real kill recovers");
    }

    #[test]
    fn failure_during_serialization_merges_into_the_wave() {
        // First kill at 500 s → confirmed ≈ 522 s, serialization runs to
        // ≈ 684 s. A second victim confirmed ≈ 552 s lands mid-serialize
        // and must merge into the active wave (the snapshot restarts).
        let mut plan = ChaosPlan::kill_mid_checkpoint();
        plan.faults.push(TimedFault {
            at: SimTime::from_secs(530),
            fault: FaultKind::Kill {
                rank: 10,
                kind: FailureKind::Software,
            },
        });
        let report = run_chaos(&plan, 8).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1, "merged into one wave");
        assert_eq!(report.waves[0].failures.len(), 2);
        assert_eq!(report.waves[0].case, RecoveryCase::HardwareFromCpu);
    }

    #[test]
    fn failure_during_retrieval_starts_a_second_wave() {
        // The second kill strikes while wave 0 is retrieving/warming up:
        // it must not corrupt the in-flight wave, and must be recovered
        // by a follow-up wave once the first completes.
        let mut plan = ChaosPlan::kill_mid_checkpoint();
        plan.faults.push(TimedFault {
            at: SimTime::from_secs(1000),
            fault: FaultKind::Kill {
                rank: 2,
                kind: FailureKind::Software,
            },
        });
        plan.horizon = SimTime::from_secs(3600);
        let report = run_chaos(&plan, 8).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 2, "second failure gets its own wave");
        assert_eq!(report.waves[1].case, RecoveryCase::SoftwareLocal);
    }

    #[test]
    fn same_seed_reruns_are_byte_identical() {
        for plan in [ChaosPlan::kill_mid_checkpoint(), ChaosPlan::root_churn()] {
            let a = chaos_with(&plan, 9, TelemetrySink::disabled()).unwrap();
            let b = chaos_with(&plan, 9, TelemetrySink::enabled()).unwrap();
            assert_eq!(a.render(), b.render(), "plan {}", plan.name);
        }
    }

    #[test]
    fn chaos_emits_typed_fault_and_retry_events() {
        use TelemetryEvent as E;
        let sink = TelemetrySink::enabled();
        chaos_with(&ChaosPlan::replacement_exhaustion(), 5, sink.clone()).unwrap();
        assert!(!sink.find(|e| matches!(e, E::ChaosFault { .. })).is_empty());
        assert!(!sink.find(|e| matches!(e, E::RetryAttempt { .. })).is_empty());
        let snap = sink.metrics_snapshot();
        // Run-scoped counters carry the (plan, seed) cell label.
        let cell = intern_label("replacement_exhaustion:5");
        assert!(snap.counter(Key::labeled("chaos.faults", "cell", cell)) >= 2);
        assert_eq!(snap.counter(Key::labeled("chaos.runs", "cell", cell)), 1);
        assert!(
            snap.counter(gemini_telemetry::Key::plain("cluster.replacement_denied")) > 0
        );
    }

    #[test]
    fn unknown_rank_in_plan_rejected() {
        let mut plan = ChaosPlan::kill_mid_checkpoint();
        plan.faults[0].fault = FaultKind::Kill {
            rank: 99,
            kind: FailureKind::Hardware,
        };
        assert!(run_chaos(&plan, 1).is_err());
    }

    #[test]
    fn campaign_runs_the_catalog_deterministically() {
        let plans = vec![ChaosPlan::kill_mid_checkpoint(), ChaosPlan::root_churn()];
        let seeds = [1, 2];
        let a = run_chaos_campaign(&plans, &seeds, 1).unwrap();
        let b = run_chaos_campaign(&plans, &seeds, 2).unwrap();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.render(), y.render());
        }
    }

    // ------------------------------------------------------- policies ----

    fn paper_fixed() -> PolicySpec {
        PolicySpec::Fixed(gemini_core::FixedPolicy {
            name: "paper_3h",
            knobs: PolicyKnobs::paper_default(),
        })
    }

    #[test]
    fn policy_off_runs_are_unchanged_by_the_policy_layer() {
        // The fixed paper policy has the same knobs the legacy path hard-
        // codes; apart from persist scheduling (which never fires inside
        // this horizon) the wave structure must match policy-off exactly.
        let plan = ChaosPlan::kill_mid_checkpoint();
        let off = chaos_with(&plan, 11, TelemetrySink::disabled()).unwrap();
        let fixed =
            chaos_policy(&plan, 11, TelemetrySink::disabled(), &paper_fixed()).unwrap();
        assert_eq!(off.policy, "off");
        assert_eq!(fixed.policy, "paper_3h");
        assert_eq!(off.waves.len(), fixed.waves.len());
        for (a, b) in off.waves.iter().zip(&fixed.waves) {
            assert_eq!(a.detected_at, b.detected_at);
            assert_eq!(a.resumed_at, b.resumed_at);
            assert_eq!(a.case, b.case);
            assert_eq!(a.available_at_detect, b.available_at_detect);
        }
        assert_eq!(off.final_iteration, fixed.final_iteration);
        assert!(off.is_green() && fixed.is_green());
    }

    #[test]
    fn wasted_ledger_accounts_every_run() {
        let report = run_chaos(&ChaosPlan::kill_mid_checkpoint(), 1).unwrap();
        assert_eq!(report.wasted.failures, 1);
        // Ledger downtime equals the wave's reported downtime.
        assert_eq!(report.wasted.downtime, report.waves[0].downtime);
        assert!(report.wasted.total() >= report.wasted.downtime);
    }

    #[test]
    fn new_plans_are_green_policy_off() {
        for (plan, seed) in [
            (ChaosPlan::repeat_group_loss(), 1),
            (ChaosPlan::nic_collapse(), 1),
        ] {
            let report = chaos_with(&plan, seed, TelemetrySink::disabled()).unwrap();
            assert!(
                report.is_green(),
                "plan {}: {:?}",
                plan.name,
                report.violations
            );
            assert!(!report.waves.is_empty(), "plan {}", plan.name);
        }
    }

    #[test]
    fn adaptive_persists_ahead_of_the_second_group_loss() {
        let plan = ChaosPlan::repeat_group_loss();
        let sink = TelemetrySink::enabled();
        let adaptive =
            chaos_policy(&plan, 1, sink.clone(), &PolicySpec::adaptive()).unwrap();
        let fixed =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &paper_fixed()).unwrap();
        assert!(adaptive.is_green(), "violations: {:?}", adaptive.violations);
        assert!(fixed.is_green(), "violations: {:?}", fixed.violations);
        assert_eq!(adaptive.waves.len(), 2);
        assert_eq!(fixed.waves.len(), 2);
        // The first loss teaches the engine; it persists before the second.
        assert!(adaptive.policy_decisions >= 1, "no decision applied");
        assert!(adaptive.persists_completed >= 1, "no persist completed");
        assert!(
            adaptive.waves[1].resumed_from_iteration
                > fixed.waves[1].resumed_from_iteration,
            "adaptive {} vs fixed {}",
            adaptive.waves[1].resumed_from_iteration,
            fixed.waves[1].resumed_from_iteration
        );
        assert!(
            adaptive.wasted.total() < fixed.wasted.total(),
            "adaptive {:?} vs fixed {:?}",
            adaptive.wasted.total(),
            fixed.wasted.total()
        );
        // Safety: adaptive never lost a checkpoint the fixed policy kept.
        assert!(check_policy_preserves_commits(&adaptive, &fixed).is_empty());
        // Decisions surfaced as typed telemetry.
        assert!(!sink
            .find(|e| matches!(e, TelemetryEvent::PolicyDecision { .. }))
            .is_empty());
        let snap = sink.metrics_snapshot();
        let cell = intern_label("repeat_group_loss:1");
        assert!(snap.counter(Key::labeled("policy.evaluations", "cell", cell)) > 0);
        assert!(snap.counter(Key::labeled("policy.persists", "cell", cell)) >= 1);
    }

    #[test]
    fn adaptive_fans_in_when_the_nic_collapses() {
        // The engine pre-positions onto the sharded scheme during the
        // degrade window (the fan-in claws back the per-link slowdown),
        // and the tier rule — priced against the *sharded* remote path —
        // keeps CPU-first rather than paying a persistent rollback the
        // fan-in beats.
        let plan = ChaosPlan::nic_collapse();
        let adaptive =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &PolicySpec::adaptive())
                .unwrap();
        let fixed =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &paper_fixed()).unwrap();
        assert!(adaptive.is_green(), "violations: {:?}", adaptive.violations);
        assert!(fixed.is_green(), "violations: {:?}", fixed.violations);
        assert!(adaptive.scheme_switches >= 1, "scheme switch must fire");
        assert_eq!(adaptive.scheme, "sharded_hybrid");
        assert_eq!(adaptive.tier_overrides, 0, "fan-in supersedes the reroute");
        assert_eq!(adaptive.waves[0].case, RecoveryCase::HardwareFromCpu);
        assert_eq!(fixed.waves[0].case, RecoveryCase::HardwareFromCpu);
        // Fanning in beats grinding the 1500×-degraded fabric alone.
        assert!(
            adaptive.waves[0].downtime < fixed.waves[0].downtime,
            "adaptive {:?} vs fixed {:?}",
            adaptive.waves[0].downtime,
            fixed.waves[0].downtime
        );
        assert!(adaptive.wasted.total() < fixed.wasted.total());
        assert!(check_policy_preserves_commits(&adaptive, &fixed).is_empty());
    }

    #[test]
    fn adaptive_ties_fixed_on_quiet_plans() {
        // One uncorrelated kill over a healthy fabric: the engine has no
        // signal to act on, so the adaptive run must match the paper's
        // fixed policy wave-for-wave.
        let plan = ChaosPlan::kill_mid_checkpoint();
        let adaptive =
            chaos_policy(&plan, 3, TelemetrySink::disabled(), &PolicySpec::adaptive())
                .unwrap();
        let fixed =
            chaos_policy(&plan, 3, TelemetrySink::disabled(), &paper_fixed()).unwrap();
        assert_eq!(adaptive.policy_decisions, 0, "no signal, no decision");
        assert_eq!(adaptive.wasted, fixed.wasted);
        assert_eq!(adaptive.waves.len(), fixed.waves.len());
        assert_eq!(
            adaptive.waves[0].resumed_at,
            fixed.waves[0].resumed_at
        );
    }

    #[test]
    fn policy_runs_are_byte_identical_per_seed() {
        for spec in [PolicySpec::adaptive(), paper_fixed()] {
            let a = chaos_policy(
                &ChaosPlan::repeat_group_loss(),
                5,
                TelemetrySink::disabled(),
                &spec,
            )
            .unwrap();
            let b = chaos_policy(
                &ChaosPlan::repeat_group_loss(),
                5,
                TelemetrySink::enabled(),
                &spec,
            )
            .unwrap();
            assert_eq!(a.render(), b.render(), "policy {}", spec.name());
        }
    }

    // ------------------------------------------- spot / shrink / modes ----

    fn fixed_mode(mode: RecoveryMode) -> PolicySpec {
        PolicySpec::Fixed(gemini_core::FixedPolicy {
            name: match mode {
                RecoveryMode::Wait => "mode_wait",
                RecoveryMode::Shrink => "mode_shrink",
                RecoveryMode::StepUp => "mode_step_up",
            },
            knobs: PolicyKnobs::with_mode(mode),
        })
    }

    #[test]
    fn spot_preemption_flush_commits_before_the_kill() {
        let report = run_chaos(&ChaosPlan::spot_preemption_notice(), 1).unwrap();
        assert!(report.is_green(), "violations: {:?}", report.violations);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].case, RecoveryCase::HardwareFromCpu);
        // The notice-window flush committed the in-flight iteration, so
        // the wave resumes from the progress at preemption time (~520 s
        // at ~62 s/iteration), not an older checkpoint.
        assert!(
            report.waves[0].resumed_from_iteration >= 7,
            "resumed from {}",
            report.waves[0].resumed_from_iteration
        );
        // The flush itself is visible overhead in the ledger.
        assert!(report.wasted.overhead > SimDuration::ZERO);
    }

    #[test]
    fn shrink_mode_adopts_shards_and_continues_on_survivors() {
        let plan = ChaosPlan::spot_capacity_crunch();
        let wait =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &fixed_mode(RecoveryMode::Wait))
                .unwrap();
        let shrink = chaos_policy(
            &plan,
            1,
            TelemetrySink::disabled(),
            &fixed_mode(RecoveryMode::Shrink),
        )
        .unwrap();
        assert!(wait.is_green(), "wait violations: {:?}", wait.violations);
        assert!(
            shrink.is_green(),
            "shrink violations: {:?}",
            shrink.violations
        );
        assert_eq!(shrink.mode, "shrink");
        // Shrink never touches the (dead) control plane.
        assert_eq!(shrink.retry_attempts, 0);
        assert!(wait.retry_attempts > 0, "wait must stall on the outage");
        let sw = &shrink.waves[0];
        assert_eq!(sw.case, RecoveryCase::HardwareFromCpu);
        assert!(
            sw.degraded.as_deref().unwrap_or("").contains("shrink"),
            "degraded = {:?}",
            sw.degraded
        );
        // Both preemptions land in one wave; the survivors carry on at
        // 14/16 width long before the outage lifts.
        assert!(
            sw.downtime < wait.waves[0].downtime,
            "shrink {:?} vs wait {:?}",
            sw.downtime,
            wait.waves[0].downtime
        );
        assert!(shrink.final_iteration > sw.resumed_from_iteration);
        // During the crunch, shrinking wastes less total time than
        // waiting out the operator outage.
        assert!(
            shrink.wasted.total() < wait.wasted.total(),
            "shrink {:?} vs wait {:?}",
            shrink.wasted.total(),
            wait.wasted.total()
        );
        assert!(check_policy_preserves_commits(&shrink, &wait).is_empty());
    }

    #[test]
    fn step_up_mode_recovers_through_the_hot_spare() {
        // The step-up comparator pre-allocates a standby, so the benign
        // spot preemption recovers at activation speed instead of paying
        // a fresh reserve.
        let plan = ChaosPlan::spot_preemption_notice();
        let wait =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &fixed_mode(RecoveryMode::Wait))
                .unwrap();
        let step = chaos_policy(
            &plan,
            1,
            TelemetrySink::disabled(),
            &fixed_mode(RecoveryMode::StepUp),
        )
        .unwrap();
        assert!(wait.is_green() && step.is_green());
        assert_eq!(step.mode, "step_up");
        assert!(
            step.waves[0].downtime < wait.waves[0].downtime,
            "step {:?} vs wait {:?}",
            step.waves[0].downtime,
            wait.waves[0].downtime
        );
    }

    #[test]
    fn adaptive_switches_to_shrink_in_a_capacity_crunch() {
        let plan = ChaosPlan::spot_capacity_crunch();
        let adaptive =
            chaos_policy(&plan, 1, TelemetrySink::disabled(), &PolicySpec::adaptive())
                .unwrap();
        assert!(adaptive.is_green(), "violations: {:?}", adaptive.violations);
        // The 25-minute outage blows the replacement wait past the
        // shrink degradation cost well before the preemptions land, so
        // the engine switches to shrink, absorbs both preemptions by
        // repartitioning onto the survivors, and — once the outage lifts
        // and waiting is cheap again — switches back.
        assert!(adaptive.mode_switches >= 1, "no mode switch fired");
        assert!(adaptive
            .waves
            .iter()
            .any(|w| w.degraded.as_deref().unwrap_or("").contains("shrink")));
        // Render carries the mode columns.
        assert!(adaptive.render().contains("mode="));
        assert!(adaptive.render().contains("mode_switches="));
    }

    #[test]
    fn moe_chaos_plan_is_green_and_byte_identical() {
        let plan = ChaosPlan::moe_kill_mid_checkpoint();
        let a = chaos_with(&plan, 1, TelemetrySink::disabled()).unwrap();
        let b = chaos_with(&plan, 1, TelemetrySink::enabled()).unwrap();
        assert!(a.is_green(), "violations: {:?}", a.violations);
        assert_eq!(a.waves.len(), 1);
        assert_eq!(a.waves[0].case, RecoveryCase::HardwareFromCpu);
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn shrink_runs_are_byte_identical_across_sinks() {
        let plan = ChaosPlan::spot_capacity_crunch();
        let spec = fixed_mode(RecoveryMode::Shrink);
        let a = chaos_policy(&plan, 7, TelemetrySink::disabled(), &spec).unwrap();
        let b = chaos_policy(&plan, 7, TelemetrySink::enabled(), &spec).unwrap();
        assert_eq!(a.render(), b.render());
    }
}
