//! The event-driven recovery drill (paper §7.3, Fig. 14).
//!
//! Reproduces the paper's measured failure-recovery timeline end to end on
//! the discrete-event engine: training iterations checkpoint every
//! iteration; worker agents heartbeat into the distributed KV store; a
//! failure is injected mid-iteration; the victim's health lease lapses;
//! the elected root agent detects the lapse on its scan (≈15 s), notifies
//! the alive agents to serialize their checkpoint replicas (≈162 s for
//! GPT-2 100B), requests a replacement machine for hardware failures
//! (4–7 min from the cloud operator, seconds from a standby), guides the
//! checkpoint retrieval per the recovery plan, and finally pays the
//! restart warm-up (>4 min) before training resumes.
//!
//! Root-machine failures are handled too: leadership passes through the KV
//! store's election once the old root's lease expires, and the new root
//! performs the detection.

use crate::scenario::{GeminiSystem, Deployment};
use gemini_cluster::{CloudOperator, FailureKind, OperatorConfig};
use gemini_core::agents::{RootAgent, WorkerAgent};
use gemini_core::policy::RecoveryMode;
use gemini_core::recovery::{RecoveryCase, RecoveryPlan, RecoveryPlanner, ShrinkPlan};
use gemini_core::GeminiError;
use gemini_kvstore::KvStore;
use gemini_sim::{Context, Engine, Model, SimDuration, SimTime};
use gemini_telemetry::{
    EngineTelemetryProbe, FailureClass, FlowPhase, Key, TelemetryEvent, TelemetrySink, TimedEvent,
};
use serde::{Deserialize, Serialize};

fn class_of(kind: FailureKind) -> FailureClass {
    match kind {
        FailureKind::Hardware => FailureClass::Hardware,
        FailureKind::Software => FailureClass::Software,
    }
}

fn case_tier_label(case: RecoveryCase) -> &'static str {
    match case {
        RecoveryCase::SoftwareLocal => "local_cpu",
        RecoveryCase::HardwareFromCpu => "remote_cpu",
        RecoveryCase::PersistentFallback => "persistent",
    }
}

/// Configuration of one drill run.
#[derive(Clone, Debug)]
pub struct DrillConfig {
    /// The deployment.
    pub scenario: Deployment,
    /// Which ranks fail, with what kind, all at the same instant.
    pub failures: Vec<(usize, FailureKind)>,
    /// The iteration during which the failure strikes (1-based; the paper
    /// injects during iteration 4).
    pub fail_during_iteration: u64,
    /// Cloud-operator behaviour (standby machines etc.).
    pub operator: OperatorConfig,
    /// RNG seed.
    pub seed: u64,
    /// How hardware losses are absorbed: wait for replacements (the
    /// paper's behaviour), shrink-and-continue on the survivors, or
    /// step-up from a pre-provisioned hot spare.
    pub mode: RecoveryMode,
}

impl DrillConfig {
    /// The paper's Fig. 14 run: GPT-2 100B, one hardware failure during
    /// iteration 4, no standby machines.
    pub fn fig14() -> DrillConfig {
        DrillConfig {
            scenario: Deployment::dense_gpt2_100b_p4d(),
            failures: vec![(5, FailureKind::Hardware)],
            fail_during_iteration: 4,
            operator: OperatorConfig::default(),
            seed: 1,
            mode: RecoveryMode::Wait,
        }
    }
}

/// The measured breakdown of one recovery (the Fig. 14 annotations).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillReport {
    /// When the failure struck.
    pub failed_at: SimTime,
    /// Failure-detection latency (failure → root notices the lapsed key).
    pub detect_latency: SimDuration,
    /// Checkpoint serialization time (`torch.save()` of the replicas).
    pub serialize_time: SimDuration,
    /// Wait for the replacement machine (zero for software failures;
    /// overlaps serialization).
    pub replacement_wait: SimDuration,
    /// Checkpoint retrieval time per the recovery plan.
    pub retrieval_time: SimDuration,
    /// Restart warm-up before training proceeds.
    pub warmup_time: SimDuration,
    /// Total downtime: failure → training resumed.
    pub total_downtime: SimDuration,
    /// Which recovery mechanism applied.
    pub case: RecoveryCase,
    /// The recovery mode the drill ran under.
    pub mode: RecoveryMode,
    /// The shrink repartition, when [`DrillConfig::mode`] was
    /// [`RecoveryMode::Shrink`] and a hardware loss actually shrank the
    /// job (`None` otherwise).
    pub shrink: Option<ShrinkPlan>,
    /// The iteration training rolled back to.
    pub resumed_from_iteration: u64,
    /// The iteration the failure interrupted.
    pub failed_iteration: u64,
    /// Which rank ended up being the detecting root.
    pub detecting_root: String,
    /// The typed event log of the drill (empty on a disabled sink).
    pub events: Vec<TimedEvent>,
}

impl DrillReport {
    /// The canonical plain-text rendering: every sink-independent field,
    /// one per line, in declaration order. This is the byte-identity
    /// contract the service's `drill` query responses are compared
    /// against (the [`DrillReport::events`] log is deliberately excluded
    /// — it is only populated under an enabled sink).
    pub fn render(&self) -> String {
        let shrink = match &self.shrink {
            None => String::new(),
            Some(plan) => format!(
                "shrink survivors={} moves={} throughput_factor={:.3}\n",
                plan.survivors.len(),
                plan.moves.len(),
                plan.throughput_factor,
            ),
        };
        format!(
            "drill case={:?} mode={}\n\
             failed_at={:.3}s failed_iteration={}\n\
             detect={:.3}s serialize={:.3}s replacement={:.3}s \
             retrieval={:.3}s warmup={:.3}s\n\
             total_downtime={:.3}s resumed_from_iteration={}\n\
             detecting_root={}\n{shrink}",
            self.case,
            self.mode.label(),
            self.failed_at.as_secs_f64(),
            self.failed_iteration,
            self.detect_latency.as_secs_f64(),
            self.serialize_time.as_secs_f64(),
            self.replacement_wait.as_secs_f64(),
            self.retrieval_time.as_secs_f64(),
            self.warmup_time.as_secs_f64(),
            self.total_downtime.as_secs_f64(),
            self.resumed_from_iteration,
            self.detecting_root,
        )
    }
}

#[derive(Debug)]
enum Ev {
    IterationDone(u64),
    Heartbeat(usize),
    CoordinationTick,
    InjectFailure,
    SerializeDone,
    ReplacementReady(usize),
    RetrievalDone,
    WarmupDone,
}

struct DrillModel {
    sys: GeminiSystem,
    kv: KvStore,
    sink: TelemetrySink,
    workers: Vec<WorkerAgent>,
    roots: Vec<RootAgent>,
    operator: CloudOperator,
    failures: Vec<(usize, FailureKind)>,
    fail_during_iteration: u64,
    mode: RecoveryMode,
    // progress state
    current_iteration: u64,
    training_blocked: bool,
    failed_at: Option<SimTime>,
    detected_at: Option<SimTime>,
    detecting_root: Option<String>,
    serialize_done: bool,
    serialize_started: Option<SimTime>,
    serialize_finished: Option<SimTime>,
    replacements_pending: usize,
    replacement_ready_at: Option<SimTime>,
    plan: Option<RecoveryPlan>,
    shrink: Option<ShrinkPlan>,
    retrieval_started: Option<SimTime>,
    retrieval_finished: Option<SimTime>,
    resumed_at: Option<SimTime>,
    done: bool,
    /// First typed error hit mid-simulation; the drill stops and
    /// [`execute_drill`] surfaces it as a per-query `Err` instead of a
    /// process-killing panic (a service stays up when one query is bad).
    error: Option<GeminiError>,
}

impl DrillModel {
    fn failed_ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|(r, _)| *r).collect()
    }

    /// Records the first error and halts the simulation; every later
    /// event handler becomes a no-op via `done`.
    fn abort(&mut self, ctx: &mut Context<'_, Ev>, err: GeminiError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
        self.done = true;
        ctx.stop();
    }

    fn maybe_start_retrieval(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.plan.is_some()
            || self.shrink.is_some()
            || !self.serialize_done
            || self.replacements_pending > 0
            || self.detected_at.is_none()
        {
            return;
        }
        let hw_down: std::collections::BTreeSet<usize> = self
            .failures
            .iter()
            .filter(|(_, k)| *k == FailureKind::Hardware)
            .map(|(r, _)| *r)
            .collect();
        if self.mode == RecoveryMode::Shrink && !hw_down.is_empty() {
            // Shrink-and-continue: survivors adopt the lost shards; no
            // replacement machines are involved.
            let plan = match RecoveryPlanner.plan_shrink(&self.sys.store, &hw_down) {
                Ok(plan) => plan,
                Err(err) => return self.abort(ctx, err),
            };
            for mv in &plan.moves {
                if mv.tier != gemini_core::ckpt::StorageTier::Persistent {
                    if let Err(err) =
                        self.sys.store.adopt_shard(mv.owner, mv.to, plan.iteration)
                    {
                        return self.abort(ctx, err);
                    }
                }
            }
            let slowest = plan.retrieval_makespan(
                self.sys.scenario.ckpt_bytes_per_machine(),
                self.sys.scenario.machines,
                &self.sys.scenario.instance.ckpt_net_cost(),
                &self.sys.scenario.instance.copy_cost(),
                &self.sys.scenario.storage_cost(),
            );
            self.sink.event(ctx.now(), || TelemetryEvent::RetrievalStarted {
                case: format!("{:?}", plan.case),
                rollback_to: plan.iteration,
            });
            self.retrieval_started = Some(ctx.now());
            self.shrink = Some(plan);
            ctx.schedule_after(slowest, Ev::RetrievalDone);
            return;
        }
        let planner = RecoveryPlanner;
        let plan = match planner.plan(&self.sys.store, &self.failures) {
            Ok(plan) => plan,
            Err(err) => return self.abort(ctx, err),
        };
        // Retrieval: every rank fetches per its source, in parallel except
        // where they share a serving host (or the persistent pipe) — the
        // contention-aware makespan.
        let slowest = plan.retrieval_makespan(
            self.sys.scenario.ckpt_bytes_per_machine(),
            self.sys.scenario.machines,
            &self.sys.scenario.instance.ckpt_net_cost(),
            &self.sys.scenario.instance.copy_cost(),
            &self.sys.scenario.storage_cost(),
        );
        // `RetrievalStarted`, the per-rank `RecoveryTierHit` events and the
        // `recovery.*` counters all come from the plan itself.
        plan.record_telemetry(&self.sink, ctx.now());
        self.retrieval_started = Some(ctx.now());
        self.plan = Some(plan);
        ctx.schedule_after(slowest, Ev::RetrievalDone);
    }
}

impl Model for DrillModel {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::IterationDone(i) => {
                if self.training_blocked || self.done {
                    return;
                }
                self.current_iteration = i;
                // Per-iteration checkpoint committed by iteration end.
                self.sys.store.record_complete(i);
                self.sink
                    .event(ctx.now(), || TelemetryEvent::IterationComplete {
                        iteration: i,
                    });
                ctx.schedule_after(self.sys.iteration_time(), Ev::IterationDone(i + 1));
            }
            Ev::Heartbeat(rank) => {
                let dead = self.failed_at.is_some()
                    && self.failed_ranks().contains(&rank)
                    && self.resumed_at.is_none();
                if dead || self.done {
                    return; // the process is gone; no more heartbeats
                }
                if self.workers[rank].heartbeat(&mut self.kv, ctx.now()).is_err() {
                    return self.abort(ctx, GeminiError::Coordination("worker heartbeat"));
                }
                ctx.schedule_after(
                    self.sys.scenario.config.heartbeat_period,
                    Ev::Heartbeat(rank),
                );
            }
            Ev::CoordinationTick => {
                if self.done {
                    return;
                }
                let now = ctx.now();
                // Every alive machine campaigns; the store arbitrates.
                let failed = self.failed_ranks();
                let resumed = self.resumed_at.is_some();
                for (rank, root) in self.roots.iter_mut().enumerate() {
                    let dead = self.failed_at.is_some() && failed.contains(&rank) && !resumed;
                    if !dead {
                        let _ = root.campaign(&mut self.kv, now);
                    }
                }
                // The current leader scans for lapsed health keys — but
                // only if the machine running it is itself alive (a dead
                // root's election key lingers until its lease expires).
                let n = self.sys.cluster.len();
                let leader = (0..self.roots.len()).find(|&rank| {
                    let dead = self.failed_at.is_some() && failed.contains(&rank) && !resumed;
                    !dead && self.roots[rank].is_leader(&mut self.kv, now)
                });
                if let Some(leader_rank) = leader {
                    let report = self.roots[leader_rank].scan(&mut self.kv, now, n);
                    if !report.missing.is_empty() && self.detected_at.is_none() {
                        self.detected_at = Some(now);
                        self.detecting_root = Some(self.roots[leader_rank].identity().to_string());
                        for &rank in &report.missing {
                            self.sink
                                .event(now, || TelemetryEvent::HeartbeatMissed { rank });
                        }
                        self.sink.event(now, || TelemetryEvent::FailureDetected {
                            ranks: report.missing.clone(),
                            by: leader_rank.to_string(),
                        });
                        // Notify alive agents to serialize the latest
                        // complete checkpoints (torch.save).
                        self.serialize_started = Some(now);
                        self.sink
                            .event(now, || TelemetryEvent::SerializationStarted {
                                ranks: report.alive.len(),
                            });
                        ctx.schedule_after(self.sys.serialize_time(), Ev::SerializeDone);
                        // Request replacements for hardware failures —
                        // unless the job shrinks onto the survivors.
                        for &(rank, kind) in &self.failures.clone() {
                            if kind == FailureKind::Hardware && self.mode != RecoveryMode::Shrink {
                                if self.sys.cluster.begin_replacement(rank).is_err() {
                                    return self.abort(
                                        ctx,
                                        GeminiError::Coordination("replacement request"),
                                    );
                                }
                                self.replacements_pending += 1;
                                let provision = self.operator.request_replacement(now, ctx.rng());
                                self.sink
                                    .event(now, || TelemetryEvent::ReplacementRequested {
                                        rank,
                                        standby: provision.from_standby,
                                        ready_at: provision.ready_at,
                                    });
                                ctx.schedule_at(provision.ready_at, Ev::ReplacementReady(rank));
                            }
                        }
                    }
                }
                ctx.schedule_after(SimDuration::from_secs(1), Ev::CoordinationTick);
            }
            Ev::InjectFailure => {
                self.failed_at = Some(ctx.now());
                self.training_blocked = true;
                for &(rank, kind) in &self.failures.clone() {
                    if self.sys.cluster.fail(rank, kind).is_err() {
                        return self.abort(ctx, GeminiError::UnknownRank(rank));
                    }
                    if kind == FailureKind::Hardware {
                        self.sys.store.machine_lost(rank);
                    }
                    self.sink
                        .event(ctx.now(), || TelemetryEvent::FailureInjected {
                            rank,
                            kind: class_of(kind),
                        });
                }
            }
            Ev::SerializeDone => {
                self.serialize_done = true;
                self.serialize_finished = Some(ctx.now());
                self.sink
                    .event(ctx.now(), || TelemetryEvent::SerializationFinished);
                self.maybe_start_retrieval(ctx);
            }
            Ev::ReplacementReady(rank) => {
                if self.sys.cluster.complete_replacement(rank, ctx.now()).is_err() {
                    return self.abort(ctx, GeminiError::Coordination("replacement completion"));
                }
                self.replacements_pending = self.replacements_pending.saturating_sub(1);
                self.replacement_ready_at = Some(
                    self.replacement_ready_at
                        .unwrap_or(ctx.now())
                        .max(ctx.now()),
                );
                self.sink
                    .event(ctx.now(), || TelemetryEvent::MachineReplaced { rank });
                self.maybe_start_retrieval(ctx);
            }
            Ev::RetrievalDone => {
                self.retrieval_finished = Some(ctx.now());
                self.sink
                    .event(ctx.now(), || TelemetryEvent::RetrievalFinished);
                ctx.schedule_after(self.sys.scenario.config.restart_warmup, Ev::WarmupDone);
            }
            Ev::WarmupDone => {
                self.resumed_at = Some(ctx.now());
                self.training_blocked = false;
                // Restart software-failed ranks in place.
                for &(rank, kind) in &self.failures.clone() {
                    if kind == FailureKind::Software
                        && self.sys.cluster.restart(rank).is_err()
                    {
                        return self.abort(ctx, GeminiError::Coordination("software restart"));
                    }
                }
                let resume_iter = match (self.plan.as_ref(), self.shrink.as_ref()) {
                    (Some(plan), _) => plan.iteration,
                    (None, Some(shrink)) => shrink.iteration,
                    (None, None) => {
                        return self.abort(
                            ctx,
                            GeminiError::Coordination("recovery plan missing at resume"),
                        )
                    }
                };
                self.sink
                    .event(ctx.now(), || TelemetryEvent::TrainingResumed {
                        iteration: resume_iter,
                    });
                self.done = true;
                ctx.stop();
            }
        }
    }
}

/// Runs a drill and reports the recovery-time breakdown, recording the
/// full typed-event log through a fresh sink.
pub fn run_drill(config: &DrillConfig) -> Result<DrillReport, GeminiError> {
    execute_drill(config, TelemetrySink::enabled())
}

/// Deprecated shim over [`crate::Scenario::drill`] with an explicit sink.
#[deprecated(note = "use gemini_harness::Scenario::drill(cfg).sink(sink).run()")]
pub fn run_drill_with(
    config: &DrillConfig,
    sink: TelemetrySink,
) -> Result<DrillReport, GeminiError> {
    execute_drill(config, sink)
}

/// Runs a drill recording through `sink` — the caller keeps the handle, so
/// it can query events, snapshot metrics and export traces afterwards.
/// With a [`TelemetrySink::disabled`] sink the drill runs at full speed and
/// the report's `events` come back empty.
pub(crate) fn execute_drill(
    config: &DrillConfig,
    sink: TelemetrySink,
) -> Result<DrillReport, GeminiError> {
    // Up-front structural validation: every rejection here is a typed,
    // per-query error. A serve loop feeds arbitrary tenant configs through
    // this path, so nothing below may panic on bad input.
    if config.failures.is_empty() {
        return Err(GeminiError::InvalidDrill(
            "at least one failure must be injected",
        ));
    }
    if config.fail_during_iteration == 0 {
        return Err(GeminiError::InvalidDrill(
            "fail_during_iteration is 1-based and must be >= 1",
        ));
    }
    {
        let mut seen = std::collections::BTreeSet::new();
        for &(rank, _) in &config.failures {
            if !seen.insert(rank) {
                return Err(GeminiError::InvalidDrill(
                    "duplicate victim rank in failure list",
                ));
            }
        }
    }
    let mut sys = config.scenario.build_system(config.seed)?;
    // Jobs start from a persisted initial checkpoint (iteration 0), which
    // is what the persistent-fallback path rolls back to if a whole
    // placement group is lost before the next 3-hour persist.
    sys.store.persist(0);
    // The steady-state checkpoint interleave, recorded once up front: `ckpt`
    // spans + chunk events in the trace export, plus the ckpt.*/net.* gauges
    // the schedule implies.
    sys.schedule.record_telemetry(&sink, SimTime::ZERO);
    let n = sys.cluster.len();
    for &(rank, _) in &config.failures {
        if rank >= n {
            return Err(GeminiError::UnknownRank(rank));
        }
    }
    let gcfg = sys.scenario.config;
    let iter_time = sys.iteration_time();
    let mut kv = KvStore::new().with_telemetry(sink.clone());
    let mut workers: Vec<WorkerAgent> = (0..n)
        .map(|r| WorkerAgent::new(r, r as u64, gcfg))
        .collect();
    for w in workers.iter_mut() {
        w.register(&mut kv, SimTime::ZERO)
            .map_err(|_| GeminiError::Coordination("worker registration"))?;
    }
    let roots: Vec<RootAgent> = (0..n)
        .map(|r| RootAgent::new(&format!("machine-{r}"), &gcfg))
        .collect();

    // Step-up recovery pre-provisions one hot spare on top of whatever
    // standbys the operator already keeps: replacements activate in
    // seconds instead of the 4–7 min ASG window.
    let mut operator_cfg = config.operator;
    if config.mode == RecoveryMode::StepUp {
        operator_cfg.standbys += 1;
    }
    let mut model = DrillModel {
        sys,
        kv,
        sink: sink.clone(),
        workers,
        roots,
        operator: CloudOperator::new(operator_cfg).with_telemetry(sink.clone()),
        failures: config.failures.clone(),
        fail_during_iteration: config.fail_during_iteration,
        mode: config.mode,
        current_iteration: 0,
        training_blocked: false,
        failed_at: None,
        detected_at: None,
        detecting_root: None,
        serialize_done: false,
        serialize_started: None,
        serialize_finished: None,
        replacements_pending: 0,
        replacement_ready_at: None,
        plan: None,
        shrink: None,
        retrieval_started: None,
        retrieval_finished: None,
        resumed_at: None,
        done: false,
        error: None,
    };

    let mut engine =
        Engine::new(config.seed).with_probe(EngineTelemetryProbe::boxed(sink.clone(), 256));
    engine.prime_at(SimTime::ZERO, Ev::CoordinationTick);
    for r in 0..n {
        engine.prime_after(gcfg.heartbeat_period, Ev::Heartbeat(r));
    }
    engine.prime_after(iter_time, Ev::IterationDone(1));
    // The failure strikes halfway through the configured iteration.
    let fail_at = SimTime::ZERO
        + SimDuration::from_secs_f64(
            iter_time.as_secs_f64() * (config.fail_during_iteration as f64 - 0.5),
        );
    engine.prime_at(fail_at, Ev::InjectFailure);

    engine.run(&mut model, Some(SimTime::from_hours(6)), 10_000_000);

    if let Some(err) = model.error.take() {
        return Err(err);
    }
    let failed_at = model.failed_at.ok_or(GeminiError::InvalidDrill(
        "failure never struck within the simulation horizon",
    ))?;
    let detected_at = model
        .detected_at
        .ok_or(GeminiError::NoCheckpointAvailable)?;
    let resumed_at = model.resumed_at.ok_or(GeminiError::NoCheckpointAvailable)?;
    let (case, resumed_iter) = match (model.plan.as_ref(), model.shrink.as_ref()) {
        (Some(plan), _) => (plan.case, plan.iteration),
        (None, Some(shrink)) => (shrink.case, shrink.iteration),
        (None, None) => {
            return Err(GeminiError::Coordination("recovery plan missing at resume"))
        }
    };
    let serialize_time = model
        .serialize_finished
        .zip(model.serialize_started)
        .map(|(e, s)| e - s)
        .unwrap_or(SimDuration::ZERO);
    let replacement_wait = model
        .replacement_ready_at
        .map(|t| t - detected_at)
        .unwrap_or(SimDuration::ZERO);
    let retrieval_time = model
        .retrieval_finished
        .zip(model.retrieval_started)
        .map(|(e, s)| e - s)
        .unwrap_or(SimDuration::ZERO);
    let total_downtime = resumed_at - failed_at;

    // The Fig. 14 breakdown as recovery-track spans: load the Chrome trace
    // into Perfetto and the annotated phases appear stacked over time.
    if sink.is_enabled() {
        sink.span("recovery", || "detect".to_string(), failed_at, detected_at);
        if let (Some(s), Some(e)) = (model.serialize_started, model.serialize_finished) {
            sink.span("recovery", || "serialize".to_string(), s, e);
        }
        if let Some(ready) = model.replacement_ready_at {
            sink.span(
                "recovery",
                || "replacement wait".to_string(),
                detected_at,
                ready,
            );
        }
        if let (Some(s), Some(e)) = (model.retrieval_started, model.retrieval_finished) {
            sink.span("recovery", || "retrieval".to_string(), s, e);
        }
        if let Some(s) = model.retrieval_finished {
            sink.span("recovery", || "warmup".to_string(), s, resumed_at);
        }
        sink.span("recovery", || "downtime".to_string(), failed_at, resumed_at);
        let us = |d: SimDuration| (d.as_nanos() / 1_000) as u64;
        sink.observe_us("recovery.detect_us", || us(detected_at - failed_at));
        sink.observe_us("recovery.serialize_us", || us(serialize_time));
        sink.observe_us("recovery.replacement_wait_us", || us(replacement_wait));
        sink.observe_us_labeled(
            "recovery.retrieval_us",
            "tier",
            case_tier_label(case),
            || us(retrieval_time),
        );
        sink.observe_us("recovery.total_downtime_us", || us(total_downtime));
        sink.observe_us_key(
            Key::labeled("chaos.detection_latency_us", "plan", "drill"),
            crate::incident::DETECTION_LATENCY_BOUNDS_US,
            || us(detected_at - failed_at),
        );
        sink.counter_add("recovery.drills", 1);
        // A flow lane threads the single drill incident through the
        // recovery phases, so chrome://tracing draws arrows from the
        // failure instant to detection, retrieval and the resume point.
        sink.flow("recovery", || "incident".to_string(), 0, failed_at, FlowPhase::Start);
        sink.flow("recovery", || "incident".to_string(), 0, detected_at, FlowPhase::Step);
        if let Some(s) = model.retrieval_started {
            sink.flow("recovery", || "incident".to_string(), 0, s, FlowPhase::Step);
        }
        sink.flow("recovery", || "incident".to_string(), 0, resumed_at, FlowPhase::End);
    }

    Ok(DrillReport {
        failed_at,
        detect_latency: detected_at - failed_at,
        serialize_time,
        replacement_wait,
        retrieval_time,
        warmup_time: model.sys.scenario.config.restart_warmup,
        total_downtime,
        case,
        mode: config.mode,
        shrink: model.shrink.clone(),
        resumed_from_iteration: resumed_iter,
        failed_iteration: model.fail_during_iteration,
        detecting_root: model.detecting_root.clone().unwrap_or_default(),
        events: sink.events(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_hardware_failure_breakdown() {
        let report = run_drill(&DrillConfig::fig14()).unwrap();
        // Detection ≈ 15 s (TTL bound; ±heartbeat and scan granularity).
        let d = report.detect_latency.as_secs_f64();
        assert!((10.0..=17.0).contains(&d), "detect = {d:.1}s");
        // Serialization ≈ 162 s.
        let s = report.serialize_time.as_secs_f64();
        assert!((s - 161.3).abs() < 3.0, "serialize = {s:.1}s");
        // Replacement 4–7 min.
        let r = report.replacement_wait.as_secs_f64() / 60.0;
        assert!((4.0..=7.1).contains(&r), "replacement = {r:.1} min");
        // Retrieval from a peer's CPU memory: seconds.
        assert!(report.retrieval_time.as_secs_f64() < 5.0);
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        // Rolled back to the checkpoint of iteration 3.
        assert_eq!(report.resumed_from_iteration, 3);
        // Total ≈ 12 min for hardware failures (§7.3).
        let total = report.total_downtime.as_secs_f64() / 60.0;
        assert!((9.0..=14.0).contains(&total), "total = {total:.1} min");
    }

    #[test]
    fn software_failure_recovers_in_about_7_minutes() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(5, FailureKind::Software)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::SoftwareLocal);
        assert_eq!(report.replacement_wait, SimDuration::ZERO);
        // §7.3: "around 7 minutes for software failures":
        // 15 s detect + 162 s serialize + ~2 s retrieval + 250 s warmup.
        let total = report.total_downtime.as_secs_f64() / 60.0;
        assert!((6.0..=8.5).contains(&total), "total = {total:.1} min");
    }

    #[test]
    fn standby_machines_shrink_hardware_recovery() {
        let mut cfg = DrillConfig::fig14();
        cfg.operator = OperatorConfig::with_standbys(2);
        let with_standby = run_drill(&cfg).unwrap();
        let without = run_drill(&DrillConfig::fig14()).unwrap();
        assert!(with_standby.total_downtime < without.total_downtime);
        assert!(with_standby.replacement_wait.as_secs_f64() < 40.0);
    }

    #[test]
    fn root_machine_failure_fails_over() {
        // Rank 0 runs the initial root; killing it must elect another
        // machine, which then performs the detection.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(0, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_ne!(report.detecting_root, "machine-0");
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        // Failover costs one extra TTL at worst.
        assert!(report.detect_latency.as_secs_f64() <= 35.0);
    }

    #[test]
    fn group_loss_falls_back_to_persistent_storage() {
        let mut cfg = DrillConfig::fig14();
        // Ranks 0 and 1 form placement group 0 (m = 2): losing both wipes
        // every CPU replica of their shards.
        cfg.failures = vec![(0, FailureKind::Hardware), (1, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::PersistentFallback);
        // Rolls all the way back to the persisted initial checkpoint,
        // losing every iteration since — the "GEMINI degrades to Strawman"
        // case of §7.2.
        assert_eq!(report.resumed_from_iteration, 0);
        // Persistent retrieval is minutes, not seconds.
        assert!(report.retrieval_time.as_secs_f64() > 60.0);
    }

    #[test]
    fn cross_group_double_failure_recovers_from_cpu() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(2, FailureKind::Hardware), (5, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 3);
    }

    #[test]
    fn matrix_software_plus_hardware_simultaneous() {
        // One process crash and one machine loss in the same instant: the
        // hardware loss dominates the recovery tier, the software victim
        // restarts in place, and only the hardware rank gets a
        // replacement machine.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(4, FailureKind::Software), (9, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 3);
        // Detection is bounded by the health TTL plus one 1 s scan tick
        // (the scan runs once per second, so the lapse can be noticed up
        // to a tick after the lease expires).
        let ttl = cfg.scenario.config.health_ttl;
        assert!(
            report.detect_latency <= ttl + SimDuration::from_secs(1),
            "detect = {:.1}s > ttl + scan tick",
            report.detect_latency.as_secs_f64()
        );
        // A replacement was actually waited for (ASG window).
        let wait = report.replacement_wait.as_secs_f64() / 60.0;
        assert!((4.0..=7.1).contains(&wait), "replacement = {wait:.1} min");
    }

    #[test]
    fn matrix_root_plus_worker_simultaneous() {
        // The initial root (rank 0) and a worker die together: leadership
        // must fail over before anyone can detect either failure, so the
        // bound gains one election TTL on top of the health TTL.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(0, FailureKind::Hardware), (7, FailureKind::Software)];
        let report = run_drill(&cfg).unwrap();
        assert_ne!(report.detecting_root, "machine-0");
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 3);
        let ttl = cfg.scenario.config.health_ttl;
        assert!(
            report.detect_latency <= ttl + ttl + SimDuration::from_secs(1),
            "detect = {:.1}s > 2×ttl + scan tick",
            report.detect_latency.as_secs_f64()
        );
    }

    #[test]
    fn matrix_detection_latency_bounded_for_every_single_failure() {
        // Sweep victim ranks and kinds: for non-root victims the lapse is
        // noticed within health_ttl plus one scan tick, regardless of
        // which machine or failure class is involved.
        let ttl = DrillConfig::fig14().scenario.config.health_ttl;
        let bound = ttl + SimDuration::from_secs(1);
        for rank in [1usize, 6, 15] {
            for kind in [FailureKind::Software, FailureKind::Hardware] {
                let mut cfg = DrillConfig::fig14();
                cfg.failures = vec![(rank, kind)];
                let report = run_drill(&cfg).unwrap();
                assert!(
                    report.detect_latency <= bound,
                    "rank {rank} {kind:?}: detect = {:.1}s",
                    report.detect_latency.as_secs_f64()
                );
            }
        }
    }

    #[test]
    fn typed_events_cover_the_recovery_milestones() {
        use TelemetryEvent as E;
        let sink = TelemetrySink::enabled();
        let report = execute_drill(&DrillConfig::fig14(), sink.clone()).unwrap();
        // Every milestone is queryable structurally — no string grepping.
        assert_eq!(
            sink.find(|e| matches!(
                e,
                E::FailureInjected {
                    rank: 5,
                    kind: FailureClass::Hardware
                }
            ))
            .len(),
            1
        );
        assert_eq!(
            sink.find(|e| matches!(e, E::HeartbeatMissed { rank: 5 }))
                .len(),
            1
        );
        let detected = sink.find(|e| matches!(e, E::FailureDetected { .. }));
        assert_eq!(detected.len(), 1);
        match &detected[0].event {
            E::FailureDetected { ranks, .. } => assert_eq!(ranks, &vec![5]),
            _ => unreachable!(),
        }
        // Detection event is stamped at the detection instant.
        assert_eq!(detected[0].time, report.failed_at + report.detect_latency);
        assert_eq!(
            sink.find(|e| matches!(e, E::SerializationStarted { .. }))
                .len(),
            1
        );
        assert_eq!(
            sink.find(|e| matches!(e, E::SerializationFinished)).len(),
            1
        );
        assert_eq!(
            sink.find(|e| matches!(
                e,
                E::ReplacementRequested {
                    rank: 5,
                    standby: false,
                    ..
                }
            ))
            .len(),
            1
        );
        assert_eq!(
            sink.find(|e| matches!(e, E::MachineReplaced { rank: 5 }))
                .len(),
            1
        );
        // The recovery plan reported its tier decisions: rank 5 pulls its
        // shard from a surviving peer's CPU memory.
        assert!(
            sink.find(|e| matches!(
                e,
                E::RecoveryTierHit {
                    rank: 5,
                    tier: gemini_telemetry::Tier::RemoteCpu,
                    ..
                }
            ))
            .len()
                >= 1
        );
        let started = sink.find(|e| matches!(e, E::RetrievalStarted { .. }));
        assert_eq!(started.len(), 1);
        match &started[0].event {
            E::RetrievalStarted { rollback_to, .. } => assert_eq!(*rollback_to, 3),
            _ => unreachable!(),
        }
        assert_eq!(sink.find(|e| matches!(e, E::RetrievalFinished)).len(), 1);
        assert_eq!(
            sink.find(|e| matches!(e, E::TrainingResumed { iteration: 3 }))
                .len(),
            1
        );
        // A leader was elected in the KV store along the way.
        assert!(!sink
            .find(|e| matches!(e, E::LeaderElected { .. }))
            .is_empty());
        // The report carries the same log.
        assert_eq!(report.events.len(), sink.events().len());
    }

    #[test]
    fn recovery_spans_and_metrics_match_the_report() {
        let sink = TelemetrySink::enabled();
        let report = execute_drill(&DrillConfig::fig14(), sink.clone()).unwrap();
        let spans = sink.spans();
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s.track == "recovery" && s.name == name)
                .unwrap_or_else(|| panic!("missing recovery span {name:?}"))
        };
        assert_eq!(find("detect").duration(), report.detect_latency);
        assert_eq!(find("serialize").duration(), report.serialize_time);
        assert_eq!(find("retrieval").duration(), report.retrieval_time);
        assert_eq!(find("downtime").duration(), report.total_downtime);
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("recovery.drills")),
            1
        );
        // The drill drove the instrumented KV store underneath.
        assert!(snap.counter(gemini_telemetry::Key::plain("kv.heartbeats")) > 0);
        assert!(snap.counter(gemini_telemetry::Key::plain("kv.health_scans")) > 0);
        // And the engine probe accounted for every processed event.
        assert!(snap.counter(gemini_telemetry::Key::plain("sim.events_processed")) > 0);
        // Prometheus exposition carries all the required families.
        let prom = sink.export_prometheus();
        for family in ["recovery_", "kv_", "sim_", "cluster_"] {
            assert!(
                prom.contains(family),
                "exposition missing {family}*:\n{prom}"
            );
        }
    }

    #[test]
    fn disabled_sink_still_reports_the_same_breakdown() {
        let enabled = run_drill(&DrillConfig::fig14()).unwrap();
        let silent = execute_drill(&DrillConfig::fig14(), TelemetrySink::disabled()).unwrap();
        assert_eq!(silent.total_downtime, enabled.total_downtime);
        assert_eq!(silent.detect_latency, enabled.detect_latency);
        assert_eq!(silent.case, enabled.case);
        assert!(silent.events.is_empty());
    }

    /// The typed event log carries every drill milestone (the structured
    /// replacement for the removed legacy string-trace assertions).
    #[test]
    fn typed_events_contain_the_milestones() {
        use TelemetryEvent as E;
        let report = run_drill(&DrillConfig::fig14()).unwrap();
        let has = |pred: &dyn Fn(&E) -> bool| report.events.iter().any(|te| pred(&te.event));
        assert!(has(&|e| matches!(e, E::FailureInjected { .. })));
        assert!(has(&|e| matches!(e, E::FailureDetected { .. })));
        assert!(has(&|e| matches!(e, E::SerializationFinished)));
        assert!(has(&|e| matches!(e, E::MachineReplaced { .. })));
        assert!(has(&|e| matches!(e, E::RetrievalFinished)));
        assert!(has(&|e| matches!(e, E::TrainingResumed { .. })));
    }

    #[test]
    fn shrink_mode_continues_on_the_survivors() {
        let mut cfg = DrillConfig::fig14();
        cfg.mode = RecoveryMode::Shrink;
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.mode, RecoveryMode::Shrink);
        // No replacement machine was requested, let alone waited for.
        assert_eq!(report.replacement_wait, SimDuration::ZERO);
        let plan = report.shrink.as_ref().unwrap();
        assert_eq!(plan.survivors.len(), 15);
        assert_eq!(plan.moves.len(), 1);
        assert!((plan.throughput_factor - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 3);
        // Skipping the 4–7 min ASG wait beats the paper's wait mode.
        let wait = run_drill(&DrillConfig::fig14()).unwrap();
        assert!(report.total_downtime < wait.total_downtime);
        let text = report.render();
        assert!(text.contains("mode=shrink"), "render:\n{text}");
        assert!(text.contains("survivors=15 moves=1"), "render:\n{text}");
    }

    #[test]
    fn step_up_mode_activates_a_hot_spare() {
        let mut cfg = DrillConfig::fig14();
        cfg.mode = RecoveryMode::StepUp;
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.mode, RecoveryMode::StepUp);
        // The spare activates in seconds, not the 4–7 min ASG window.
        assert!(report.replacement_wait.as_secs_f64() < 40.0);
        assert!(report.shrink.is_none());
        assert!(report.render().contains("mode=step_up"));
        let wait = run_drill(&DrillConfig::fig14()).unwrap();
        assert!(report.total_downtime < wait.total_downtime);
    }

    #[test]
    fn shrink_mode_with_software_failure_restarts_in_place() {
        // Software failures never shrink: the process restarts locally
        // exactly as in wait mode.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(5, FailureKind::Software)];
        cfg.mode = RecoveryMode::Shrink;
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::SoftwareLocal);
        assert!(report.shrink.is_none());
    }

    #[test]
    fn unknown_rank_rejected() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(99, FailureKind::Software)];
        assert!(run_drill(&cfg).is_err());
    }

    #[test]
    fn malformed_configs_yield_typed_errors_not_panics() {
        // Pre-fix, a duplicate victim rank panicked inside the event loop
        // (`begin_replacement` hit a machine already in Replacing state);
        // a long-running serve loop must get a per-query Err instead.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(5, FailureKind::Hardware), (5, FailureKind::Hardware)];
        assert!(matches!(
            run_drill(&cfg),
            Err(GeminiError::InvalidDrill(_))
        ));

        let mut cfg = DrillConfig::fig14();
        cfg.failures.clear();
        assert!(matches!(
            run_drill(&cfg),
            Err(GeminiError::InvalidDrill(_))
        ));

        let mut cfg = DrillConfig::fig14();
        cfg.fail_during_iteration = 0;
        assert!(matches!(
            run_drill(&cfg),
            Err(GeminiError::InvalidDrill(_))
        ));

        // A failure slot past the simulation horizon ends cleanly too.
        let mut cfg = DrillConfig::fig14();
        cfg.fail_during_iteration = 1_000_000;
        assert!(matches!(
            run_drill(&cfg),
            Err(GeminiError::InvalidDrill(_))
        ));
    }
}
