//! The event-driven recovery drill (paper §7.3, Fig. 14).
//!
//! Reproduces the paper's measured failure-recovery timeline end to end on
//! the discrete-event engine: training iterations checkpoint every
//! iteration; worker agents heartbeat into the distributed KV store; a
//! failure is injected mid-iteration; the victim's health lease lapses;
//! the elected root agent detects the lapse on its scan (≈15 s), notifies
//! the alive agents to serialize their checkpoint replicas (≈162 s for
//! GPT-2 100B), requests a replacement machine for hardware failures
//! (4–7 min from the cloud operator, seconds from a standby), guides the
//! checkpoint retrieval per the recovery plan, and finally pays the
//! restart warm-up (>4 min) before training resumes.
//!
//! Root-machine failures are handled too: leadership passes through the KV
//! store's election once the old root's lease expires, and the new root
//! performs the detection.

use crate::scenario::{GeminiSystem, Scenario};
use gemini_cluster::{CloudOperator, FailureKind, OperatorConfig};
use gemini_core::agents::{RootAgent, WorkerAgent};
use gemini_core::recovery::{RecoveryCase, RecoveryPlan, RecoveryPlanner};
use gemini_core::GeminiError;
use gemini_kvstore::KvStore;
use gemini_sim::{Context, Engine, Model, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of one drill run.
#[derive(Clone, Debug)]
pub struct DrillConfig {
    /// The deployment.
    pub scenario: Scenario,
    /// Which ranks fail, with what kind, all at the same instant.
    pub failures: Vec<(usize, FailureKind)>,
    /// The iteration during which the failure strikes (1-based; the paper
    /// injects during iteration 4).
    pub fail_during_iteration: u64,
    /// Cloud-operator behaviour (standby machines etc.).
    pub operator: OperatorConfig,
    /// RNG seed.
    pub seed: u64,
}

impl DrillConfig {
    /// The paper's Fig. 14 run: GPT-2 100B, one hardware failure during
    /// iteration 4, no standby machines.
    pub fn fig14() -> DrillConfig {
        DrillConfig {
            scenario: Scenario::gpt2_100b_p4d(),
            failures: vec![(5, FailureKind::Hardware)],
            fail_during_iteration: 4,
            operator: OperatorConfig::default(),
            seed: 1,
        }
    }
}

/// The measured breakdown of one recovery (the Fig. 14 annotations).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DrillReport {
    /// When the failure struck.
    pub failed_at: SimTime,
    /// Failure-detection latency (failure → root notices the lapsed key).
    pub detect_latency: SimDuration,
    /// Checkpoint serialization time (`torch.save()` of the replicas).
    pub serialize_time: SimDuration,
    /// Wait for the replacement machine (zero for software failures;
    /// overlaps serialization).
    pub replacement_wait: SimDuration,
    /// Checkpoint retrieval time per the recovery plan.
    pub retrieval_time: SimDuration,
    /// Restart warm-up before training proceeds.
    pub warmup_time: SimDuration,
    /// Total downtime: failure → training resumed.
    pub total_downtime: SimDuration,
    /// Which recovery mechanism applied.
    pub case: RecoveryCase,
    /// The iteration training rolled back to.
    pub resumed_from_iteration: u64,
    /// The iteration the failure interrupted.
    pub failed_iteration: u64,
    /// Which rank ended up being the detecting root.
    pub detecting_root: String,
    /// The rendered event trace.
    pub trace: String,
}

#[derive(Debug)]
enum Ev {
    IterationDone(u64),
    Heartbeat(usize),
    CoordinationTick,
    InjectFailure,
    SerializeDone,
    ReplacementReady(usize),
    RetrievalDone,
    WarmupDone,
}

struct DrillModel {
    sys: GeminiSystem,
    kv: KvStore,
    workers: Vec<WorkerAgent>,
    roots: Vec<RootAgent>,
    operator: CloudOperator,
    failures: Vec<(usize, FailureKind)>,
    fail_during_iteration: u64,
    // progress state
    current_iteration: u64,
    training_blocked: bool,
    failed_at: Option<SimTime>,
    detected_at: Option<SimTime>,
    detecting_root: Option<String>,
    serialize_done: bool,
    serialize_started: Option<SimTime>,
    serialize_finished: Option<SimTime>,
    replacements_pending: usize,
    replacement_ready_at: Option<SimTime>,
    plan: Option<RecoveryPlan>,
    retrieval_started: Option<SimTime>,
    retrieval_finished: Option<SimTime>,
    resumed_at: Option<SimTime>,
    done: bool,
}

impl DrillModel {
    fn failed_ranks(&self) -> Vec<usize> {
        self.failures.iter().map(|(r, _)| *r).collect()
    }

    fn maybe_start_retrieval(&mut self, ctx: &mut Context<'_, Ev>) {
        if self.plan.is_some()
            || !self.serialize_done
            || self.replacements_pending > 0
            || self.detected_at.is_none()
        {
            return;
        }
        let planner = RecoveryPlanner;
        let plan = planner
            .plan(&self.sys.store, &self.failures)
            .expect("recovery must be plannable in the drill");
        // Retrieval: every rank fetches per its source, in parallel except
        // where they share a serving host (or the persistent pipe) — the
        // contention-aware makespan.
        let slowest = plan.retrieval_makespan(
            self.sys.scenario.ckpt_bytes_per_machine(),
            self.sys.scenario.machines,
            &self.sys.scenario.instance.ckpt_net_cost(),
            &self.sys.scenario.instance.copy_cost(),
            &self.sys.scenario.storage_cost(),
        );
        ctx.trace(|| {
            format!(
                "retrieval started: case {:?}, rollback to iteration {}",
                plan.case, plan.iteration
            )
        });
        self.retrieval_started = Some(ctx.now());
        self.plan = Some(plan);
        ctx.schedule_after(slowest, Ev::RetrievalDone);
    }
}

impl Model for DrillModel {
    type Event = Ev;

    fn handle(&mut self, ctx: &mut Context<'_, Ev>, event: Ev) {
        match event {
            Ev::IterationDone(i) => {
                if self.training_blocked || self.done {
                    return;
                }
                self.current_iteration = i;
                // Per-iteration checkpoint committed by iteration end.
                self.sys.store.record_complete(i);
                ctx.trace(|| format!("iteration {i} complete, checkpoint {i} committed"));
                ctx.schedule_after(self.sys.iteration_time(), Ev::IterationDone(i + 1));
            }
            Ev::Heartbeat(rank) => {
                let dead = self.failed_at.is_some()
                    && self.failed_ranks().contains(&rank)
                    && self.resumed_at.is_none();
                if dead || self.done {
                    return; // the process is gone; no more heartbeats
                }
                self.workers[rank]
                    .heartbeat(&mut self.kv, ctx.now())
                    .expect("heartbeat");
                ctx.schedule_after(
                    self.sys.scenario.config.heartbeat_period,
                    Ev::Heartbeat(rank),
                );
            }
            Ev::CoordinationTick => {
                if self.done {
                    return;
                }
                let now = ctx.now();
                // Every alive machine campaigns; the store arbitrates.
                let failed = self.failed_ranks();
                let resumed = self.resumed_at.is_some();
                for (rank, root) in self.roots.iter_mut().enumerate() {
                    let dead = self.failed_at.is_some() && failed.contains(&rank) && !resumed;
                    if !dead {
                        let _ = root.campaign(&mut self.kv, now);
                    }
                }
                // The current leader scans for lapsed health keys — but
                // only if the machine running it is itself alive (a dead
                // root's election key lingers until its lease expires).
                let n = self.sys.cluster.len();
                let leader = (0..self.roots.len()).find(|&rank| {
                    let dead = self.failed_at.is_some() && failed.contains(&rank) && !resumed;
                    !dead && self.roots[rank].is_leader(&mut self.kv, now)
                });
                if let Some(leader_rank) = leader {
                    let report = self.roots[leader_rank].scan(&mut self.kv, now, n);
                    if !report.missing.is_empty() && self.detected_at.is_none() {
                        self.detected_at = Some(now);
                        self.detecting_root = Some(self.roots[leader_rank].identity().to_string());
                        ctx.trace(|| {
                            format!(
                                "root {} detected failed ranks {:?}",
                                leader_rank, report.missing
                            )
                        });
                        // Notify alive agents to serialize the latest
                        // complete checkpoints (torch.save).
                        self.serialize_started = Some(now);
                        ctx.schedule_after(self.sys.serialize_time(), Ev::SerializeDone);
                        // Request replacements for hardware failures.
                        for &(rank, kind) in &self.failures.clone() {
                            if kind == FailureKind::Hardware {
                                self.sys
                                    .cluster
                                    .begin_replacement(rank)
                                    .expect("rank exists");
                                self.replacements_pending += 1;
                                let provision = self.operator.request_replacement(now, ctx.rng());
                                ctx.trace(|| {
                                    format!(
                                        "replacement for rank {rank} requested \
                                         (standby: {}, ready at {})",
                                        provision.from_standby, provision.ready_at
                                    )
                                });
                                ctx.schedule_at(provision.ready_at, Ev::ReplacementReady(rank));
                            }
                        }
                    }
                }
                ctx.schedule_after(SimDuration::from_secs(1), Ev::CoordinationTick);
            }
            Ev::InjectFailure => {
                self.failed_at = Some(ctx.now());
                self.training_blocked = true;
                for &(rank, kind) in &self.failures.clone() {
                    self.sys.cluster.fail(rank, kind).expect("rank exists");
                    if kind == FailureKind::Hardware {
                        self.sys.store.machine_lost(rank);
                    }
                    ctx.trace(|| format!("rank {rank} failed ({kind:?})"));
                }
            }
            Ev::SerializeDone => {
                self.serialize_done = true;
                self.serialize_finished = Some(ctx.now());
                ctx.trace(|| "checkpoint serialization finished".to_string());
                self.maybe_start_retrieval(ctx);
            }
            Ev::ReplacementReady(rank) => {
                self.sys
                    .cluster
                    .complete_replacement(rank, ctx.now())
                    .expect("rank was put in Replacing state at detection");
                self.replacements_pending = self.replacements_pending.saturating_sub(1);
                self.replacement_ready_at = Some(
                    self.replacement_ready_at
                        .unwrap_or(ctx.now())
                        .max(ctx.now()),
                );
                ctx.trace(|| format!("replacement machine for rank {rank} joined"));
                self.maybe_start_retrieval(ctx);
            }
            Ev::RetrievalDone => {
                self.retrieval_finished = Some(ctx.now());
                ctx.trace(|| "checkpoint retrieval finished".to_string());
                ctx.schedule_after(self.sys.scenario.config.restart_warmup, Ev::WarmupDone);
            }
            Ev::WarmupDone => {
                self.resumed_at = Some(ctx.now());
                self.training_blocked = false;
                // Restart software-failed ranks in place.
                for &(rank, kind) in &self.failures.clone() {
                    if kind == FailureKind::Software {
                        self.sys.cluster.restart(rank).expect("rank exists");
                    }
                }
                let resume_iter = self.plan.as_ref().expect("plan exists").iteration;
                ctx.trace(|| format!("training resumed from iteration {resume_iter}"));
                self.done = true;
                ctx.stop();
            }
        }
    }
}

/// Runs a drill and reports the recovery-time breakdown.
pub fn run_drill(config: &DrillConfig) -> Result<DrillReport, GeminiError> {
    let mut sys = config.scenario.build_system(config.seed)?;
    // Jobs start from a persisted initial checkpoint (iteration 0), which
    // is what the persistent-fallback path rolls back to if a whole
    // placement group is lost before the next 3-hour persist.
    sys.store.persist(0);
    let n = sys.cluster.len();
    for &(rank, _) in &config.failures {
        if rank >= n {
            return Err(GeminiError::UnknownRank(rank));
        }
    }
    let gcfg = sys.scenario.config;
    let iter_time = sys.iteration_time();
    let mut kv = KvStore::new();
    let mut workers: Vec<WorkerAgent> = (0..n)
        .map(|r| WorkerAgent::new(r, r as u64, gcfg))
        .collect();
    for w in workers.iter_mut() {
        w.register(&mut kv, SimTime::ZERO).expect("register");
    }
    let roots: Vec<RootAgent> = (0..n)
        .map(|r| RootAgent::new(&format!("machine-{r}"), &gcfg))
        .collect();

    let mut model = DrillModel {
        sys,
        kv,
        workers,
        roots,
        operator: CloudOperator::new(config.operator),
        failures: config.failures.clone(),
        fail_during_iteration: config.fail_during_iteration,
        current_iteration: 0,
        training_blocked: false,
        failed_at: None,
        detected_at: None,
        detecting_root: None,
        serialize_done: false,
        serialize_started: None,
        serialize_finished: None,
        replacements_pending: 0,
        replacement_ready_at: None,
        plan: None,
        retrieval_started: None,
        retrieval_finished: None,
        resumed_at: None,
        done: false,
    };

    let mut engine = Engine::new(config.seed).with_trace();
    engine.prime_at(SimTime::ZERO, Ev::CoordinationTick);
    for r in 0..n {
        engine.prime_after(gcfg.heartbeat_period, Ev::Heartbeat(r));
    }
    engine.prime_after(iter_time, Ev::IterationDone(1));
    // The failure strikes halfway through the configured iteration.
    let fail_at = SimTime::ZERO
        + SimDuration::from_secs_f64(
            iter_time.as_secs_f64() * (config.fail_during_iteration as f64 - 0.5),
        );
    engine.prime_at(fail_at, Ev::InjectFailure);

    engine.run(&mut model, Some(SimTime::from_hours(6)), 10_000_000);

    let failed_at = model.failed_at.ok_or(GeminiError::NoCheckpointAvailable)?;
    let detected_at = model
        .detected_at
        .ok_or(GeminiError::NoCheckpointAvailable)?;
    let resumed_at = model.resumed_at.ok_or(GeminiError::NoCheckpointAvailable)?;
    let plan = model.plan.as_ref().expect("plan exists if resumed");
    let serialize_time = model
        .serialize_finished
        .zip(model.serialize_started)
        .map(|(e, s)| e - s)
        .unwrap_or(SimDuration::ZERO);
    let replacement_wait = model
        .replacement_ready_at
        .map(|t| t - detected_at)
        .unwrap_or(SimDuration::ZERO);
    let retrieval_time = model
        .retrieval_finished
        .zip(model.retrieval_started)
        .map(|(e, s)| e - s)
        .unwrap_or(SimDuration::ZERO);
    Ok(DrillReport {
        failed_at,
        detect_latency: detected_at - failed_at,
        serialize_time,
        replacement_wait,
        retrieval_time,
        warmup_time: model.sys.scenario.config.restart_warmup,
        total_downtime: resumed_at - failed_at,
        case: plan.case,
        resumed_from_iteration: plan.iteration,
        failed_iteration: model.fail_during_iteration,
        detecting_root: model.detecting_root.clone().unwrap_or_default(),
        trace: engine.trace().render(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_hardware_failure_breakdown() {
        let report = run_drill(&DrillConfig::fig14()).unwrap();
        // Detection ≈ 15 s (TTL bound; ±heartbeat and scan granularity).
        let d = report.detect_latency.as_secs_f64();
        assert!((10.0..=17.0).contains(&d), "detect = {d:.1}s");
        // Serialization ≈ 162 s.
        let s = report.serialize_time.as_secs_f64();
        assert!((s - 161.3).abs() < 3.0, "serialize = {s:.1}s");
        // Replacement 4–7 min.
        let r = report.replacement_wait.as_secs_f64() / 60.0;
        assert!((4.0..=7.1).contains(&r), "replacement = {r:.1} min");
        // Retrieval from a peer's CPU memory: seconds.
        assert!(report.retrieval_time.as_secs_f64() < 5.0);
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        // Rolled back to the checkpoint of iteration 3.
        assert_eq!(report.resumed_from_iteration, 3);
        // Total ≈ 12 min for hardware failures (§7.3).
        let total = report.total_downtime.as_secs_f64() / 60.0;
        assert!((9.0..=14.0).contains(&total), "total = {total:.1} min");
    }

    #[test]
    fn software_failure_recovers_in_about_7_minutes() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(5, FailureKind::Software)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::SoftwareLocal);
        assert_eq!(report.replacement_wait, SimDuration::ZERO);
        // §7.3: "around 7 minutes for software failures":
        // 15 s detect + 162 s serialize + ~2 s retrieval + 250 s warmup.
        let total = report.total_downtime.as_secs_f64() / 60.0;
        assert!((6.0..=8.5).contains(&total), "total = {total:.1} min");
    }

    #[test]
    fn standby_machines_shrink_hardware_recovery() {
        let mut cfg = DrillConfig::fig14();
        cfg.operator = OperatorConfig::with_standbys(2);
        let with_standby = run_drill(&cfg).unwrap();
        let without = run_drill(&DrillConfig::fig14()).unwrap();
        assert!(with_standby.total_downtime < without.total_downtime);
        assert!(with_standby.replacement_wait.as_secs_f64() < 40.0);
    }

    #[test]
    fn root_machine_failure_fails_over() {
        // Rank 0 runs the initial root; killing it must elect another
        // machine, which then performs the detection.
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(0, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_ne!(report.detecting_root, "machine-0");
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        // Failover costs one extra TTL at worst.
        assert!(report.detect_latency.as_secs_f64() <= 35.0);
    }

    #[test]
    fn group_loss_falls_back_to_persistent_storage() {
        let mut cfg = DrillConfig::fig14();
        // Ranks 0 and 1 form placement group 0 (m = 2): losing both wipes
        // every CPU replica of their shards.
        cfg.failures = vec![(0, FailureKind::Hardware), (1, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::PersistentFallback);
        // Rolls all the way back to the persisted initial checkpoint,
        // losing every iteration since — the "GEMINI degrades to Strawman"
        // case of §7.2.
        assert_eq!(report.resumed_from_iteration, 0);
        // Persistent retrieval is minutes, not seconds.
        assert!(report.retrieval_time.as_secs_f64() > 60.0);
    }

    #[test]
    fn cross_group_double_failure_recovers_from_cpu() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(2, FailureKind::Hardware), (5, FailureKind::Hardware)];
        let report = run_drill(&cfg).unwrap();
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert_eq!(report.resumed_from_iteration, 3);
    }

    #[test]
    fn trace_contains_the_milestones() {
        let report = run_drill(&DrillConfig::fig14()).unwrap();
        for needle in [
            "failed (Hardware)",
            "detected failed ranks",
            "serialization finished",
            "replacement machine",
            "retrieval finished",
            "training resumed",
        ] {
            assert!(
                report.trace.contains(needle),
                "trace missing {needle:?}:\n{}",
                report.trace
            );
        }
    }

    #[test]
    fn unknown_rank_rejected() {
        let mut cfg = DrillConfig::fig14();
        cfg.failures = vec![(99, FailureKind::Software)];
        assert!(run_drill(&cfg).is_err());
    }
}
