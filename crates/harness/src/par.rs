//! Harness-side glue for the deterministic parallel executor
//! ([`gemini_parallel`]): job-count resolution plus telemetry recording of
//! the `parallel.*` metric family.
//!
//! # Determinism contract
//!
//! Everything the harness parallelizes (figure regeneration, campaign
//! sweeps, Monte-Carlo shards, DES sweeps) is expressed as an indexed task
//! set whose per-task results depend only on the task index and the
//! caller's configuration — never on scheduling. Results merge by index,
//! so markdown/CSV/JSON artifacts and telemetry exports are byte-identical
//! across `--jobs` counts. See `docs/PERFORMANCE.md`.
//!
//! # Telemetry split
//!
//! * [`record_stats`] records only the **deterministic** part of the pool
//!   statistics (`parallel.tasks`, a counter): safe for exports that are
//!   compared byte-for-byte across runs and job counts.
//! * [`record_stats_timing`] additionally records the **wall-clock** part
//!   (`parallel.jobs`, `parallel.speedup`, `parallel.wall_us` gauges).
//!   Only perf-reporting paths (the `perf` bin behind `BENCH_harness.json`)
//!   opt into it, precisely because wall-clock is not deterministic.

pub use gemini_parallel::{
    default_jobs, host_parallelism, par_map, par_map_cost, par_map_stats, par_map_stats_cost,
    resolve_jobs, set_default_jobs, shard_ranges, try_par_map, ParStats, TaskCost,
};

use gemini_telemetry::TelemetrySink;

/// Records the deterministic pool statistics: `parallel.tasks` (counter,
/// total tasks executed through the pool). Identical at every `--jobs`
/// value, so byte-compared exports stay stable.
pub fn record_stats(sink: &TelemetrySink, stats: &ParStats) {
    if sink.is_enabled() {
        sink.counter_add("parallel.tasks", stats.tasks as u64);
    }
}

/// Records the full pool statistics, including wall-clock-derived gauges
/// (`parallel.jobs`, `parallel.speedup`, `parallel.wall_us`,
/// `parallel.busy_us`). **Not** byte-stable across runs — reserved for
/// perf-trajectory reporting, never for determinism-compared exports.
pub fn record_stats_timing(sink: &TelemetrySink, stats: &ParStats) {
    record_stats(sink, stats);
    if sink.is_enabled() {
        sink.gauge_set("parallel.jobs", || stats.jobs as f64);
        sink.gauge_set("parallel.speedup", || stats.speedup());
        sink.gauge_set("parallel.wall_us", || stats.wall.as_secs_f64() * 1e6);
        sink.gauge_set("parallel.busy_us", || stats.busy.as_secs_f64() * 1e6);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stats() -> ParStats {
        ParStats {
            tasks: 21,
            jobs: 4,
            requested: 4,
            wall: Duration::from_micros(500),
            busy: Duration::from_micros(1500),
        }
    }

    #[test]
    fn deterministic_recording_only_touches_counters() {
        let sink = TelemetrySink::enabled();
        record_stats(&sink, &stats());
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("parallel.tasks")),
            21
        );
        assert_eq!(
            snap.gauge(gemini_telemetry::Key::plain("parallel.jobs")),
            None
        );
    }

    #[test]
    fn timing_recording_adds_wall_clock_gauges() {
        let sink = TelemetrySink::enabled();
        record_stats_timing(&sink, &stats());
        let snap = sink.metrics_snapshot();
        assert_eq!(
            snap.counter(gemini_telemetry::Key::plain("parallel.tasks")),
            21
        );
        assert_eq!(
            snap.gauge(gemini_telemetry::Key::plain("parallel.jobs")),
            Some(4.0)
        );
        let speedup = snap
            .gauge(gemini_telemetry::Key::plain("parallel.speedup"))
            .unwrap();
        assert!((speedup - 3.0).abs() < 1e-9, "speedup = {speedup}");
    }

    #[test]
    fn disabled_sink_is_free() {
        let sink = TelemetrySink::disabled();
        record_stats_timing(&sink, &stats());
        assert!(!sink.is_enabled());
    }
}
