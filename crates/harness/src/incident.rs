//! Incident stitching, critical-path analysis and wasted-time attribution
//! over the chaos flight recorder.
//!
//! [`crate::chaos`] narrates every recovery as [`CausalEvent`]s sharing an
//! incident id (the wave index). This module turns that flat trace into:
//!
//! * [`Incident`] records — one per wave, with the causal timestamps
//!   (injected → confirmed → wave opened → serialize done → replacements
//!   ready → retrieval → resumed) stitched back together;
//! * a **critical path** per incident over the causal DAG: serialization
//!   and machine replacement run concurrently after detection, so the path
//!   keeps whichever leg actually gated retrieval, then retrieve → warmup
//!   (→ rework when progress was rolled back);
//! * an **attribution table** assigning every nanosecond of the run's
//!   [`WastedLedger`] to an `(incident, phase, machine-group,
//!   policy-epoch)` key. The downtime phases partition each incident's
//!   detect→resume window exactly (telescoping timestamps), rework rows
//!   reuse the exact value charged by the model, and overhead rows mirror
//!   each persist charge — so [`WastedLedger::check_attribution`] holds to
//!   the nanosecond or the analysis reports a mismatch.
//!
//! Everything is derived from `ChaosReport::trace` (model-side state), so
//! the analysis is identical with the sink on or off and byte-identical
//! across `--jobs`. [`record_sink_artifacts`] additionally projects the
//! analysis into an enabled sink *after* the run: `incident.*` /
//! `critical_path.*` metrics, per-phase spans and a chrome-trace flow lane
//! (incidents render as arrows in `chrome://tracing`).

use crate::chaos::ChaosReport;
use crate::report::Table;
use gemini_sim::{SimDuration, SimTime};
use gemini_telemetry::export::escape_json;
use gemini_telemetry::{intern_label, CausalKind, FlowPhase, Key, Phase, TelemetrySink};
use std::collections::BTreeMap;

/// Bucket bounds (µs) for the per-plan `chaos.detection_latency_us`
/// histogram. Detection is bounded by one heartbeat period (5 s) + the
/// health-key TTL (15 s) + the confirmation streak (7 × 1 s scans) plus
/// scan alignment, so the interesting range is seconds-scale.
pub const DETECTION_LATENCY_BOUNDS_US: &[u64] = &[
    5_000_000,
    10_000_000,
    15_000_000,
    20_000_000,
    25_000_000,
    30_000_000,
    60_000_000,
    120_000_000,
];

/// Bucket bounds (µs) for recovery-phase and incident-downtime
/// histograms: recovery phases run seconds to an hour (replacement
/// exhaustion backs off for a long time).
pub const RECOVERY_PHASE_BOUNDS_US: &[u64] = &[
    1_000_000,
    5_000_000,
    15_000_000,
    30_000_000,
    60_000_000,
    120_000_000,
    300_000_000,
    600_000_000,
    1_800_000_000,
    3_600_000_000,
];

/// One stitched recovery incident: a wave's causal timestamps rebuilt
/// from the flight-recorder trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Incident {
    /// The incident id (the wave index).
    pub id: u64,
    /// Every rank the wave handled (open + merges), sorted.
    pub ranks: Vec<usize>,
    /// Machine-group label: `g<N>` when every rank shares one placement
    /// group, `multi` otherwise.
    pub group: String,
    /// The policy epoch (applied-decision count) at detection.
    pub policy_epoch: u64,
    /// Earliest fault injection adopted by the wave.
    pub injected_at: Option<SimTime>,
    /// When the wave opened (detection).
    pub detected_at: Option<SimTime>,
    /// When the (final, post-merge) serialization finished.
    pub serialize_done_at: Option<SimTime>,
    /// When the last replacement machine joined, if any were needed.
    pub replace_done_at: Option<SimTime>,
    /// When retrieval started.
    pub retrieval_started_at: Option<SimTime>,
    /// When retrieval finished.
    pub retrieval_done_at: Option<SimTime>,
    /// When training resumed (closes the incident).
    pub resumed_at: Option<SimTime>,
    /// Worst per-rank injection→confirmation latency.
    pub detection_latency: SimDuration,
    /// `Debug` form of the recovery case.
    pub case: String,
    /// The iteration all ranks rolled back to.
    pub rollback_to: u64,
    /// Exact re-training cost charged to the ledger.
    pub rework: SimDuration,
    /// Retrieval sources per tier: (local, remote, persistent).
    pub tiers: (usize, usize, usize),
}

impl Incident {
    fn empty(id: u64) -> Incident {
        Incident {
            id,
            ranks: Vec::new(),
            group: String::new(),
            policy_epoch: 0,
            injected_at: None,
            detected_at: None,
            serialize_done_at: None,
            replace_done_at: None,
            retrieval_started_at: None,
            retrieval_done_at: None,
            resumed_at: None,
            detection_latency: SimDuration::ZERO,
            case: String::new(),
            rollback_to: 0,
            rework: SimDuration::ZERO,
            tiers: (0, 0, 0),
        }
    }

    /// Whether the incident ran to completion (training resumed). Only
    /// complete incidents contribute to the ledger, and only they carry
    /// attribution rows.
    pub fn is_complete(&self) -> bool {
        self.detected_at.is_some()
            && self.serialize_done_at.is_some()
            && self.retrieval_started_at.is_some()
            && self.retrieval_done_at.is_some()
            && self.resumed_at.is_some()
    }

    /// Detection→resume downtime (zero while incomplete). Matches the
    /// wave's [`gemini_core::WastedLedger`] contribution exactly.
    pub fn downtime(&self) -> SimDuration {
        match (self.detected_at, self.resumed_at) {
            (Some(d), Some(r)) => r.saturating_since(d),
            _ => SimDuration::ZERO,
        }
    }

    /// The wall-clock phase partition: Detect plus the four downtime
    /// phases whose durations telescope to exactly
    /// [`Incident::downtime`]. `None` while incomplete.
    pub fn phase_durations(&self) -> Option<Vec<(Phase, SimDuration)>> {
        let detected = self.detected_at?;
        let serialized = self.serialize_done_at?;
        let retrieval_started = self.retrieval_started_at?;
        let retrieval_done = self.retrieval_done_at?;
        let resumed = self.resumed_at?;
        let injected = self.injected_at.unwrap_or(detected);
        Some(vec![
            (Phase::Detect, detected.saturating_since(injected)),
            (Phase::Serialize, serialized.saturating_since(detected)),
            (Phase::Replace, retrieval_started.saturating_since(serialized)),
            (Phase::Retrieve, retrieval_done.saturating_since(retrieval_started)),
            (Phase::Warmup, resumed.saturating_since(retrieval_done)),
        ])
    }

    /// The critical path over the causal DAG. Serialization and machine
    /// replacement run concurrently after detection and retrieval waits
    /// on both, so the path keeps whichever leg finished *last* (charged
    /// with the whole detection→retrieval-start gap), then retrieve and
    /// warmup, then rework when progress was rolled back. Empty while
    /// incomplete.
    pub fn critical_path(&self) -> Vec<(Phase, SimDuration)> {
        let (Some(detected), Some(serialized), Some(retrieval_started)) = (
            self.detected_at,
            self.serialize_done_at,
            self.retrieval_started_at,
        ) else {
            return Vec::new();
        };
        let (Some(retrieval_done), Some(resumed)) =
            (self.retrieval_done_at, self.resumed_at)
        else {
            return Vec::new();
        };
        let injected = self.injected_at.unwrap_or(detected);
        let replace_gated = self
            .replace_done_at
            .is_some_and(|done| done > serialized);
        let gate = if replace_gated {
            Phase::Replace
        } else {
            Phase::Serialize
        };
        let mut path = vec![
            (Phase::Detect, detected.saturating_since(injected)),
            (gate, retrieval_started.saturating_since(detected)),
            (
                Phase::Retrieve,
                retrieval_done.saturating_since(retrieval_started),
            ),
            (Phase::Warmup, resumed.saturating_since(retrieval_done)),
        ];
        if !self.rework.is_zero() {
            path.push((Phase::Rework, self.rework));
        }
        path
    }

    /// The phase that bounded end-to-end recovery: the longest leg of the
    /// critical path (earliest wins ties). `None` while incomplete.
    pub fn bounding_phase(&self) -> Option<Phase> {
        let path = self.critical_path();
        let mut best: Option<(Phase, SimDuration)> = None;
        for (p, d) in path {
            if best.map_or(true, |(_, bd)| d > bd) {
                best = Some((p, d));
            }
        }
        best.map(|(p, _)| p)
    }
}

/// One attribution row: `amount` of wasted time charged to an
/// `(incident, phase, machine-group, policy-epoch)` key. `incident` is
/// `None` for background overhead (persist charges).
#[derive(Clone, Debug, PartialEq)]
pub struct AttributionRow {
    /// The incident charged, or `None` for background overhead.
    pub incident: Option<u64>,
    /// The phase charged.
    pub phase: Phase,
    /// The incident's machine-group label (`all` for background rows).
    pub group: String,
    /// The policy epoch in force.
    pub policy_epoch: u64,
    /// The exact amount charged.
    pub amount: SimDuration,
}

/// The complete flight-recorder analysis of one chaos run.
#[derive(Clone, Debug, PartialEq)]
pub struct IncidentAnalysis {
    /// Stitched incidents, by id.
    pub incidents: Vec<Incident>,
    /// Every attribution row, incident-major then background overhead.
    pub rows: Vec<AttributionRow>,
    /// Attributed sums per ledger category: (rework, downtime, overhead).
    pub attributed: (SimDuration, SimDuration, SimDuration),
    /// Ledger-vs-attribution mismatches as
    /// `(category, ledger_amount, attributed_amount)`; empty ⇔ the
    /// invariant holds exactly.
    pub mismatches: Vec<(&'static str, SimDuration, SimDuration)>,
}

impl IncidentAnalysis {
    /// Whether the attribution invariant holds to the nanosecond.
    pub fn attribution_exact(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Stitches the flat causal trace back into per-wave [`Incident`]s.
pub fn stitch(report: &ChaosReport) -> Vec<Incident> {
    let mut map: BTreeMap<u64, Incident> = BTreeMap::new();
    for ev in &report.trace {
        let Some(id) = ev.incident else {
            continue; // background event (policy decision / persist charge)
        };
        let inc = map.entry(id).or_insert_with(|| Incident::empty(id));
        match &ev.kind {
            CausalKind::FaultInjected { .. } => {
                inc.injected_at = Some(match inc.injected_at {
                    Some(t) => t.min(ev.at),
                    None => ev.at,
                });
            }
            CausalKind::Confirmed { latency, .. } => {
                inc.detection_latency = inc.detection_latency.max(*latency);
            }
            CausalKind::WaveOpened {
                ranks,
                group,
                policy_epoch,
            } => {
                inc.detected_at = Some(ev.at);
                inc.ranks = ranks.clone();
                inc.group = group.clone();
                inc.policy_epoch = *policy_epoch;
            }
            CausalKind::WaveMerged { ranks, group } => {
                for r in ranks {
                    if !inc.ranks.contains(r) {
                        inc.ranks.push(*r);
                    }
                }
                inc.ranks.sort_unstable();
                if *group != inc.group {
                    inc.group = "multi".to_string();
                }
            }
            // Merges restart serialization; the last (valid) completion
            // wins, which is exactly the one retrieval waited on.
            CausalKind::SerializeDone => inc.serialize_done_at = Some(ev.at),
            CausalKind::ReplacementReady { .. } => {
                inc.replace_done_at = Some(match inc.replace_done_at {
                    Some(t) => t.max(ev.at),
                    None => ev.at,
                });
            }
            CausalKind::RetrievalStarted {
                case,
                rollback_to,
                local,
                remote,
                persistent,
            } => {
                inc.retrieval_started_at = Some(ev.at);
                inc.case = case.clone();
                inc.rollback_to = *rollback_to;
                inc.tiers = (*local, *remote, *persistent);
            }
            CausalKind::TierRead { .. } => {}
            CausalKind::RetrievalDone => inc.retrieval_done_at = Some(ev.at),
            CausalKind::RolledBack { rework, .. } => inc.rework = *rework,
            CausalKind::Resumed { .. } => inc.resumed_at = Some(ev.at),
            CausalKind::PolicyDecision { .. } | CausalKind::PersistCharged { .. } => {}
        }
    }
    map.into_values().collect()
}

/// Stitches incidents, builds the attribution table and checks it against
/// the run's [`gemini_core::WastedLedger`] — exactly.
pub fn analyze(report: &ChaosReport) -> IncidentAnalysis {
    let incidents = stitch(report);
    let mut rows = Vec::new();
    let mut rework_sum = SimDuration::ZERO;
    let mut downtime_sum = SimDuration::ZERO;
    let mut overhead_sum = SimDuration::ZERO;
    for inc in &incidents {
        let Some(phases) = inc.phase_durations() else {
            continue; // incomplete: never reached the ledger either
        };
        // Skip Detect: the ledger's downtime window starts at detection.
        for &(phase, amount) in phases.iter().skip(1) {
            downtime_sum = downtime_sum.saturating_add(amount);
            rows.push(AttributionRow {
                incident: Some(inc.id),
                phase,
                group: inc.group.clone(),
                policy_epoch: inc.policy_epoch,
                amount,
            });
        }
        rework_sum = rework_sum.saturating_add(inc.rework);
        rows.push(AttributionRow {
            incident: Some(inc.id),
            phase: Phase::Rework,
            group: inc.group.clone(),
            policy_epoch: inc.policy_epoch,
            amount: inc.rework,
        });
    }
    for ev in &report.trace {
        if let CausalKind::PersistCharged { amount, epoch } = &ev.kind {
            overhead_sum = overhead_sum.saturating_add(*amount);
            rows.push(AttributionRow {
                incident: None,
                phase: Phase::Overhead,
                group: "all".to_string(),
                policy_epoch: *epoch,
                amount: *amount,
            });
        }
    }
    let mismatches = report
        .wasted
        .check_attribution(rework_sum, downtime_sum, overhead_sum)
        .err()
        .unwrap_or_default();
    IncidentAnalysis {
        incidents,
        rows,
        attributed: (rework_sum, downtime_sum, overhead_sum),
        mismatches,
    }
}

/// Deterministic plain-text summary lines appended to
/// [`ChaosReport::render`], so the existing byte-identity invariants
/// cover the derived analysis too.
pub fn render_summary(report: &ChaosReport) -> Vec<String> {
    let analysis = analyze(report);
    let mut out = Vec::new();
    for inc in &analysis.incidents {
        if !inc.is_complete() {
            out.push(format!(
                "incident {}: incomplete (no resume before the horizon)",
                inc.id
            ));
            continue;
        }
        let path = inc
            .critical_path()
            .iter()
            .map(|(p, d)| format!("{}:{:.3}s", p.label(), d.as_secs_f64()))
            .collect::<Vec<_>>()
            .join(" > ");
        let bounded = inc
            .bounding_phase()
            .map_or("-", |p| p.label());
        out.push(format!(
            "incident {}: ranks={:?} group={} epoch={} case={} \
             detect_latency={:.3}s downtime={:.3}s rework={:.3}s \
             critical_path=[{path}] bounded_by={bounded}",
            inc.id,
            inc.ranks,
            inc.group,
            inc.policy_epoch,
            inc.case,
            inc.detection_latency.as_secs_f64(),
            inc.downtime().as_secs_f64(),
            inc.rework.as_secs_f64(),
        ));
    }
    if analysis.attribution_exact() {
        out.push(format!(
            "attribution: exact rework={:.3}s downtime={:.3}s overhead={:.3}s rows={}",
            analysis.attributed.0.as_secs_f64(),
            analysis.attributed.1.as_secs_f64(),
            analysis.attributed.2.as_secs_f64(),
            analysis.rows.len(),
        ));
    } else {
        for (name, ledger, attributed) in &analysis.mismatches {
            out.push(format!(
                "attribution: MISMATCH {name} ledger={}ns attributed={}ns",
                ledger.as_nanos(),
                attributed.as_nanos(),
            ));
        }
    }
    out
}

/// The human-readable postmortem table for one run: one row per incident
/// with its phase breakdown and bounding phase.
pub fn postmortem(report: &ChaosReport) -> Table {
    let analysis = analyze(report);
    let mut t = Table::new(
        &format!("Postmortem — {} seed {}", report.plan_name, report.seed),
        &[
            "incident",
            "ranks",
            "group",
            "epoch",
            "case",
            "detect_s",
            "serialize_s",
            "replace_s",
            "retrieve_s",
            "warmup_s",
            "downtime_s",
            "rework_s",
            "bounded_by",
        ],
    );
    for inc in &analysis.incidents {
        let Some(phases) = inc.phase_durations() else {
            t.push(vec![
                inc.id.to_string(),
                format!("{:?}", inc.ranks),
                inc.group.clone(),
                inc.policy_epoch.to_string(),
                "incomplete".to_string(),
            ]);
            continue;
        };
        let mut row = vec![
            inc.id.to_string(),
            format!("{:?}", inc.ranks),
            inc.group.clone(),
            inc.policy_epoch.to_string(),
            inc.case.clone(),
        ];
        for &(_, d) in &phases {
            row.push(crate::report::secs(d.as_secs_f64()));
        }
        row.push(crate::report::secs(inc.downtime().as_secs_f64()));
        row.push(crate::report::secs(inc.rework.as_secs_f64()));
        row.push(inc.bounding_phase().map_or("-", |p| p.label()).to_string());
        t.push(row);
    }
    t
}

/// The attribution table for one run: one row per `(incident, phase,
/// group, epoch)` charge.
pub fn attribution_table(report: &ChaosReport) -> Table {
    let analysis = analyze(report);
    let mut t = Table::new(
        &format!(
            "Wasted-time attribution — {} seed {}",
            report.plan_name, report.seed
        ),
        &["incident", "phase", "group", "epoch", "seconds"],
    );
    for row in &analysis.rows {
        t.push(vec![
            row.incident.map_or("-".to_string(), |i| i.to_string()),
            row.phase.label().to_string(),
            row.group.clone(),
            row.policy_epoch.to_string(),
            format!("{:.9}", row.amount.as_secs_f64()),
        ]);
    }
    t
}

fn json_secs(d: SimDuration) -> String {
    format!("{:.9}", d.as_secs_f64())
}

/// Hand-rolled per-run incident JSON (the serde stub in the offline
/// harness cannot serialize arbitrary types, so this module renders its
/// own — deterministically).
pub fn incidents_json(report: &ChaosReport) -> String {
    let analysis = analyze(report);
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"plan\": \"{}\",\n  \"seed\": {},\n",
        escape_json(&report.plan_name),
        report.seed
    ));
    out.push_str("  \"incidents\": [");
    for (i, inc) in analysis.incidents.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {");
        out.push_str(&format!(
            "\"id\": {}, \"ranks\": {:?}, \"group\": \"{}\", \"epoch\": {}, \
             \"case\": \"{}\", \"rollback_to\": {}, \"complete\": {}, \
             \"detection_latency_s\": {}, \"downtime_s\": {}, \"rework_s\": {}, \
             \"tiers\": {{\"local\": {}, \"remote\": {}, \"persistent\": {}}}",
            inc.id,
            inc.ranks,
            escape_json(&inc.group),
            inc.policy_epoch,
            escape_json(&inc.case),
            inc.rollback_to,
            inc.is_complete(),
            json_secs(inc.detection_latency),
            json_secs(inc.downtime()),
            json_secs(inc.rework),
            inc.tiers.0,
            inc.tiers.1,
            inc.tiers.2,
        ));
        if let Some(phases) = inc.phase_durations() {
            out.push_str(", \"phases\": {");
            for (j, (p, d)) in phases.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", p.label(), json_secs(*d)));
            }
            out.push('}');
            out.push_str(", \"critical_path\": [");
            for (j, (p, d)) in inc.critical_path().iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!(
                    "{{\"phase\": \"{}\", \"seconds\": {}}}",
                    p.label(),
                    json_secs(*d)
                ));
            }
            out.push(']');
            out.push_str(&format!(
                ", \"bounding_phase\": \"{}\"",
                inc.bounding_phase().map_or("-", |p| p.label())
            ));
        }
        out.push('}');
    }
    out.push_str("\n  ],\n");
    out.push_str("  \"attribution\": [");
    for (i, row) in analysis.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"incident\": {}, \"phase\": \"{}\", \"group\": \"{}\", \
             \"epoch\": {}, \"seconds\": {}}}",
            row.incident
                .map_or("null".to_string(), |v| v.to_string()),
            row.phase.label(),
            escape_json(&row.group),
            row.policy_epoch,
            json_secs(row.amount),
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"ledger\": {{\"rework_s\": {}, \"downtime_s\": {}, \"overhead_s\": {}, \
         \"total_s\": {}}},\n",
        json_secs(report.wasted.rework),
        json_secs(report.wasted.downtime),
        json_secs(report.wasted.overhead),
        json_secs(report.wasted.total()),
    ));
    out.push_str(&format!(
        "  \"attribution_exact\": {}\n}}\n",
        analysis.attribution_exact()
    ));
    out
}

/// Projects a finished run's flight-recorder analysis into an enabled
/// sink: mirrors the trace into the sink's ring buffer, emits `incident.*`
/// / `critical_path.*` / `incident.downtime_us` metrics, per-phase spans
/// on the `incident` track, and a chrome-trace flow lane so each incident
/// renders as an arrow chain (injected → detected → retrieval → resumed)
/// in `chrome://tracing`. No-op on a disabled sink; runs *after* the
/// simulation so it can never perturb model execution.
pub fn record_sink_artifacts(report: &ChaosReport, sink: &TelemetrySink) {
    if !sink.is_enabled() {
        return;
    }
    for ev in &report.trace {
        sink.causal(|| ev.clone());
    }
    let cell = intern_label(&format!("{}:{}", report.plan_name, report.seed));
    let analysis = analyze(report);
    for inc in &analysis.incidents {
        sink.counter_add_key(Key::labeled("incident.count", "cell", cell), 1);
        let name = format!("incident-{}", inc.id);
        let (Some(detected), Some(resumed)) = (inc.detected_at, inc.resumed_at) else {
            sink.counter_add_key(Key::labeled("incident.incomplete", "cell", cell), 1);
            continue;
        };
        sink.span("incident", || name.clone(), detected, resumed);
        if let Some(phases) = inc.phase_durations() {
            let mut cursor = inc.injected_at.unwrap_or(detected);
            for (phase, d) in phases {
                let end = cursor + d;
                if !d.is_zero() {
                    let label = format!("{name}/{}", phase.label());
                    sink.span("incident", || label.clone(), cursor, end);
                }
                cursor = end;
            }
        }
        let injected = inc.injected_at.unwrap_or(detected);
        sink.flow("incident", || name.clone(), inc.id, injected, FlowPhase::Start);
        sink.flow("incident", || name.clone(), inc.id, detected, FlowPhase::Step);
        if let Some(rs) = inc.retrieval_started_at {
            sink.flow("incident", || name.clone(), inc.id, rs, FlowPhase::Step);
        }
        sink.flow("incident", || name.clone(), inc.id, resumed, FlowPhase::End);
        sink.observe_us_key(
            Key::labeled("incident.downtime_us", "cell", cell),
            RECOVERY_PHASE_BOUNDS_US,
            || inc.downtime().as_nanos() / 1_000,
        );
        if let Some(bounding) = inc.bounding_phase() {
            sink.counter_add_key(
                Key::labeled("incident.bounding_phase", "phase", bounding.label()),
                1,
            );
        }
        for (phase, d) in inc.critical_path() {
            sink.observe_us_key(
                Key::labeled("critical_path.phase_us", "phase", phase.label()),
                RECOVERY_PHASE_BOUNDS_US,
                || d.as_nanos() / 1_000,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosPlan;
    use crate::Scenario;

    #[test]
    fn stitched_incident_partitions_its_downtime_exactly() {
        let report = Scenario::chaos(ChaosPlan::kill_mid_checkpoint())
            .seed(1)
            .run()
            .unwrap();
        let analysis = analyze(&report);
        assert_eq!(analysis.incidents.len(), 1);
        let inc = &analysis.incidents[0];
        assert!(inc.is_complete());
        assert_eq!(inc.ranks, vec![5]);
        assert!(inc.group.starts_with('g'), "group = {}", inc.group);
        let phases = inc.phase_durations().unwrap();
        let downtime_phases: SimDuration = phases
            .iter()
            .skip(1)
            .fold(SimDuration::ZERO, |acc, &(_, d)| acc.saturating_add(d));
        assert_eq!(downtime_phases, inc.downtime());
        assert_eq!(inc.downtime(), report.wasted.downtime);
        assert!(
            analysis.attribution_exact(),
            "mismatches: {:?}",
            analysis.mismatches
        );
        assert_eq!(analysis.attributed.0, report.wasted.rework);
    }

    #[test]
    fn replacement_exhaustion_is_bounded_by_the_replace_leg() {
        // The operator outage stalls replacement far past serialization,
        // so the critical path must route through Replace.
        let report = Scenario::chaos(ChaosPlan::replacement_exhaustion())
            .seed(5)
            .run()
            .unwrap();
        let analysis = analyze(&report);
        let inc = analysis
            .incidents
            .iter()
            .find(|i| i.is_complete())
            .expect("a complete incident");
        assert!(inc.replace_done_at.is_some());
        assert!(inc
            .critical_path()
            .iter()
            .any(|&(p, _)| p == Phase::Replace));
        assert!(!inc
            .critical_path()
            .iter()
            .any(|&(p, _)| p == Phase::Serialize));
    }

    #[test]
    fn every_catalog_plan_attributes_exactly() {
        for plan in ChaosPlan::catalog() {
            let report = Scenario::chaos(plan.clone()).seed(1).run().unwrap();
            let analysis = analyze(&report);
            assert!(
                !analysis.incidents.is_empty(),
                "plan {} produced no incidents",
                plan.name
            );
            assert!(
                analysis.attribution_exact(),
                "plan {}: {:?}",
                plan.name,
                analysis.mismatches
            );
            assert_eq!(
                analysis.incidents.iter().filter(|i| i.is_complete()).count() as u64,
                report.wasted.failures,
                "plan {}: complete incidents must match ledger failures",
                plan.name
            );
        }
    }

    #[test]
    fn incidents_json_is_deterministic_and_balanced() {
        let report = Scenario::chaos(ChaosPlan::correlated_group_loss())
            .seed(2)
            .run()
            .unwrap();
        let a = incidents_json(&report);
        let b = incidents_json(&report);
        assert_eq!(a, b);
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "unbalanced JSON:\n{a}"
        );
        assert!(a.contains("\"attribution_exact\": true"), "{a}");
        let table = postmortem(&report);
        assert_eq!(table.headers.len(), 13);
        assert!(!table.rows.is_empty());
        assert!(!attribution_table(&report).rows.is_empty());
    }

    #[test]
    fn sink_artifacts_mirror_the_trace_and_count_incidents() {
        use gemini_telemetry::TelemetrySink;
        let sink = TelemetrySink::enabled();
        let report = Scenario::chaos(ChaosPlan::kill_mid_checkpoint())
            .seed(1)
            .sink(sink.clone())
            .run()
            .unwrap();
        assert_eq!(sink.causal_events(), report.trace);
        let snap = sink.metrics_snapshot();
        let cell = intern_label("kill_mid_checkpoint:1");
        assert_eq!(snap.counter(Key::labeled("incident.count", "cell", cell)), 1);
        let prom = sink.export_prometheus();
        assert!(prom.contains("incident_downtime_us"), "{prom}");
        assert!(prom.contains("critical_path_phase_us"), "{prom}");
        assert!(prom.contains("chaos_detection_latency_us"), "{prom}");
        let trace = sink.export_chrome_trace();
        assert!(trace.contains("\"ph\":\"s\""), "flow lane missing");
        assert!(trace.contains("incident-0/"), "phase spans missing");
    }
}
