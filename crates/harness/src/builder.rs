//! The builder-style run API: one front door for every simulation the
//! harness offers.
//!
//! Historically each runner grew its own `run_x` / `run_x_with` pair (and
//! the chaos engine a third, policy-taking variant). [`Scenario`] collapses
//! the sprawl into a single chainable surface:
//!
//! ```
//! use gemini_harness::{DrillConfig, Scenario};
//! let report = Scenario::drill(DrillConfig::fig14()).seed(7).run().unwrap();
//! assert!(report.total_downtime.as_secs_f64() > 0.0);
//! ```
//!
//! * [`Scenario::drill`] — the Fig. 14 single-failure recovery drill.
//! * [`Scenario::campaign`] — a Fig. 15 long-horizon training campaign.
//! * [`Scenario::campaign_sweep`] — a batch of campaigns across `--jobs`.
//! * [`Scenario::chaos`] — one chaos plan (optionally under a policy).
//! * [`Scenario::chaos_campaign`] — plans × seeds across `--jobs`.
//!
//! Common knobs chain on every variant: [`Scenario::seed`] (overrides the
//! config's seed), [`Scenario::seeds`] + [`Scenario::jobs`] (batch
//! variants), [`Scenario::sink`] (telemetry), [`Scenario::policy`] (chaos
//! only — fault-tolerance knobs under a fixed or adaptive
//! [`PolicySpec`]). The old `run_*_with` free functions survive as
//! `#[deprecated]` shims over the same executors.

use crate::campaign::{execute_campaign, CampaignConfig, CampaignResult};
use crate::chaos::{execute_chaos, ChaosPlan, ChaosReport};
use crate::drill::{execute_drill, DrillConfig, DrillReport};
use gemini_core::policy::{PolicySpec, RecoveryMode};
use gemini_core::GeminiError;
use gemini_telemetry::TelemetrySink;
use gemini_training::WorkloadSpec;

/// A configured run, built with the `Scenario::*` constructors and
/// executed with `run()`. The type parameter is the underlying config
/// (drill, campaign, chaos plan, or a batch thereof).
#[derive(Clone, Debug)]
pub struct Scenario<C> {
    cfg: C,
    seed: Option<u64>,
    seeds: Vec<u64>,
    jobs: usize,
    sink: Option<TelemetrySink>,
    policy: Option<PolicySpec>,
}

impl Scenario<()> {
    /// An event-driven failure-recovery drill (Fig. 14).
    pub fn drill(cfg: DrillConfig) -> Scenario<DrillConfig> {
        Scenario::wrap(cfg)
    }

    /// A drill against a copy-on-write fork of a shared deployment
    /// snapshot (see [`crate::Deployment::snapshot`]): the service's
    /// per-query entry point. The fork's overlay (if it diverged) becomes
    /// the drill's deployment; the shared base is never copied for
    /// read-only forks with a unique handle, and never mutated.
    pub fn drill_from_fork(
        fork: gemini_core::Fork<crate::Deployment>,
        failures: Vec<(usize, gemini_cluster::FailureKind)>,
        fail_during_iteration: u64,
        operator: gemini_cluster::OperatorConfig,
        seed: u64,
    ) -> Scenario<DrillConfig> {
        Scenario::wrap(DrillConfig {
            scenario: fork.into_owned(),
            failures,
            fail_during_iteration,
            operator,
            seed,
            mode: RecoveryMode::Wait,
        })
    }

    /// A long-horizon training campaign with Poisson failures (Fig. 15).
    pub fn campaign(cfg: CampaignConfig) -> Scenario<CampaignConfig> {
        Scenario::wrap(cfg)
    }

    /// A batch of campaigns, run deterministically across
    /// [`Scenario::jobs`] workers (results in input order, bit-identical
    /// at every jobs count).
    pub fn campaign_sweep(cfgs: Vec<CampaignConfig>) -> Scenario<Vec<CampaignConfig>> {
        Scenario::wrap(cfgs)
    }

    /// One chaos plan through the DES stack; accepts
    /// [`Scenario::policy`].
    pub fn chaos(plan: ChaosPlan) -> Scenario<ChaosPlan> {
        Scenario::wrap(plan)
    }

    /// Every plan × every seed (plan-major order) across
    /// [`Scenario::jobs`] workers, telemetry disabled for speed; accepts
    /// [`Scenario::policy`].
    pub fn chaos_campaign(plans: Vec<ChaosPlan>) -> Scenario<Vec<ChaosPlan>> {
        Scenario::wrap(plans)
    }
}

impl<C> Scenario<C> {
    fn wrap(cfg: C) -> Scenario<C> {
        Scenario {
            cfg,
            seed: None,
            seeds: Vec::new(),
            jobs: 1,
            sink: None,
            policy: None,
        }
    }

    /// Overrides the run's seed (the config's own seed otherwise; chaos
    /// plans carry no seed and default to 1).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// The seed set of a batch run (chaos campaigns). Defaults to the
    /// single [`Scenario::seed`].
    pub fn seeds(mut self, seeds: &[u64]) -> Self {
        self.seeds = seeds.to_vec();
        self
    }

    /// Worker count for batch runs. Results never depend on it.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Records telemetry through `sink` (the caller keeps the handle for
    /// exports). Single-run variants only.
    pub fn sink(mut self, sink: TelemetrySink) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Puts the run's fault-tolerance knobs under `policy` (chaos
    /// variants only; drills and campaigns model the paper's fixed
    /// configuration).
    pub fn policy(mut self, policy: PolicySpec) -> Self {
        self.policy = Some(policy);
        self
    }

    fn reject_policy(&self, what: &'static str) -> Result<(), GeminiError> {
        if self.policy.is_some() {
            return Err(GeminiError::InvalidPartitionInput(what));
        }
        Ok(())
    }
}

impl Scenario<DrillConfig> {
    /// Overrides the drill deployment's training recipe (dense or MoE).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.cfg.scenario.workload = workload;
        self
    }

    /// Overrides the drill's recovery mode (wait | shrink | step-up).
    pub fn mode(mut self, mode: RecoveryMode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Runs the drill. Default sink: enabled (the report carries the
    /// typed event log).
    pub fn run(self) -> Result<DrillReport, GeminiError> {
        self.reject_policy("drills run the paper's fixed configuration; use Scenario::chaos for policy runs")?;
        let mut cfg = self.cfg;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        execute_drill(&cfg, self.sink.unwrap_or_else(TelemetrySink::enabled))
    }
}

impl Scenario<CampaignConfig> {
    /// Runs the campaign. Default sink: disabled (campaigns are
    /// closed-form sweeps; enable one to collect `campaign.*` metrics).
    pub fn run(self) -> Result<CampaignResult, GeminiError> {
        self.reject_policy("campaigns run the paper's fixed configuration; use Scenario::chaos for policy runs")?;
        let mut cfg = self.cfg;
        if let Some(seed) = self.seed {
            cfg.seed = seed;
        }
        execute_campaign(&cfg, &self.sink.unwrap_or_else(TelemetrySink::disabled))
    }
}

impl Scenario<Vec<CampaignConfig>> {
    /// Runs every config across the worker pool, in input order.
    pub fn run(self) -> Result<Vec<CampaignResult>, GeminiError> {
        self.reject_policy("campaigns run the paper's fixed configuration; use Scenario::chaos_campaign for policy runs")?;
        if self.seed.is_some() || !self.seeds.is_empty() {
            return Err(GeminiError::InvalidPartitionInput(
                "campaign sweeps take their seeds from each config; build the grid with campaign_grid",
            ));
        }
        if self.sink.is_some() {
            return Err(GeminiError::InvalidPartitionInput(
                "batch runs execute with telemetry disabled; run a single campaign with .sink(…)",
            ));
        }
        let cfgs = self.cfg;
        crate::par::try_par_map(self.jobs, cfgs.len(), |i| {
            execute_campaign(&cfgs[i], &TelemetrySink::disabled())
        })
    }
}

impl Scenario<ChaosPlan> {
    /// Overrides the plan deployment's training recipe (dense or MoE).
    pub fn workload(mut self, workload: WorkloadSpec) -> Self {
        self.cfg.scenario.workload = workload;
        self
    }

    /// Runs the plan (seed defaults to 1). Default sink: enabled.
    pub fn run(self) -> Result<ChaosReport, GeminiError> {
        execute_chaos(
            &self.cfg,
            self.seed.unwrap_or(1),
            self.sink.unwrap_or_else(TelemetrySink::enabled),
            self.policy.as_ref(),
        )
    }
}

impl Scenario<Vec<ChaosPlan>> {
    /// Runs every plan × every seed (plan-major) across the worker pool.
    /// Telemetry stays disabled; results are bit-identical at every
    /// [`Scenario::jobs`] count.
    pub fn run(self) -> Result<Vec<ChaosReport>, GeminiError> {
        if self.sink.is_some() {
            return Err(GeminiError::InvalidPartitionInput(
                "batch runs execute with telemetry disabled; run a single plan with .sink(…)",
            ));
        }
        let seeds = if self.seeds.is_empty() {
            vec![self.seed.unwrap_or(1)]
        } else {
            self.seeds
        };
        let plans = self.cfg;
        let policy = self.policy;
        let total = plans.len() * seeds.len();
        crate::par::try_par_map(self.jobs, total, |i| {
            execute_chaos(
                &plans[i / seeds.len()],
                seeds[i % seeds.len()],
                TelemetrySink::disabled(),
                policy.as_ref(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_core::policy::{FixedPolicy, PolicyKnobs};

    #[test]
    fn drill_builder_matches_the_free_function() {
        let a = Scenario::drill(DrillConfig::fig14()).run().unwrap();
        let b = crate::drill::run_drill(&DrillConfig::fig14()).unwrap();
        assert_eq!(a.total_downtime, b.total_downtime);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn drill_from_fork_matches_direct_and_leaves_the_base_untouched() {
        use gemini_cluster::{FailureKind, OperatorConfig};
        let base = crate::Deployment::dense_gpt2_100b_p4d().snapshot();
        // An undiverged fork is byte-equivalent to the plain constructor.
        let a = Scenario::drill_from_fork(
            base.fork(),
            vec![(5, FailureKind::Hardware)],
            4,
            OperatorConfig::default(),
            1,
        )
        .run()
        .unwrap();
        let b = Scenario::drill(DrillConfig::fig14()).run().unwrap();
        assert_eq!(a.total_downtime, b.total_downtime);
        assert_eq!(a.events, b.events);
        // A diverged fork carries its overlay into the drill…
        let mut fork = base.fork();
        fork.make_mut().machines = 8;
        assert!(fork.is_diverged());
        let small = Scenario::drill_from_fork(
            fork,
            vec![(5, FailureKind::Hardware)],
            4,
            OperatorConfig::default(),
            1,
        )
        .run()
        .unwrap();
        assert!(small.total_downtime.as_secs_f64() > 0.0);
        // …while the shared base still reads 16 machines for everyone.
        assert_eq!(base.get().machines, 16);
    }

    #[test]
    fn drill_seed_override_wins() {
        let a = Scenario::drill(DrillConfig::fig14()).seed(999).run().unwrap();
        let mut cfg = DrillConfig::fig14();
        cfg.seed = 999;
        let b = crate::drill::run_drill(&cfg).unwrap();
        assert_eq!(a.replacement_wait, b.replacement_wait);
    }

    #[test]
    fn campaign_builder_matches_the_free_function() {
        use crate::campaign::{run_campaign, Solution};
        let cfg = CampaignConfig::fig15(Solution::Gemini, 4.0, 7);
        let a = Scenario::campaign(cfg.clone()).run().unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.effective_ratio, b.effective_ratio);
        assert_eq!(a.failures, b.failures);
    }

    #[test]
    fn chaos_builder_supports_policy_and_seed() {
        let spec = PolicySpec::Fixed(FixedPolicy {
            name: "paper_3h",
            knobs: PolicyKnobs::paper_default(),
        });
        let report = Scenario::chaos(ChaosPlan::kill_mid_checkpoint())
            .seed(11)
            .policy(spec)
            .run()
            .unwrap();
        assert_eq!(report.policy, "paper_3h");
        assert!(report.is_green(), "violations: {:?}", report.violations);
    }

    #[test]
    fn chaos_campaign_is_jobs_invariant() {
        let plans = vec![
            ChaosPlan::kill_mid_checkpoint(),
            ChaosPlan::correlated_group_loss(),
        ];
        let run = |jobs| {
            Scenario::chaos_campaign(plans.clone())
                .seeds(&[1, 2])
                .jobs(jobs)
                .policy(PolicySpec::adaptive())
                .run()
                .unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.render(), y.render());
        }
    }

    #[test]
    fn workload_and_mode_chain_onto_a_drill() {
        use gemini_core::recovery::RecoveryCase;
        let report = Scenario::drill(DrillConfig::fig14())
            .workload(WorkloadSpec::moe_default())
            .mode(RecoveryMode::Shrink)
            .run()
            .unwrap();
        assert_eq!(report.mode, RecoveryMode::Shrink);
        assert_eq!(report.case, RecoveryCase::HardwareFromCpu);
        assert!(report.shrink.is_some());
    }

    #[test]
    fn policy_is_rejected_where_it_cannot_apply() {
        assert!(Scenario::drill(DrillConfig::fig14())
            .policy(PolicySpec::adaptive())
            .run()
            .is_err());
        use crate::campaign::Solution;
        assert!(
            Scenario::campaign(CampaignConfig::fig15(Solution::Gemini, 4.0, 7))
                .policy(PolicySpec::adaptive())
                .run()
                .is_err()
        );
    }
}
