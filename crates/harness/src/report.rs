//! Minimal markdown/CSV/JSON table rendering for experiment output.

use serde::Serialize;

/// A rectangular table with a title, headers and string cells.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded, long rows truncated.
    pub fn push(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders JSON (title, headers, rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Renders CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = format!("{}\n", self.headers.join(","));
        for row in &self.rows {
            out.push_str(&format!("{}\n", row.join(",")));
        }
        out
    }
}

/// Formats seconds with a sensible precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["3".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| 3 |  |"), "{md}");
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("Demo", &["a"]);
        t.push(vec!["1".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"Demo\""));
        assert!(j.contains("\"rows\""));
        // It parses back.
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["headers"][0], "a");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(pct(0.933), "93.3%");
    }
}
