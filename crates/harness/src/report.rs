//! Minimal markdown/CSV/JSON table rendering for experiment output.

use serde::Serialize;

/// A rectangular table with a title, headers and string cells.
#[derive(Clone, Debug, Default, Serialize)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded, long rows truncated.
    pub fn push(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
    }

    /// Renders GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }

    /// Renders JSON (title, headers, rows).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Renders RFC 4180 CSV: fields containing a comma, a double quote,
    /// CR or LF are enclosed in double quotes, with embedded quotes
    /// doubled.
    pub fn to_csv(&self) -> String {
        let render_row = |cells: &[String]| {
            cells
                .iter()
                .map(|c| csv_field(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        let mut out = format!("{}\n", render_row(&self.headers));
        for row in &self.rows {
            out.push_str(&format!("{}\n", render_row(row)));
        }
        out
    }
}

/// Quotes one CSV field per RFC 4180 when it needs it.
fn csv_field(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') || cell.contains('\r') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Formats seconds with a sensible precision.
pub fn secs(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["3".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### Demo"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        assert!(md.contains("| 3 |  |"), "{md}");
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn csv_quotes_per_rfc4180() {
        let mut t = Table::new("Demo", &["name", "note"]);
        t.push(vec!["plain".into(), "a,b".into()]);
        t.push(vec!["with \"quotes\"".into(), "line\nbreak".into()]);
        t.push(vec!["carriage\rreturn".into(), "ok".into()]);
        let csv = t.to_csv();
        let mut lines = csv.split_terminator('\n');
        assert_eq!(lines.next(), Some("name,note"));
        // Comma-bearing field quoted, plain field untouched.
        assert_eq!(lines.next(), Some("plain,\"a,b\""));
        // Embedded quotes doubled; the LF field spans two physical lines.
        assert_eq!(lines.next(), Some("\"with \"\"quotes\"\"\",\"line"));
        assert_eq!(lines.next(), Some("break\""));
        assert_eq!(lines.next(), Some("\"carriage\rreturn\",ok"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_shape() {
        let mut t = Table::new("Demo", &["a"]);
        t.push(vec!["1".into()]);
        let j = t.to_json();
        assert!(j.contains("\"title\": \"Demo\""));
        assert!(j.contains("\"rows\""));
        // It parses back.
        let v: serde_json::Value = serde_json::from_str(&j).unwrap();
        assert_eq!(v["headers"][0], "a");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(123.4), "123");
        assert_eq!(secs(12.34), "12.3");
        assert_eq!(secs(0.1234), "0.123");
        assert_eq!(pct(0.933), "93.3%");
    }
}
