//! Benchmarks of the checkpoint-placement machinery (paper §4):
//! Algorithm 1 construction, recoverability checks, and the three
//! recovery-probability estimators.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_core::placement::probability::{
    corollary1_probability, exact_recovery_probability, monte_carlo_recovery_probability,
};
use gemini_core::Placement;
use gemini_sim::DetRng;
use std::collections::BTreeSet;

fn bench_algorithm1(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1_mixed_placement");
    for n in [16usize, 128, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| Placement::mixed(black_box(n), black_box(2)).unwrap())
        });
    }
    g.finish();
}

fn bench_recoverable(c: &mut Criterion) {
    let placement = Placement::mixed(1024, 2).unwrap();
    let failed: BTreeSet<usize> = [3, 500, 901].into_iter().collect();
    c.bench_function("recoverable_n1024_k3", |b| {
        b.iter(|| placement.recoverable(black_box(&failed)))
    });
}

fn bench_probability_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_probability");
    g.bench_function("corollary1_closed_form", |b| {
        b.iter(|| corollary1_probability(black_box(128), 2, 3))
    });
    let placement = Placement::mixed(64, 2).unwrap();
    g.bench_function("exact_enumeration_n64_k2", |b| {
        b.iter(|| exact_recovery_probability(black_box(&placement), 2).unwrap())
    });
    g.sample_size(20);
    g.bench_function("monte_carlo_n128_k3_10k", |b| {
        let p = Placement::mixed(128, 2).unwrap();
        let mut rng = DetRng::new(1);
        b.iter(|| monte_carlo_recovery_probability(black_box(&p), 3, 10_000, &mut rng))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_algorithm1,
    bench_recoverable,
    bench_probability_estimators
);
criterion_main!(benches);
