//! One Criterion benchmark per table/figure regenerator — running each is
//! the canonical way to reproduce the paper's evaluation artifacts, and
//! benchmarking them keeps their cost visible as the models grow.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_harness::experiments::{
    ablations, interleave, placement, recovery, render_all_jobs, scale, tables, throughput, wasted,
};

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table1", |b| b.iter(|| black_box(tables::table1())));
    c.bench_function("table2", |b| b.iter(|| black_box(tables::table2())));
}

fn bench_throughput_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput_figures");
    g.sample_size(10);
    g.bench_function("fig7_iteration_time", |b| {
        b.iter(|| black_box(throughput::fig7()))
    });
    g.bench_function("fig8_network_idle_time", |b| {
        b.iter(|| black_box(throughput::fig8()))
    });
    g.bench_function("fig13_p3dn", |b| b.iter(|| black_box(throughput::fig13())));
    g.finish();
}

fn bench_placement_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement_figures");
    g.sample_size(10);
    g.bench_function("fig9_recovery_probability", |b| {
        b.iter(|| black_box(placement::fig9()))
    });
    g.finish();
}

fn bench_wasted_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("wasted_time_figures");
    g.sample_size(10);
    g.bench_function("fig1_anatomy", |b| b.iter(|| black_box(wasted::fig1())));
    g.bench_function("fig10_average_wasted_time", |b| {
        b.iter(|| black_box(wasted::fig10()))
    });
    g.bench_function("fig11_ckpt_time_reduction", |b| {
        b.iter(|| black_box(wasted::fig11()))
    });
    g.bench_function("fig12_ckpt_frequency", |b| {
        b.iter(|| black_box(wasted::fig12()))
    });
    g.finish();
}

fn bench_recovery_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_figures");
    g.sample_size(10);
    g.bench_function("fig14_recovery_drill", |b| {
        b.iter(|| black_box(recovery::fig14()))
    });
    g.finish();
}

fn bench_scale_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_figures");
    g.sample_size(10);
    g.bench_function("fig15a_failure_rate_sweep", |b| {
        b.iter(|| black_box(scale::fig15a(true)))
    });
    g.bench_function("fig15b_cluster_size_sweep", |b| {
        b.iter(|| black_box(scale::fig15b(true)))
    });
    g.finish();
}

fn bench_interleave_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("interleave_figures");
    g.sample_size(10);
    g.bench_function("fig16_schemes", |b| {
        b.iter(|| black_box(interleave::fig16()))
    });
    g.finish();
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("replicas_sweep", |b| {
        b.iter(|| black_box(ablations::replicas_ablation()))
    });
    g.bench_function("gamma_sweep", |b| {
        b.iter(|| black_box(ablations::gamma_ablation()))
    });
    g.bench_function("sub_buffers_sweep", |b| {
        b.iter(|| black_box(ablations::sub_buffers_ablation()))
    });
    g.bench_function("standby_sweep", |b| {
        b.iter(|| black_box(ablations::standby_ablation()))
    });
    g.finish();
}

/// The full artifact set regenerated serially vs on the deterministic
/// pool — the speedup the `figures --jobs N` flag buys (output is
/// byte-identical either way; see `docs/PERFORMANCE.md`).
fn bench_render_all_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("render_all_fast");
    g.sample_size(10);
    for jobs in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &jobs, |b, &jobs| {
            b.iter(|| black_box(render_all_jobs(true, jobs)))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_render_all_parallel,
    bench_tables,
    bench_throughput_figures,
    bench_placement_figure,
    bench_wasted_figures,
    bench_recovery_figure,
    bench_scale_figures,
    bench_interleave_figure,
    bench_ablations
);
criterion_main!(benches);
