//! Benchmarks of the ZeRO-3 iteration-timeline generator, the online
//! profiler and the end-to-end checkpoint scheduling path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_cluster::InstanceType;
use gemini_core::schedule::schedule_checkpoint;
use gemini_core::GeminiConfig;
use gemini_sim::DetRng;
use gemini_training::{ModelConfig, OnlineProfiler, TimelineBuilder};

fn bench_timeline_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("iteration_timeline_build");
    for name in ["GPT-2 10B", "GPT-2 40B", "GPT-2 100B"] {
        let model = ModelConfig::by_name(name).unwrap();
        let inst = if model.nominal_params >= 100_000_000_000 {
            InstanceType::p4d()
        } else {
            InstanceType::p3dn()
        };
        let builder = TimelineBuilder::new(model, inst, 16);
        g.bench_with_input(BenchmarkId::from_parameter(name), &builder, |b, builder| {
            b.iter(|| builder.build())
        });
    }
    g.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let builder = TimelineBuilder::new(ModelConfig::gpt2_100b(), InstanceType::p4d(), 16);
    c.bench_function("online_profiler_20_iterations", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(3);
            let mut p = OnlineProfiler::with_default_window();
            for _ in 0..20 {
                p.observe(&builder.build_jittered(&mut rng, 0.03));
            }
            black_box(p.profile().unwrap())
        })
    });
}

fn bench_schedule(c: &mut Criterion) {
    let inst = InstanceType::p4d();
    let model = ModelConfig::gpt2_100b();
    let builder = TimelineBuilder::new(model, inst, 16);
    let mut profiler = OnlineProfiler::new(3);
    for _ in 0..3 {
        profiler.observe(&builder.build());
    }
    let profile = profiler.profile().unwrap();
    c.bench_function("schedule_checkpoint_gpt2_100b", |b| {
        b.iter(|| {
            schedule_checkpoint(
                black_box(&profile),
                model.checkpoint_bytes_per_machine(16),
                inst.gpus,
                &GeminiConfig::default(),
                &inst.ckpt_net_cost(),
                &inst.copy_cost(),
                inst.gpu_headroom,
            )
            .unwrap()
        })
    });
}

criterion_group!(
    benches,
    bench_timeline_build,
    bench_profiler,
    bench_schedule
);
criterion_main!(benches);
