//! Benchmarks of the DES scheduler hot path: the indexed hierarchical
//! timing-wheel engine backend against the retained binary-heap reference,
//! across the three workload shapes every harness experiment reduces to
//! (dense periodic timers, heavy-cancel heartbeat/timeout re-arming, and
//! RNG-driven chaos-plan replay with run/resume segments).
//!
//! Every timed iteration returns the workload fingerprint, so Criterion's
//! `black_box` keeps the equivalence-relevant observables live and the
//! numbers here stay comparable to the `des.*` gauges the `perf` bin
//! writes into `BENCH_harness.json`.
//!
//! ```text
//! cargo bench -p gemini-bench --bench des
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_bench::{run_des, DesWorkload};
use gemini_sim::QueueBackend;

const EVENTS: u64 = 100_000;

fn bench_scheduler_matrix(c: &mut Criterion) {
    for workload in DesWorkload::ALL {
        let mut g = c.benchmark_group(format!("des_{}_100k", workload.key()));
        g.sample_size(15);
        for (name, backend) in [
            ("timing_wheel", QueueBackend::TimingWheel),
            ("reference_heap", QueueBackend::ReferenceHeap),
        ] {
            g.bench_with_input(BenchmarkId::from_parameter(name), &backend, |b, &be| {
                b.iter(|| black_box(run_des(black_box(workload), be, EVENTS)))
            });
        }
        g.finish();
    }
}

/// Cross-backend equivalence on the exact benchmarked configuration, so a
/// regression that skews the comparison (one backend silently doing less
/// work) fails loudly rather than flattering the numbers.
fn bench_equivalence_guard(c: &mut Criterion) {
    let mut g = c.benchmark_group("des_equivalence_guard");
    g.sample_size(10);
    g.bench_function("all_workloads_20k", |b| {
        b.iter(|| {
            for w in DesWorkload::ALL {
                let wheel = run_des(w, QueueBackend::TimingWheel, 20_000);
                let heap = run_des(w, QueueBackend::ReferenceHeap, 20_000);
                assert_eq!(wheel, heap, "backend divergence on {w:?}");
                black_box(wheel);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler_matrix, bench_equivalence_guard);
criterion_main!(benches);
