//! Benchmarks of the recovery-probability hot paths rebuilt in the
//! bitmask/parallel overhaul: the Gosper-iterated exact enumerator (whose
//! raised cap now admits subset counts the old recursive walk refused),
//! the zero-allocation Monte-Carlo sampler vs its retained `BTreeSet`
//! reference kernel, and the `u128` recoverability checks vs the legacy
//! set-based entry point.
//!
//! ```text
//! cargo bench -p gemini-bench --bench probability
//! ```

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_core::placement::probability::{
    binomial, exact_recovery_probability, monte_carlo_recovery_probability_jobs,
    monte_carlo_recovery_probability_reference, FatalSets,
};
use gemini_core::Placement;
use gemini_sim::DetRng;
use std::collections::BTreeSet;

/// Exact enumeration across the cap regimes: `C(24,4)` ≈ 1.1e4 (trivial),
/// `C(40,7)` ≈ 1.9e7 (near the old 1e7 cap the recursive walk enforced),
/// and `C(50,7)` ≈ 1.0e8 — the case the old implementation refused
/// outright and the Gosper enumerator clears within the raised 2.5e8 cap.
fn bench_exact_enumeration(c: &mut Criterion) {
    let mut g = c.benchmark_group("exact_enumeration");
    g.sample_size(10);
    for (n, k) in [(24usize, 4usize), (40, 7), (50, 7)] {
        let placement = Placement::mixed(n, 2).unwrap();
        let subsets = binomial(n as u64, k as u64);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("C({n},{k})~{subsets:.1e}")),
            &(n, k),
            |b, &(_, k)| {
                b.iter(|| exact_recovery_probability(black_box(&placement), black_box(k)).unwrap())
            },
        );
    }
    g.finish();
}

/// Monte-Carlo trial throughput: the bitmask fast path (Floyd `u128`
/// sampling + minimized fatal-mask cover test, zero heap allocations per
/// trial) against the historical per-trial `Vec` + `BTreeSet` kernel.
fn bench_monte_carlo_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("monte_carlo_20k_trials");
    g.sample_size(20);
    let placement = Placement::mixed(32, 2).unwrap();
    g.bench_function("bitmask", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            monte_carlo_recovery_probability_jobs(black_box(&placement), 2, 20_000, &mut rng, 1)
        })
    });
    g.bench_function("btreeset_reference", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            monte_carlo_recovery_probability_reference(black_box(&placement), 2, 20_000, &mut rng)
        })
    });
    g.bench_function("bitmask_jobs4", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| {
            monte_carlo_recovery_probability_jobs(black_box(&placement), 2, 20_000, &mut rng, 4)
        })
    });
    g.finish();
}

/// Single recoverability checks: the minimized fatal-mask kernel and the
/// raw per-machine mask scan vs the `BTreeSet` entry point.
fn bench_recoverable_checks(c: &mut Criterion) {
    let mut g = c.benchmark_group("recoverable_n64_k3");
    let placement = Placement::mixed(64, 2).unwrap();
    let fatal = FatalSets::from_placement(&placement).unwrap();
    let failed_mask: u128 = (1 << 3) | (1 << 17) | (1 << 40);
    let failed_set: BTreeSet<usize> = [3usize, 17, 40].into_iter().collect();
    g.bench_function("fatal_masks", |b| {
        b.iter(|| fatal.recoverable(black_box(failed_mask)))
    });
    g.bench_function("placement_mask_scan", |b| {
        b.iter(|| placement.recoverable_mask(black_box(failed_mask)))
    });
    g.bench_function("btreeset_entry", |b| {
        b.iter(|| placement.recoverable(black_box(&failed_set)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_exact_enumeration,
    bench_monte_carlo_kernels,
    bench_recoverable_checks
);
criterion_main!(benches);
