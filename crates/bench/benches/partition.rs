//! Benchmarks of the checkpoint partition algorithm (paper §5.3,
//! Algorithm 2) and the sub-buffer pipeline simulation at paper scale
//! (GPT-2 100B: 75 GB per machine → ≈2 200 chunks of 8×32 MiB).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use gemini_core::partition::{checkpoint_partition, PartitionInput};
use gemini_core::pipeline::run_pipeline;
use gemini_net::{Bandwidth, ByteSize, TransferCost};
use gemini_sim::SimDuration;

fn paper_input(copies: usize) -> PartitionInput {
    PartitionInput {
        idle_spans: vec![
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_secs_f64(1.0),
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_secs_f64(2.0),
            SimDuration::from_secs_f64(9.5),
        ],
        ckpt_size: ByteSize::from_gb(75),
        copies,
        reserved_buffer: ByteSize::from_mib(128 * 8),
        buffer_parts: 4,
        cost: TransferCost::new(
            SimDuration::from_micros(100),
            Bandwidth::from_gbytes_per_sec(40.0),
        ),
        gamma: 0.8,
    }
}

fn bench_algorithm2(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm2_checkpoint_partition");
    for copies in [1usize, 2, 3] {
        let input = paper_input(copies);
        g.bench_with_input(BenchmarkId::new("copies", copies), &input, |b, input| {
            b.iter(|| checkpoint_partition(black_box(input)).unwrap())
        });
    }
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let plan = checkpoint_partition(&paper_input(1)).unwrap();
    let sizes: Vec<ByteSize> = plan.chunks.iter().map(|ch| ch.size).collect();
    let net = paper_input(1).cost;
    let copy = TransferCost::new(
        SimDuration::from_micros(10),
        Bandwidth::from_gbytes_per_sec(50.0),
    );
    let mut g = c.benchmark_group("pipeline_simulation");
    for p in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("sub_buffers", p), &p, |b, &p| {
            b.iter(|| run_pipeline(black_box(&sizes), p, &net, &copy))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_algorithm2, bench_pipeline);
criterion_main!(benches);
