//! DES scheduler workloads for the heap-vs-wheel perf trajectory.
//!
//! Three workload shapes, chosen to bracket what the harness actually puts
//! through `gemini_sim::Engine::run`:
//!
//! * **dense timers** — a population of self-rescheduling periodic timers
//!   (iteration ticks, telemetry flushes). Pure schedule/pop pressure with
//!   many same-slot collisions; no cancellation.
//! * **heavy-cancel heartbeats** — every heartbeat arrival re-arms a
//!   far-future failure timeout, cancelling the previous one. Nearly every
//!   scheduled event is cancelled before it fires — the exact shape that
//!   made the historic tombstone `HashSet` grow without bound and is the
//!   headline O(1)-true-cancel case for the timing wheel.
//! * **chaos replay** — an RNG-driven mix of near/far spawns, cancels of
//!   recent handles and run/resume segments, shaped like the fault-injection
//!   plans in `gemini_harness::chaos`.
//!
//! Each workload runs identically on either [`QueueBackend`] and returns a
//! [`DesFingerprint`]; the perf bin and the Criterion bench assert the
//! fingerprints match across backends, so every timing claim is backed by
//! an observational-equivalence check on the very run being timed.

use gemini_sim::{Context, Engine, EventHandle, Model, QueueBackend, SimDuration, SimTime};

/// Which DES workload to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DesWorkload {
    /// Self-rescheduling periodic timers; no cancellation.
    DenseTimers,
    /// Heartbeat/timeout re-arming; ~1 cancel per processed event.
    HeavyCancel,
    /// RNG-driven chaos-plan-shaped mix with run/resume segments.
    ChaosReplay,
    /// 10,000 machines' heartbeat/timeout chains spanning one simulated
    /// month — the fleet-scale frontier workload for the `scale` report
    /// section. Not part of [`DesWorkload::ALL`]: it parameterizes its
    /// timer period from the event budget so the simulated clock crosses
    /// the month regardless of budget, which makes its fingerprint
    /// budget-dependent in a way the three bracket workloads are not.
    FleetMonth,
}

impl DesWorkload {
    /// All workloads, in report order.
    pub const ALL: [DesWorkload; 3] = [
        DesWorkload::DenseTimers,
        DesWorkload::HeavyCancel,
        DesWorkload::ChaosReplay,
    ];

    /// Stable snake_case key used in `BENCH_harness.json` and gauge names.
    pub fn key(self) -> &'static str {
        match self {
            DesWorkload::DenseTimers => "dense_timers",
            DesWorkload::HeavyCancel => "heavy_cancel",
            DesWorkload::ChaosReplay => "chaos_replay",
            DesWorkload::FleetMonth => "fleet_month",
        }
    }
}

/// Machines in the [`DesWorkload::FleetMonth`] fleet.
pub const FLEET_MACHINES: usize = 10_000;

/// Simulated span the fleet workload must cross, in nanoseconds (30 days).
pub const FLEET_MONTH_NS: u64 = 30 * 24 * 3600 * 1_000_000_000;

/// Everything observable about a finished workload run. Equal fingerprints
/// across backends mean the run being timed is also the run being verified.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DesFingerprint {
    /// Events processed by the engine.
    pub processed: u64,
    /// Final simulated clock, nanoseconds.
    pub now_ns: u64,
    /// Workload-specific checksum (fired ids, cancel verdicts, RNG draws).
    pub checksum: u64,
    /// Events still pending when the run stopped.
    pub pending: usize,
}

fn mix(acc: u64, x: u64) -> u64 {
    // splitmix64-style fold; order-sensitive so reordered events change it.
    let mut z = acc ^ x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------- dense ----

struct DenseTimers {
    periods: Vec<u64>,
    checksum: u64,
}

impl Model for DenseTimers {
    type Event = usize;
    fn handle(&mut self, ctx: &mut Context<'_, usize>, id: usize) {
        self.checksum = mix(self.checksum, (id as u64) ^ ctx.now().as_nanos());
        let period = self.periods[id % self.periods.len()];
        ctx.schedule_after(SimDuration::from_nanos(period), id);
    }
}

fn run_dense_timers(backend: QueueBackend, events: u64) -> DesFingerprint {
    const TIMERS: usize = 256;
    let mut engine = Engine::new_with_backend(42, backend);
    let mut model = DenseTimers {
        // Co-prime-ish spread so slots collide and interleave irregularly.
        periods: (0..TIMERS).map(|i| 1_000 + 37 * i as u64).collect(),
        checksum: 0,
    };
    for i in 0..TIMERS {
        engine.prime_at(SimTime::from_nanos((i as u64) * 13), i);
    }
    engine.run(&mut model, None, events);
    DesFingerprint {
        processed: engine.processed(),
        now_ns: engine.now().as_nanos(),
        checksum: model.checksum,
        pending: engine.pending_events(),
    }
}

// ----------------------------------------------------------- heartbeats ----

#[derive(Clone, Copy)]
enum Hb {
    Beat(usize),
    Timeout(usize),
}

struct Heartbeats {
    armed: Vec<Option<EventHandle>>,
    timeouts_fired: u64,
    checksum: u64,
}

impl Model for Heartbeats {
    type Event = Hb;
    fn handle(&mut self, ctx: &mut Context<'_, Hb>, ev: Hb) {
        match ev {
            Hb::Beat(p) => {
                // Re-arm: cancel the pending far-future timeout, arm a new
                // one, schedule the next beat with a little jitter.
                if let Some(h) = self.armed[p].take() {
                    let hit = ctx.cancel(h);
                    self.checksum = mix(self.checksum, hit as u64);
                }
                self.armed[p] =
                    Some(ctx.schedule_after(SimDuration::from_millis(150), Hb::Timeout(p)));
                let jitter = ctx.rng().uniform_u64(0, 200_000);
                ctx.schedule_after(SimDuration::from_nanos(1_000_000 + jitter), Hb::Beat(p));
            }
            Hb::Timeout(p) => {
                self.timeouts_fired += 1;
                self.armed[p] = None;
                self.checksum = mix(self.checksum, 0xdead ^ p as u64);
            }
        }
    }
}

fn run_heavy_cancel(backend: QueueBackend, events: u64) -> DesFingerprint {
    const PEERS: usize = 64;
    let mut engine = Engine::new_with_backend(7, backend);
    let mut model = Heartbeats {
        armed: vec![None; PEERS],
        timeouts_fired: 0,
        checksum: 0,
    };
    for p in 0..PEERS {
        engine.prime_at(SimTime::from_nanos((p as u64) * 17), Hb::Beat(p));
    }
    engine.run(&mut model, None, events);
    DesFingerprint {
        processed: engine.processed(),
        now_ns: engine.now().as_nanos(),
        checksum: mix(model.checksum, model.timeouts_fired),
        pending: engine.pending_events(),
    }
}

// --------------------------------------------------------- chaos replay ----

struct ChaosReplay {
    handles: Vec<EventHandle>,
    checksum: u64,
}

impl Model for ChaosReplay {
    type Event = u64;
    fn handle(&mut self, ctx: &mut Context<'_, u64>, id: u64) {
        self.checksum = mix(self.checksum, id ^ ctx.now().as_nanos());
        // Always keep the population alive with one near-future successor.
        let dt = ctx.rng().uniform_u64(100, 500_000);
        ctx.schedule_after(SimDuration::from_nanos(dt), id.wrapping_mul(3) + 1);
        let roll = ctx.rng().unit();
        if roll < 0.35 {
            // Arm a "failure" far in the future and remember the handle.
            let far = ctx.rng().uniform_u64(1_000_000, 5_000_000_000);
            let h = ctx.schedule_after(SimDuration::from_nanos(far), id ^ 0xff);
            self.handles.push(h);
        } else if roll < 0.75 && !self.handles.is_empty() {
            // Abort a previously armed failure (most chaos plans do).
            let back = ctx.rng().uniform_u64(0, self.handles.len() as u64) as usize;
            let h = self.handles.swap_remove(back);
            let hit = ctx.cancel(h);
            self.checksum = mix(self.checksum, hit as u64);
        }
    }
}

fn run_chaos_replay(backend: QueueBackend, events: u64) -> DesFingerprint {
    let mut engine = Engine::new_with_backend(1234, backend);
    let mut model = ChaosReplay {
        handles: Vec::new(),
        checksum: 0,
    };
    for i in 0..16u64 {
        engine.prime_at(SimTime::from_nanos(i * 101), i);
    }
    // Run/resume in segments, the way harness::runtime drives multi-phase
    // drills: each segment gets a time limit and a slice of the budget.
    // Segments repeat until the whole budget is consumed, so the timed
    // work is exactly `events` processed events regardless of how the
    // until-limits land (the population self-reschedules and never dies).
    let mut remaining = events;
    let mut limit = SimTime::from_nanos(0);
    while remaining > 0 && engine.pending_events() > 0 {
        // `remaining >= 1` inside the loop, so the clamp bounds are ordered.
        let slice = (events / 16).clamp(1, remaining);
        limit = SimTime::from_nanos(limit.as_nanos() + 40_000_000);
        let before = engine.processed();
        engine.run(&mut model, Some(limit), slice);
        remaining -= (engine.processed() - before).min(remaining);
    }
    DesFingerprint {
        processed: engine.processed(),
        now_ns: engine.now().as_nanos(),
        checksum: model.checksum,
        pending: engine.pending_events(),
    }
}

// ---------------------------------------------------------- fleet month ----

struct FleetMonth {
    armed: Vec<Option<EventHandle>>,
    period: u64,
    checksum: u64,
}

impl Model for FleetMonth {
    type Event = Hb;
    fn handle(&mut self, ctx: &mut Context<'_, Hb>, ev: Hb) {
        match ev {
            Hb::Beat(p) => {
                self.checksum = mix(self.checksum, (p as u64) ^ ctx.now().as_nanos());
                // Re-arm the machine's failure timeout (cancelling the old
                // one — the heavy-cancel shape the harness's health TTLs
                // put through the wheel) and schedule the next heartbeat.
                if let Some(h) = self.armed[p].take() {
                    let hit = ctx.cancel(h);
                    self.checksum = mix(self.checksum, hit as u64);
                }
                let timeout = self.period.saturating_mul(3);
                self.armed[p] =
                    Some(ctx.schedule_after(SimDuration::from_nanos(timeout), Hb::Timeout(p)));
                // A sub-microsecond per-machine stagger keeps the rounds
                // from collapsing into one wheel slot without perturbing
                // the month-crossing arithmetic.
                let dt = self.period + (p as u64 % 97);
                ctx.schedule_after(SimDuration::from_nanos(dt), Hb::Beat(p));
            }
            Hb::Timeout(p) => {
                // Only reachable if a beat round was starved past 3 periods,
                // which the budget arithmetic rules out — but stay honest in
                // the fingerprint if it ever happens.
                self.armed[p] = None;
                self.checksum = mix(self.checksum, 0xfee7 ^ p as u64);
            }
        }
    }
}

fn run_fleet_month(backend: QueueBackend, events: u64) -> DesFingerprint {
    let events = events.max(FLEET_MACHINES as u64);
    // Tune the heartbeat period so the processed-event budget carries the
    // simulated clock across one month: each machine beats
    // `events / FLEET_MACHINES` times, the last beat landing at
    // `(beats - 1) * period >= FLEET_MONTH_NS`.
    let beats = events / FLEET_MACHINES as u64;
    let period = FLEET_MONTH_NS.div_ceil(beats.saturating_sub(1).max(1));
    let mut engine = Engine::new_with_backend(99, backend);
    let mut model = FleetMonth {
        armed: vec![None; FLEET_MACHINES],
        period,
        checksum: 0,
    };
    for p in 0..FLEET_MACHINES {
        engine.prime_at(SimTime::from_nanos((p as u64) * 13), Hb::Beat(p));
    }
    engine.run(&mut model, None, events);
    DesFingerprint {
        processed: engine.processed(),
        now_ns: engine.now().as_nanos(),
        checksum: model.checksum,
        pending: engine.pending_events(),
    }
}

// -------------------------------------------------------------- driver ----

/// Runs `workload` on `backend`, processing (up to) `events` events.
pub fn run_des(workload: DesWorkload, backend: QueueBackend, events: u64) -> DesFingerprint {
    match workload {
        DesWorkload::DenseTimers => run_dense_timers(backend, events),
        DesWorkload::HeavyCancel => run_heavy_cancel(backend, events),
        DesWorkload::ChaosReplay => run_chaos_replay(backend, events),
        DesWorkload::FleetMonth => run_fleet_month(backend, events),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_agree_on_every_workload() {
        for w in DesWorkload::ALL {
            let wheel = run_des(w, QueueBackend::TimingWheel, 20_000);
            let heap = run_des(w, QueueBackend::ReferenceHeap, 20_000);
            assert_eq!(wheel, heap, "fingerprint mismatch on {w:?}");
            assert_eq!(wheel.processed, 20_000, "budget is exact on {w:?}");
        }
    }

    #[test]
    fn workloads_have_distinct_signatures() {
        let fps: Vec<u64> = DesWorkload::ALL
            .iter()
            .map(|&w| run_des(w, QueueBackend::TimingWheel, 5_000).checksum)
            .collect();
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[1], fps[2]);
    }

    #[test]
    fn fleet_month_backends_agree_and_cross_the_month() {
        let events = 200_000u64; // 20 beats per machine
        let wheel = run_des(DesWorkload::FleetMonth, QueueBackend::TimingWheel, events);
        let heap = run_des(DesWorkload::FleetMonth, QueueBackend::ReferenceHeap, events);
        assert_eq!(wheel, heap, "fleet fingerprint mismatch across backends");
        assert_eq!(wheel.processed, events, "budget is exact");
        assert!(
            wheel.now_ns >= FLEET_MONTH_NS,
            "simulated clock stopped at {} ns, short of one month ({} ns)",
            wheel.now_ns,
            FLEET_MONTH_NS
        );
        // Every machine stays live: its re-armed failure timeout is pending.
        assert!(wheel.pending >= FLEET_MACHINES, "machines dropped out");
    }
}
