//! Benchmark and figure-regeneration entry points for the GEMINI
//! reproduction.
//!
//! Binaries:
//!
//! * `figures` — prints every figure of the paper's evaluation as a
//!   markdown table (`--fast` shrinks the stochastic sweeps);
//! * `tables` — prints Tables 1 and 2;
//! * `calib` — prints the calibrated timeline anchors.
//!
//! Criterion benches (one per experiment family): `placement`,
//! `partition`, `timeline`, `figures`, `probability`, `des` (the
//! heap-vs-wheel scheduler matrix over the [`des`] workloads).
//!
//! Every binary additionally accepts `--trace-out FILE` (Chrome
//! trace-event JSON for Perfetto), `--metrics-out FILE` (Prometheus text),
//! `--metrics-json-out FILE`, `--jobs N`, and — where seeding applies —
//! `--seed N` / `--seeds A,B,C`; all parsed by the shared [`cli::BenchCli`]
//! front end (telemetry flags themselves live in [`out::TelemetryArgs`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;
pub mod des;
pub mod out;

pub use cli::BenchCli;
pub use des::{run_des, DesFingerprint, DesWorkload, FLEET_MACHINES, FLEET_MONTH_NS};
pub use out::TelemetryArgs;
