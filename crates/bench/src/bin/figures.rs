//! Prints every figure of the paper's evaluation section as markdown.
//!
//! ```text
//! cargo run -p gemini-bench --bin figures [--fast] [--csv | --json]
//! ```

use gemini_harness::experiments::render_all;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fast = args.iter().any(|a| a == "--fast");
    let csv = args.iter().any(|a| a == "--csv");
    let json = args.iter().any(|a| a == "--json");
    if json {
        let tables = render_all(fast);
        let rendered: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", rendered.join(","));
        return;
    }
    for table in render_all(fast) {
        if csv {
            println!("# {}", table.title);
            println!("{}", table.to_csv());
        } else {
            println!("{}", table.to_markdown());
        }
    }
}
