//! Prints every figure of the paper's evaluation section as markdown.
//!
//! ```text
//! cargo run -p gemini-bench --bin figures [--fast] [--csv | --json]
//! cargo run -p gemini-bench --bin figures -- --fast --metrics-out figs.prom
//! cargo run --release -p gemini-bench --bin figures -- --jobs 4
//! ```
//!
//! `--jobs N` (or `GEMINI_JOBS=N`) regenerates the artifacts on `N`
//! worker threads; the output — markdown, CSV, JSON and every telemetry
//! export — is byte-identical at any job count (`docs/PERFORMANCE.md`).
//!
//! With `--trace-out`/`--metrics-out`/`--metrics-json-out` the binary also
//! runs the Fig. 14 recovery drill through an enabled telemetry sink and
//! exports the resulting spans, events and metrics.

use gemini_bench::BenchCli;
use gemini_harness::experiments::render_all_with;
use gemini_harness::{DrillConfig, Scenario};

fn main() {
    let mut cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    let sink = targs.sink();
    let fast = cli.flag("--fast");
    let csv = cli.flag("--csv");
    let json = cli.flag("--json");
    cli.reject_unknown().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });

    // When telemetry export is requested, seed the trace with the Fig. 14
    // drill so the span/event tracks are populated.
    if sink.is_enabled() {
        let _ = Scenario::drill(DrillConfig::fig14()).sink(sink.clone()).run();
    }

    let tables = render_all_with(fast, &sink);
    if json {
        let rendered: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
        println!("[{}]", rendered.join(","));
    } else {
        for table in &tables {
            if csv {
                println!("# {}", table.title);
                println!("{}", table.to_csv());
            } else {
                println!("{}", table.to_markdown());
            }
        }
    }

    if let Err(e) = targs.write(&sink) {
        eprintln!("error: writing telemetry outputs: {e}");
        std::process::exit(1)
    }
}
