//! Prints the paper's Table 1 and Table 2.
//!
//! ```text
//! cargo run -p gemini-bench --bin tables
//! ```

use gemini_harness::experiments::tables::{table1_table, table2_table};

fn main() {
    println!("{}", table1_table().to_markdown());
    println!("{}", table2_table().to_markdown());
}
