//! Prints the paper's Table 1 and Table 2.
//!
//! ```text
//! cargo run -p gemini-bench --bin tables
//! cargo run -p gemini-bench --bin tables -- --metrics-out tables.prom
//! ```

use gemini_bench::BenchCli;
use gemini_harness::experiments::tables::{table1_table, table2_table};

fn main() {
    let cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    cli.reject_unknown().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let sink = targs.sink();
    for t in [table1_table(), table2_table()] {
        sink.counter_add("harness.artifacts_rendered", 1);
        sink.counter_add("harness.artifact_rows", t.rows.len() as u64);
        println!("{}", t.to_markdown());
    }
    if let Err(e) = targs.write(&sink) {
        eprintln!("error: writing telemetry outputs: {e}");
        std::process::exit(1)
    }
}
