//! Prints the paper's Table 1 and Table 2.
//!
//! ```text
//! cargo run -p gemini-bench --bin tables
//! cargo run -p gemini-bench --bin tables -- --metrics-out tables.prom
//! ```

use gemini_bench::TelemetryArgs;
use gemini_harness::experiments::tables::{table1_table, table2_table};

fn main() {
    let (targs, _) = TelemetryArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    targs.install_jobs();
    let sink = targs.sink();
    for t in [table1_table(), table2_table()] {
        sink.counter_add("harness.artifacts_rendered", 1);
        sink.counter_add("harness.artifact_rows", t.rows.len() as u64);
        println!("{}", t.to_markdown());
    }
    if let Err(e) = targs.write(&sink) {
        eprintln!("error: writing telemetry outputs: {e}");
        std::process::exit(1)
    }
}
