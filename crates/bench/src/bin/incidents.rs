//! The incident flight-recorder runner: chaos plans replayed through the
//! causal trace, stitched into per-incident postmortems with critical-path
//! analysis and nanosecond-exact wasted-time attribution.
//!
//! ```text
//! cargo run -p gemini-bench --bin incidents                  # full catalog, seed 1
//! cargo run -p gemini-bench --bin incidents -- --list        # plan names
//! cargo run -p gemini-bench --bin incidents -- --plan kill_mid_checkpoint --seed 1
//! cargo run -p gemini-bench --bin incidents -- --quick --jobs 2
//! cargo run -p gemini-bench --bin incidents -- --policy off --out incidents.json
//! cargo run -p gemini-bench --bin incidents -- --plan correlated_group_loss \
//!     --seed 2 --trace-out incidents.trace.json --metrics-out incidents.prom
//! ```
//!
//! For every run the bin prints the postmortem table (one row per
//! incident: detection latency and the serialize / replace / retrieve /
//! warmup legs), the attribution table (every wasted nanosecond keyed by
//! incident x phase x machine-group x policy-epoch), and the one-line
//! incident summaries. Stdout is byte-identical across reruns, `--jobs`
//! counts, and sink on/off — the flight recorder observes the run, it
//! never perturbs it.
//!
//! Exit status 2 if any run has an invariant violation, stitches to zero
//! incidents, or fails the exact-attribution check against its
//! [`WastedLedger`](gemini_core::WastedLedger).

use gemini_bench::BenchCli;
use gemini_core::policy::PolicySpec;
use gemini_harness::{incident, ChaosPlan, ChaosReport, Scenario};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// Renders one run's human-readable postmortem block to stdout and
/// returns `(incidents, exact, violations)` for the gate.
fn show(report: &ChaosReport) -> (usize, bool, usize) {
    let analysis = incident::analyze(report);
    print!("{}", incident::postmortem(report).to_markdown());
    println!();
    print!("{}", incident::attribution_table(report).to_markdown());
    println!();
    for line in incident::render_summary(report) {
        println!("{line}");
    }
    (
        analysis.incidents.len(),
        analysis.attribution_exact(),
        report.violations.len(),
    )
}

fn main() {
    let mut cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    let jobs = targs.effective_jobs();
    let list = cli.flag("--list");
    let quick = cli.flag("--quick");
    let plan_name = cli.value("--plan").unwrap_or_else(|e| fail(&e));
    let policy_arg = cli.value("--policy").unwrap_or_else(|e| fail(&e));
    let out = cli.value("--out").unwrap_or_else(|e| fail(&e));
    cli.reject_unknown()
        .unwrap_or_else(|e| fail(&format!("{e}; see --list")));
    let seeds = cli.seeds_or(&[1]);

    let policy: Option<PolicySpec> = match policy_arg.as_deref() {
        None | Some("adaptive") => Some(PolicySpec::adaptive()),
        Some("off") => None,
        Some(other) => fail(&format!("unknown --policy {other:?} (adaptive|off)")),
    };

    let mut catalog = ChaosPlan::catalog();
    if list {
        for p in &catalog {
            println!("{}", p.name);
        }
        return;
    }
    if quick {
        catalog.truncate(3);
    }

    let plans: Vec<ChaosPlan> = match &plan_name {
        Some(name) => {
            let plan = catalog
                .iter()
                .find(|p| &p.name == name)
                .unwrap_or_else(|| fail(&format!("unknown plan {name:?}; see --list")));
            vec![plan.clone()]
        }
        None => catalog,
    };

    let reports: Vec<ChaosReport> = if plans.len() == 1 && seeds.len() == 1 {
        // Single run: record through the (possibly enabled) sink so
        // --trace-out / --metrics-out capture spans, flow lanes and the
        // mirrored causal events alongside the printed postmortem.
        let sink = targs.sink();
        let mut scenario = Scenario::chaos(plans[0].clone())
            .seed(seeds[0])
            .sink(sink.clone());
        if let Some(spec) = policy.clone() {
            scenario = scenario.policy(spec);
        }
        let report = scenario
            .run()
            .unwrap_or_else(|e| fail(&format!("chaos run failed: {e}")));
        if let Err(e) = targs.write(&sink) {
            fail(&format!("writing telemetry exports: {e}"));
        }
        vec![report]
    } else {
        if targs.any() {
            fail("--trace-out/--metrics-out need a single --plan and --seed");
        }
        let mut scenario = Scenario::chaos_campaign(plans.clone())
            .seeds(&seeds)
            .jobs(jobs);
        if let Some(spec) = policy.clone() {
            scenario = scenario.policy(spec);
        }
        scenario
            .run()
            .unwrap_or_else(|e| fail(&format!("incident campaign failed: {e}")))
    };

    let mut incidents = 0usize;
    let mut inexact = 0usize;
    let mut empty = 0usize;
    let mut violations = 0usize;
    for (i, report) in reports.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let (n, exact, viol) = show(report);
        incidents += n;
        violations += viol;
        if n == 0 {
            empty += 1;
        }
        if !exact {
            inexact += 1;
        }
    }

    if let Some(path) = out {
        let docs: Vec<String> = reports
            .iter()
            .map(|r| incident::incidents_json(r).trim_end().to_string())
            .collect();
        let doc = format!("{{\n\"runs\": [\n{}\n]\n}}\n", docs.join(",\n"));
        if let Err(e) = std::fs::write(&path, doc) {
            fail(&format!("writing {path}: {e}"));
        }
        eprintln!("incident report: {path}");
    }

    eprintln!(
        "incidents: {} run(s), {} incident(s), {} inexact, {} empty, {} violation(s)",
        reports.len(),
        incidents,
        inexact,
        empty,
        violations
    );
    if violations > 0 || inexact > 0 || empty > 0 {
        std::process::exit(2);
    }
}
