//! Prints the calibrated iteration-timeline anchors for the models the
//! paper evaluates, next to the paper's measured values.
//!
//! `--metrics-out FILE` exports the calibration anchors as labeled gauges
//! (`calib_iteration_us{model="…"}` etc.) in Prometheus text.

use gemini_bench::BenchCli;
use gemini_cluster::InstanceType;
use gemini_training::{ModelConfig, TimelineBuilder};

fn main() {
    let cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    cli.reject_unknown().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let sink = targs.sink();
    println!("model          | iter (s) | net busy | net idle | largest idle | spans");
    println!("---------------|----------|----------|----------|--------------|------");
    for (name, inst) in [
        ("GPT-2 100B", InstanceType::p4d()),
        ("RoBERTa 100B", InstanceType::p4d()),
        ("BERT 100B", InstanceType::p4d()),
        ("GPT-2 10B", InstanceType::p3dn()),
        ("GPT-2 20B", InstanceType::p3dn()),
        ("GPT-2 40B", InstanceType::p3dn()),
        ("RoBERTa 40B", InstanceType::p3dn()),
        ("BERT 40B", InstanceType::p3dn()),
    ] {
        let model = ModelConfig::by_name(name).expect("table 2 model");
        let t = TimelineBuilder::new(model, inst, 16).build();
        let us = |d: gemini_sim::SimDuration| (d.as_nanos() / 1_000) as f64;
        sink.gauge_set_labeled("calib.iteration_us", "model", name, || {
            us(t.iteration_time())
        });
        sink.gauge_set_labeled("calib.net_idle_us", "model", name, || {
            us(t.network_idle_total())
        });
        sink.gauge_set_labeled("calib.largest_idle_us", "model", name, || {
            us(t.largest_idle_span())
        });
        println!(
            "{name:14} | {:8.1} | {:8.1} | {:8.1} | {:12.2} | {}",
            t.iteration_time().as_secs_f64(),
            t.network_busy_total().as_secs_f64(),
            t.network_idle_total().as_secs_f64(),
            t.largest_idle_span().as_secs_f64(),
            t.idle_spans().len()
        );
    }
    println!();
    println!("paper anchors: GPT-2 100B on 16 p4d = 62 s iterations, ~12.5 s idle;");
    println!("GPT-2 40B on 16 p3dn = ~45 s iterations, a few seconds idle (Figs. 7/8/13).");
    if let Err(e) = targs.write(&sink) {
        eprintln!("error: writing telemetry outputs: {e}");
        std::process::exit(1)
    }
}
