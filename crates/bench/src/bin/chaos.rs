//! The chaos campaign runner: seeded fault-injection plans with invariant
//! checking and byte-stable reports.
//!
//! ```text
//! cargo run -p gemini-bench --bin chaos                     # full catalog x seeds 1,2,3
//! cargo run -p gemini-bench --bin chaos -- --list           # plan names
//! cargo run -p gemini-bench --bin chaos -- --plan root_churn --seed 7
//! cargo run -p gemini-bench --bin chaos -- --seeds 1,2,3,4 --jobs 4
//! cargo run -p gemini-bench --bin chaos -- --plan kill_mid_checkpoint \
//!     --seed 1 --trace-out chaos.json --metrics-out chaos.prom
//! ```
//!
//! Stdout is byte-identical across reruns with the same arguments (and
//! across `--jobs` counts) — the CI chaos smoke diffs two same-seed runs.
//! The process exits non-zero if any run violates an invariant.

use gemini_bench::TelemetryArgs;
use gemini_harness::{run_chaos_campaign, run_chaos_with, ChaosPlan};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn main() {
    let (targs, rest) =
        TelemetryArgs::parse(std::env::args().skip(1)).unwrap_or_else(|e| fail(&e));
    let jobs = targs.install_jobs();

    let mut plan_name: Option<String> = None;
    let mut seed: u64 = 1;
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut single_seed = false;
    let mut list = false;
    let mut it = rest.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--plan" => {
                plan_name =
                    Some(it.next().unwrap_or_else(|| fail("--plan requires a NAME")));
            }
            "--seed" => {
                let s = it.next().unwrap_or_else(|| fail("--seed requires an N"));
                seed = s
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed expects an integer, got {s:?}")));
                single_seed = true;
            }
            "--seeds" => {
                let s = it.next().unwrap_or_else(|| fail("--seeds requires a list"));
                seeds = s
                    .split(',')
                    .map(|x| {
                        x.trim().parse().unwrap_or_else(|_| {
                            fail(&format!("--seeds expects integers, got {x:?}"))
                        })
                    })
                    .collect();
            }
            other => fail(&format!("unknown argument {other:?}; see --list")),
        }
    }

    let catalog = ChaosPlan::catalog();
    if list {
        for p in &catalog {
            println!("{}", p.name);
        }
        return;
    }

    let plans: Vec<ChaosPlan> = match &plan_name {
        Some(name) => {
            let plan = catalog
                .iter()
                .find(|p| &p.name == name)
                .unwrap_or_else(|| fail(&format!("unknown plan {name:?}; see --list")));
            vec![plan.clone()]
        }
        None => catalog,
    };
    if single_seed {
        seeds = vec![seed];
    }

    let mut violations = 0usize;
    if plans.len() == 1 && seeds.len() == 1 {
        // Single run: record through the (possibly enabled) sink so
        // --trace-out / --metrics-out capture the whole timeline.
        let sink = targs.sink();
        let report = run_chaos_with(&plans[0], seeds[0], sink.clone())
            .unwrap_or_else(|e| fail(&format!("chaos run failed: {e}")));
        print!("{}", report.render());
        violations += report.violations.len();
        if let Err(e) = targs.write(&sink) {
            fail(&format!("writing telemetry exports: {e}"));
        }
    } else {
        let reports = run_chaos_campaign(&plans, &seeds, jobs)
            .unwrap_or_else(|e| fail(&format!("chaos campaign failed: {e}")));
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", report.render());
            violations += report.violations.len();
        }
        eprintln!(
            "chaos campaign: {} plan(s) x {} seed(s), {} violation(s)",
            plans.len(),
            seeds.len(),
            violations
        );
    }
    if violations > 0 {
        std::process::exit(2);
    }
}
