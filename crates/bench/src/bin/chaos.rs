//! The chaos campaign runner: seeded fault-injection plans with invariant
//! checking and byte-stable reports.
//!
//! ```text
//! cargo run -p gemini-bench --bin chaos                     # full catalog x seeds 1,2,3
//! cargo run -p gemini-bench --bin chaos -- --list           # plan names
//! cargo run -p gemini-bench --bin chaos -- --plan root_churn --seed 7
//! cargo run -p gemini-bench --bin chaos -- --seeds 1,2,3,4 --jobs 4
//! cargo run -p gemini-bench --bin chaos -- --plan kill_mid_checkpoint \
//!     --seed 1 --trace-out chaos.json --metrics-out chaos.prom
//! ```
//!
//! Stdout is byte-identical across reruns with the same arguments (and
//! across `--jobs` counts) — the CI chaos smoke diffs two same-seed runs.
//! The process exits non-zero if any run violates an invariant.

use gemini_bench::BenchCli;
use gemini_harness::{run_chaos_campaign, ChaosPlan, Scenario};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    let jobs = targs.effective_jobs();
    let list = cli.flag("--list");
    let plan_name = cli.value("--plan").unwrap_or_else(|e| fail(&e));
    cli.reject_unknown()
        .unwrap_or_else(|e| fail(&format!("{e}; see --list")));
    let seeds = cli.seeds_or(&[1, 2, 3]);

    // `--list` and `--plan` resolve against the extended catalog (which
    // adds the 10k-machine fleet plan); a bare run sweeps the paper-scale
    // catalog only, keeping the default campaign matrix identical.
    let extended = ChaosPlan::extended_catalog();
    if list {
        for p in &extended {
            println!("{}", p.name);
        }
        return;
    }

    let plans: Vec<ChaosPlan> = match &plan_name {
        Some(name) => {
            let plan = extended
                .iter()
                .find(|p| &p.name == name)
                .unwrap_or_else(|| fail(&format!("unknown plan {name:?}; see --list")));
            vec![plan.clone()]
        }
        None => ChaosPlan::catalog(),
    };

    let mut violations = 0usize;
    if plans.len() == 1 && seeds.len() == 1 {
        // Single run: record through the (possibly enabled) sink so
        // --trace-out / --metrics-out capture the whole timeline.
        let sink = targs.sink();
        let report = Scenario::chaos(plans[0].clone())
            .seed(seeds[0])
            .sink(sink.clone())
            .run()
            .unwrap_or_else(|e| fail(&format!("chaos run failed: {e}")));
        print!("{}", report.render());
        violations += report.violations.len();
        if let Err(e) = targs.write(&sink) {
            fail(&format!("writing telemetry exports: {e}"));
        }
    } else {
        let reports = run_chaos_campaign(&plans, &seeds, jobs)
            .unwrap_or_else(|e| fail(&format!("chaos campaign failed: {e}")));
        for (i, report) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", report.render());
            violations += report.violations.len();
        }
        eprintln!(
            "chaos campaign: {} plan(s) x {} seed(s), {} violation(s)",
            plans.len(),
            seeds.len(),
            violations
        );
    }
    if violations > 0 {
        std::process::exit(2);
    }
}
