//! Perf-trajectory reporter for the deterministic parallel engine and the
//! placement hot-path kernels. Writes `BENCH_harness.json` at the repo
//! root (override with `--out FILE`).
//!
//! ```text
//! cargo run --release -p gemini-bench --bin perf
//! cargo run --release -p gemini-bench --bin perf -- --jobs 8 --quick --out /tmp/b.json
//! ```
//!
//! This is the one binary that records the **wall-clock** half of the
//! `parallel.*` metric family (`parallel.jobs`, `parallel.speedup`,
//! `parallel.wall_us`, `parallel.busy_us`) via
//! [`gemini_harness::par::record_stats_timing`] — deliberately kept off
//! the figure/table paths, whose telemetry exports are byte-compared
//! across job counts. See `docs/PERFORMANCE.md`.
//!
//! Measurements:
//!
//! 1. **Figure regeneration** — full `render_all` serial vs `--jobs N`,
//!    asserting the rendered markdown is byte-identical.
//! 2. **Monte-Carlo recovery kernel** — bitmask fast path
//!    (`sample_mask` + `FatalSets`) vs the retained `BTreeSet` reference
//!    kernel, in trials/second.
//! 3. **Exact enumeration** — Gosper-iterated subset walk at
//!    C(50, 7) ≈ 9.99 × 10⁷ subsets (the old implementation's 10⁷ cap
//!    refused this outright), in subsets/second.
//! 4. **Recoverability check** — `recoverable_mask` vs the `BTreeSet`
//!    wrapper, in checks/second.
//! 5. **DES scheduler** — the timing-wheel engine backend vs the
//!    reference binary heap on three workloads (dense timers,
//!    heavy-cancel heartbeats, chaos-plan replay), in events/second,
//!    with fingerprints asserted identical across backends. Recorded as
//!    `des.*` gauges and the `"des"` report section.

use gemini_bench::{run_des, BenchCli, DesWorkload, FLEET_MACHINES, FLEET_MONTH_NS};
use gemini_core::placement::analytic::analytic_recovery_probability;
use gemini_core::placement::probability::{
    binomial, exact_recovery_probability, monte_carlo_recovery_probability_jobs,
    monte_carlo_recovery_probability_reference, FatalSets,
};
use gemini_core::Placement;
use gemini_harness::experiments::{render_all_jobs, render_all_stats};
use gemini_harness::par;
use gemini_sim::DetRng;
use std::collections::BTreeSet;
use std::time::Instant;

fn secs(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

fn main() {
    let mut cli = BenchCli::from_env();
    let targs = cli.telemetry.clone();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Default to a parallel run even when --jobs/GEMINI_JOBS is absent:
    // the whole point is to exercise the pool. Speedup is bounded by the
    // host's core count (reported as "cpus" in the output).
    let jobs = match targs.jobs {
        Some(j) => j,
        None => gemini_harness::par::default_jobs().max(cpus.max(2)),
    };
    let quick = cli.flag("--quick");
    let out_path = cli
        .value("--out")
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1)
        })
        .unwrap_or_else(|| "BENCH_harness.json".to_string());
    cli.reject_unknown().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1)
    });
    let sink = gemini_telemetry::TelemetrySink::enabled();

    // ---- 1. figure regeneration: serial vs parallel ---------------------
    // Warm once (OnceLock tables, allocator) so both sides start equal.
    let _ = render_all_jobs(true, 1);
    let mut serial_tables = Vec::new();
    let figures_serial_s = secs(|| serial_tables = render_all_jobs(false, 1));
    let t0 = Instant::now();
    let (par_tables, stats) = render_all_stats(false, jobs);
    let figures_par_s = t0.elapsed().as_secs_f64();
    par::record_stats_timing(&sink, &stats);
    let serial_md: String = serial_tables.iter().map(|t| t.to_markdown()).collect();
    let par_md: String = par_tables.iter().map(|t| t.to_markdown()).collect();
    let byte_identical = serial_md == par_md;
    assert!(byte_identical, "parallel render diverged from serial");
    // When the pool's granularity model falls back to the literal serial
    // loop (single-core host, or a task set too cheap to split), both
    // timed sides ran the same code path and the pool's speedup is 1.0 by
    // construction — record it as such rather than as timing noise. On a
    // genuinely parallel run the measured ratio stands, and the figures
    // path must never lose to serial again (the 0.836x regression).
    let figures_fallback = stats.serial_fallback() || stats.jobs <= 1;
    let figures_speedup = if figures_fallback {
        1.0
    } else {
        figures_serial_s / figures_par_s.max(1e-12)
    };
    assert!(
        figures_speedup >= 1.0,
        "figures --jobs {jobs} lost to serial: {figures_speedup:.3}x \
         (serial {figures_serial_s:.3}s vs parallel {figures_par_s:.3}s)"
    );

    // ---- 2. Monte-Carlo kernel: bitmask vs reference --------------------
    let placement = Placement::mixed(32, 2).expect("valid placement");
    let trials: u32 = if quick { 20_000 } else { 400_000 };
    let mut p_fast = 0.0;
    let mc_fast_s = secs(|| {
        p_fast =
            monte_carlo_recovery_probability_jobs(&placement, 2, trials, &mut DetRng::new(7), 1);
    });
    let mut p_ref = 0.0;
    let mc_ref_s = secs(|| {
        p_ref =
            monte_carlo_recovery_probability_reference(&placement, 2, trials, &mut DetRng::new(7));
    });
    assert!((p_fast - p_ref).abs() < 0.02, "{p_fast} vs {p_ref}");
    let mut p_par = 0.0;
    let mc_par_s = secs(|| {
        p_par =
            monte_carlo_recovery_probability_jobs(&placement, 2, trials, &mut DetRng::new(7), jobs);
    });
    assert_eq!(p_fast.to_bits(), p_par.to_bits(), "MC not job-invariant");

    // ---- 3. exact enumeration at ~1e8 subsets ---------------------------
    let (en_n, en_k) = if quick { (40usize, 7usize) } else { (50, 7) };
    let enum_placement = Placement::mixed(en_n, 2).expect("valid placement");
    let subsets = binomial(en_n as u64, en_k as u64);
    let mut p_enum = None;
    let enum_s = secs(|| {
        p_enum = exact_recovery_probability(&enum_placement, en_k);
    });
    let p_enum = p_enum.expect("within the enumeration cap");

    // ---- 4. recoverability check: fatal-mask kernel vs BTreeSet entry ---
    // `FatalSets::recoverable` is the deduplicated, superset-minimized
    // bitmask kernel the enumerator and MC sampler sit on; the BTreeSet
    // entry point is the legacy-shaped API (which now folds to a mask but
    // still pays the set walk and the full per-machine host scan).
    let checks: u64 = if quick { 200_000 } else { 2_000_000 };
    let fatal = FatalSets::from_placement(&placement).expect("N <= 128");
    let mut rng = DetRng::new(13);
    let failed_masks: Vec<u128> = (0..1024).map(|_| rng.sample_mask(32, 3)).collect();
    let failed_sets: Vec<BTreeSet<usize>> = failed_masks
        .iter()
        .map(|&m| (0..32).filter(|&i| m >> i & 1 == 1).collect())
        .collect();
    let mut acc = 0u64;
    let mask_s = secs(|| {
        for i in 0..checks {
            acc += fatal.recoverable(failed_masks[(i % 1024) as usize]) as u64;
        }
    });
    let mut acc2 = 0u64;
    let set_s = secs(|| {
        for i in 0..checks {
            acc2 += placement.recoverable(&failed_sets[(i % 1024) as usize]) as u64;
        }
    });
    assert_eq!(acc, acc2, "mask and set kernels disagree");

    // ---- 5. DES scheduler: timing wheel vs reference heap ---------------
    // Each workload runs on both engine backends; the fingerprints
    // (processed count, final clock, event-stream checksum) must match, so
    // the timed runs double as an equivalence check. `des.*` gauges land in
    // the telemetry export; the JSON section feeds docs/PERFORMANCE.md.
    let des_events: u64 = if quick { 200_000 } else { 2_000_000 };
    use gemini_sim::QueueBackend;
    let mut des_rows = Vec::new();
    for w in DesWorkload::ALL {
        // Warm both backends once so allocator effects cancel out.
        let _ = run_des(w, QueueBackend::TimingWheel, des_events / 20);
        let _ = run_des(w, QueueBackend::ReferenceHeap, des_events / 20);
        let mut wheel_fp = None;
        let wheel_s = secs(|| wheel_fp = Some(run_des(w, QueueBackend::TimingWheel, des_events)));
        let mut heap_fp = None;
        let heap_s = secs(|| heap_fp = Some(run_des(w, QueueBackend::ReferenceHeap, des_events)));
        let (wheel_fp, heap_fp) = (wheel_fp.unwrap(), heap_fp.unwrap());
        assert_eq!(
            wheel_fp,
            heap_fp,
            "backend divergence on {} while benchmarking",
            w.key()
        );
        assert_eq!(
            wheel_fp.processed,
            des_events,
            "{} did not consume its whole event budget",
            w.key()
        );
        let speedup = heap_s / wheel_s.max(1e-12);
        let processed = wheel_fp.processed;
        sink.gauge_set_labeled("des.wheel_events_per_s", "workload", w.key(), || {
            processed as f64 / wheel_s.max(1e-12)
        });
        sink.gauge_set_labeled("des.heap_events_per_s", "workload", w.key(), || {
            processed as f64 / heap_s.max(1e-12)
        });
        sink.gauge_set_labeled("des.speedup", "workload", w.key(), || speedup);
        des_rows.push((w, processed, wheel_s, heap_s, speedup));
    }
    sink.gauge_set("des.events", || des_events as f64);

    // ---- 6. fleet scale: analytic kernel + month-long DES ---------------
    // The DP/analytic recoverability kernel at the ROADMAP's fleet
    // frontier: exact probability at N = 10,000, k = 7, where enumeration
    // (C(10000,7) ~ 2e24 subsets) is intractable. Averaged over reps; the
    // acceptance floor is < 10 ms per evaluation.
    let scale_n = 10_000usize;
    let scale_k = 7usize;
    let dp_placement = Placement::mixed(scale_n, 2).expect("valid placement");
    let dp_reps: u32 = if quick { 20 } else { 100 };
    let mut p_dp = 0.0;
    let dp_total_s = secs(|| {
        for _ in 0..dp_reps {
            p_dp = analytic_recovery_probability(&dp_placement, scale_k);
        }
    });
    let dp_ms = dp_total_s * 1e3 / f64::from(dp_reps);
    assert!(
        dp_ms < 10.0,
        "analytic kernel too slow at N={scale_n}: {dp_ms:.3} ms per evaluation"
    );
    // Differential anchor on the very case enumeration just timed: the
    // analytic kernel must reproduce the Gosper walk bit-for-bit.
    let p_dp_enum = analytic_recovery_probability(&enum_placement, en_k);
    assert_eq!(
        p_dp_enum.to_bits(),
        p_enum.to_bits(),
        "analytic kernel diverged from enumeration at n={en_n}, k={en_k}: \
         {p_dp_enum} vs {p_enum}"
    );
    sink.gauge_set("scale.dp_ms", || dp_ms);

    // A month of simulated time with 10k machines' heartbeat/timeout
    // chains live on the timing wheel — heavy-cancel at fleet population,
    // with the heartbeat period tuned so the processed-event budget
    // carries the clock across 30 days. Both backends must agree on the
    // fingerprint, and the wheel must hold the events/s floor.
    let fleet_events: u64 = if quick { 400_000 } else { 4_000_000 };
    let _ = run_des(
        DesWorkload::FleetMonth,
        QueueBackend::TimingWheel,
        fleet_events / 20,
    );
    let mut fleet_fp = None;
    let fleet_s = secs(|| {
        fleet_fp = Some(run_des(
            DesWorkload::FleetMonth,
            QueueBackend::TimingWheel,
            fleet_events,
        ))
    });
    let fleet_fp = fleet_fp.unwrap();
    let fleet_heap = run_des(DesWorkload::FleetMonth, QueueBackend::ReferenceHeap, fleet_events);
    assert_eq!(fleet_fp, fleet_heap, "fleet-month backend divergence");
    assert!(
        fleet_fp.now_ns >= FLEET_MONTH_NS,
        "fleet DES stopped at {} simulated days, short of a month",
        fleet_fp.now_ns as f64 / 86_400e9
    );
    let fleet_eps = fleet_fp.processed as f64 / fleet_s.max(1e-12);
    assert!(
        fleet_eps >= 5e6,
        "fleet DES below the 5M events/s floor: {:.2}M events/s",
        fleet_eps / 1e6
    );
    let sim_days = fleet_fp.now_ns as f64 / 86_400e9;
    sink.gauge_set("scale.fleet_events_per_s", || fleet_eps);
    sink.gauge_set("scale.fleet_machines", || FLEET_MACHINES as f64);
    let des_json: String = des_rows
        .iter()
        .map(|(w, processed, wheel_s, heap_s, speedup)| {
            format!(
                "    \"{key}\": {{\n      \"events\": {processed},\n      \
                 \"wheel_s\": {wheel_s:.6},\n      \"heap_s\": {heap_s:.6},\n      \
                 \"wheel_events_per_s\": {wps:.1},\n      \
                 \"heap_events_per_s\": {hps:.1},\n      \"speedup\": {speedup:.3}\n    }}",
                key = w.key(),
                wps = *processed as f64 / wheel_s.max(1e-12),
                hps = *processed as f64 / heap_s.max(1e-12),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    // Assembled by hand (no serde derive on the report shape) so the
    // binary builds identically under the offline stub toolchain.
    let pretty = format!(
        "{{\n  \"bench\": \"harness\",\n  \"quick\": {quick},\n  \"jobs\": {jobs},\n  \
         \"cpus\": {cpus},\n  \
         \"figures\": {{\n    \"serial_s\": {figures_serial_s:.6},\n    \
         \"parallel_s\": {figures_par_s:.6},\n    \"speedup\": {figures_speedup:.3},\n    \
         \"serial_fallback\": {figures_fallback},\n    \
         \"byte_identical\": {byte_identical},\n    \"artifacts\": {artifacts}\n  }},\n  \
         \"monte_carlo\": {{\n    \"trials\": {trials},\n    \"bitmask_s\": {mc_fast_s:.6},\n    \
         \"reference_s\": {mc_ref_s:.6},\n    \"parallel_s\": {mc_par_s:.6},\n    \
         \"bitmask_trials_per_s\": {bm_tps:.1},\n    \"reference_trials_per_s\": {ref_tps:.1},\n    \
         \"kernel_speedup\": {mc_speedup:.3},\n    \"estimate\": {p_fast:.6}\n  }},\n  \
         \"enumeration\": {{\n    \"n\": {en_n},\n    \"k\": {en_k},\n    \
         \"subsets\": {subsets:.0},\n    \"wall_s\": {enum_s:.6},\n    \
         \"subsets_per_s\": {en_sps:.1},\n    \"probability\": {p_enum:.9}\n  }},\n  \
         \"recoverable\": {{\n    \"checks\": {checks},\n    \"mask_s\": {mask_s:.6},\n    \
         \"btreeset_s\": {set_s:.6},\n    \"mask_checks_per_s\": {mask_cps:.1},\n    \
         \"speedup\": {rec_speedup:.3}\n  }},\n  \"des\": {{\n{des_json}\n  }},\n  \
         \"scale\": {{\n    \
         \"dp\": {{\n      \"n\": {scale_n},\n      \"k\": {scale_k},\n      \
         \"reps\": {dp_reps},\n      \"dp_ms\": {dp_ms:.4},\n      \
         \"probability\": {p_dp:.9}\n    }},\n    \
         \"fleet_des\": {{\n      \"machines\": {fleet_machines},\n      \
         \"events\": {fleet_processed},\n      \"sim_days\": {sim_days:.2},\n      \
         \"wall_s\": {fleet_s:.6},\n      \"events_per_s\": {fleet_eps:.1}\n    }}\n  }},\n  \
         \"parallel_metrics\": {{\n    \
         \"tasks\": {tasks},\n    \"pool_jobs\": {pool_jobs},\n    \
         \"wall_us\": {wall_us:.1},\n    \"busy_us\": {busy_us:.1}\n  }}\n}}",
        artifacts = serial_tables.len(),
        fleet_machines = FLEET_MACHINES,
        fleet_processed = fleet_fp.processed,
        bm_tps = trials as f64 / mc_fast_s.max(1e-12),
        ref_tps = trials as f64 / mc_ref_s.max(1e-12),
        mc_speedup = mc_ref_s / mc_fast_s.max(1e-12),
        en_sps = subsets / enum_s.max(1e-12),
        mask_cps = checks as f64 / mask_s.max(1e-12),
        rec_speedup = set_s / mask_s.max(1e-12),
        tasks = stats.tasks,
        pool_jobs = stats.jobs,
        wall_us = stats.wall.as_secs_f64() * 1e6,
        busy_us = stats.busy.as_secs_f64() * 1e6,
    );
    // Sanity: the report must be valid JSON (serde_json is a real dep in
    // the cargo build; the offline stub exposes from_str too).
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(&pretty);
    assert!(parsed.is_ok(), "perf report is not valid JSON");
    std::fs::write(&out_path, format!("{pretty}\n")).unwrap_or_else(|e| {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1)
    });
    println!("{pretty}");
    eprintln!(
        "figures: {figures_serial_s:.3}s -> {figures_par_s:.3}s at --jobs {jobs} \
         ({figures_speedup:.2}x, byte-identical; host has {cpus} cpu(s))"
    );
    eprintln!(
        "mc kernel: {:.2}x over reference; enumeration: {:.1}M subsets/s; \
         recoverable: {:.2}x over BTreeSet",
        mc_ref_s / mc_fast_s.max(1e-12),
        subsets / enum_s.max(1e-12) / 1e6,
        set_s / mask_s.max(1e-12),
    );
    for (w, processed, wheel_s, heap_s, speedup) in &des_rows {
        eprintln!(
            "des {}: wheel {:.1}M ev/s vs heap {:.1}M ev/s ({speedup:.2}x)",
            w.key(),
            *processed as f64 / wheel_s.max(1e-12) / 1e6,
            *processed as f64 / heap_s.max(1e-12) / 1e6,
        );
    }
    eprintln!(
        "scale: analytic N={scale_n} k={scale_k} in {dp_ms:.3} ms (p={p_dp:.6}); \
         fleet DES {machines} machines x {sim_days:.0} simulated days at \
         {:.1}M events/s",
        fleet_eps / 1e6,
        machines = FLEET_MACHINES,
    );
    eprintln!("wrote {out_path}");
    if let Err(e) = targs.write(&sink) {
        eprintln!("error: writing telemetry outputs: {e}");
        std::process::exit(1)
    }
}
