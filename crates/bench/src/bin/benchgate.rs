//! The bench-trajectory regression gate: compares a freshly generated
//! bench report (`perf --quick --out …` / `policy --quick --out …`)
//! against a committed baseline and fails CI when a deterministic metric
//! drifts beyond the tolerance.
//!
//! ```text
//! cargo run -p gemini-bench --bin benchgate -- \
//!     --fresh /tmp/bench_quick.json \
//!     --baseline crates/bench/baselines/perf_quick.json \
//!     --tolerance 25
//! ```
//!
//! Machine-dependent readings (wall-clock seconds, speedups, throughput
//! rates, pool sizes) are skipped everywhere *except* the `policy`
//! section, whose `*_s` values are simulated time and therefore exact,
//! and the `scale` section, where the DP-kernel latency and the fleet
//! DES event rate are the floors being guarded and so are gated at the
//! same tolerance as the deterministic metrics.
//! Deterministic metrics — event counts, trial counts, byte-identity
//! flags, policy rework/downtime/overhead — are compared with a relative
//! tolerance (default 25%) over an absolute floor (`--abs-eps`, default
//! 1e-6): a baseline at or near zero would turn float noise into an
//! unbounded relative drift, so any |fresh − baseline| within the floor
//! passes outright. Every numeric key present in the baseline
//! must also exist in the fresh report (schema regressions fail too).
//! Exit status 2 on any regression or missing key.
//!
//! The parser is a deliberately small recursive-descent walk that
//! flattens numeric (and boolean) leaves into `section.key` paths — the
//! report files are produced by our own bins, not arbitrary JSON.

use std::collections::BTreeMap;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// A minimal JSON reader that records every numeric leaf (booleans count
/// as 0/1) under its dotted path. Strings and nulls are parsed but not
/// recorded; array elements get their index as a path segment.
struct Flattener<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Flattener<'a> {
    fn new(text: &'a str) -> Self {
        Flattener {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(want) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", want as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.error("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'u' => {
                            // \uXXXX — skip the hex digits; escaped
                            // unicode never appears in our key names.
                            self.pos += 4.min(self.bytes.len() - self.pos);
                            out.push('?');
                        }
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        other => out.push(other as char),
                    }
                }
                other => out.push(other as char),
            }
        }
    }

    fn value(
        &mut self,
        path: &mut Vec<String>,
        out: &mut BTreeMap<String, f64>,
    ) -> Result<(), String> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(());
                }
                loop {
                    let key = self.string()?;
                    self.expect(b':')?;
                    path.push(key);
                    self.value(path, out)?;
                    path.pop();
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.error("expected , or } in object")),
                    }
                }
            }
            b'[' => {
                self.pos += 1;
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(());
                }
                let mut index = 0usize;
                loop {
                    path.push(index.to_string());
                    self.value(path, out)?;
                    path.pop();
                    index += 1;
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(());
                        }
                        _ => return Err(self.error("expected , or ] in array")),
                    }
                }
            }
            b'"' => {
                self.string()?;
                Ok(())
            }
            b't' => self.literal("true", path, out, Some(1.0)),
            b'f' => self.literal("false", path, out, Some(0.0)),
            b'n' => self.literal("null", path, out, None),
            _ => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let raw = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("non-utf8 number"))?;
                let n: f64 = raw
                    .parse()
                    .map_err(|_| self.error(&format!("bad number {raw:?}")))?;
                out.insert(path.join("."), n);
                Ok(())
            }
        }
    }

    fn literal(
        &mut self,
        word: &str,
        path: &mut [String],
        out: &mut BTreeMap<String, f64>,
        record: Option<f64>,
    ) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            if let Some(n) = record {
                out.insert(path.join("."), n);
            }
            Ok(())
        } else {
            Err(self.error(&format!("expected {word}")))
        }
    }
}

fn flatten(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
    let mut out = BTreeMap::new();
    let mut stack = Vec::new();
    let mut parser = Flattener::new(&text);
    parser
        .value(&mut stack, &mut out)
        .unwrap_or_else(|e| fail(&format!("parsing {path}: {e}")));
    out
}

/// Whether a dotted path is machine-dependent and must not be gated.
/// Simulated-time values under `policy.` are deterministic and kept.
fn skipped(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    if leaf == "quick" || leaf == "jobs" || leaf == "cpus" || leaf == "pool_jobs" {
        return true;
    }
    let policy_section = path == "policy" || path.starts_with("policy.");
    if policy_section {
        // Only genuinely-wall-clock keys are volatile here.
        return leaf.contains("wall") || leaf.contains("speedup") || leaf.contains("per_s");
    }
    if path.starts_with("scale.") {
        // The fleet-scale floors ARE the point of this section: the DP
        // kernel latency (`dp_ms`) and the wheel's sustained event rate
        // (`events_per_s`) are gated at the standard tolerance even
        // though rate-like keys are skipped elsewhere. Only the raw
        // wall-clock reading stays volatile; counts, sim_days and the
        // recovery probability are deterministic and gate exactly.
        return leaf.contains("wall");
    }
    leaf.contains("wall")
        || leaf.contains("speedup")
        || leaf.contains("per_s")
        || leaf.contains("busy")
        || leaf.ends_with("_s")
        || leaf.ends_with("_us")
}

/// Whether `value` drifted from `base` beyond the gate. Relative drift
/// alone explodes against a zero or near-zero baseline (the denominator
/// clamps at 1e-12, so a 1e-9 absolute wobble in a "0.0" metric reads as
/// +100 000 % and fails the gate); any |value − base| within the
/// absolute floor `abs_eps` passes first, and only then is the relative
/// tolerance applied.
fn drift_exceeds(value: f64, base: f64, tolerance: f64, abs_eps: f64) -> bool {
    let abs = (value - base).abs();
    if abs <= abs_eps {
        return false;
    }
    let denom = base.abs().max(1e-12);
    abs / denom > tolerance
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut fresh_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut tolerance_pct = 25.0f64;
    let mut abs_eps = 1e-6f64;
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| fail(&format!("{what} needs a value")))
        };
        match arg.as_str() {
            "--fresh" => fresh_path = Some(take("--fresh")),
            "--baseline" => baseline_path = Some(take("--baseline")),
            "--tolerance" => {
                let raw = take("--tolerance");
                tolerance_pct = raw
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --tolerance {raw:?}")));
            }
            "--abs-eps" => {
                let raw = take("--abs-eps");
                abs_eps = raw
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("bad --abs-eps {raw:?}")));
            }
            other => fail(&format!(
                "unknown argument {other:?} \
                 (--fresh F --baseline F [--tolerance PCT] [--abs-eps X])"
            )),
        }
    }
    let fresh_path = fresh_path.unwrap_or_else(|| fail("--fresh is required"));
    let baseline_path = baseline_path.unwrap_or_else(|| fail("--baseline is required"));

    let fresh = flatten(&fresh_path);
    let baseline = flatten(&baseline_path);

    if let (Some(fq), Some(bq)) = (fresh.get("quick"), baseline.get("quick")) {
        if fq != bq {
            fail("fresh and baseline were produced at different depths (quick flags differ)");
        }
    }

    let tolerance = tolerance_pct / 100.0;
    let mut compared = 0usize;
    let mut skipped_count = 0usize;
    let mut failures = 0usize;
    for (path, base) in &baseline {
        if skipped(path) {
            skipped_count += 1;
            continue;
        }
        match fresh.get(path) {
            None => {
                eprintln!("  MISSING    {path}: baseline={base} absent from fresh report");
                failures += 1;
            }
            Some(value) => {
                compared += 1;
                if drift_exceeds(*value, *base, tolerance, abs_eps) {
                    let drift = (value - base) / base.abs().max(1e-12);
                    eprintln!(
                        "  REGRESSION {path}: baseline={base} fresh={value} ({:+.1}%)",
                        drift * 100.0
                    );
                    failures += 1;
                }
            }
        }
    }

    eprintln!(
        "benchgate: {compared} metric(s) compared, {skipped_count} skipped \
         (machine-dependent), {failures} failure(s), tolerance {tolerance_pct}%"
    );
    if failures > 0 {
        std::process::exit(2);
    }
}

#[cfg(test)]
mod tests {
    use super::drift_exceeds;

    const EPS: f64 = 1e-6;

    #[test]
    fn zero_baseline_tolerates_float_noise() {
        // Without the absolute floor this is a 1e8-percent "regression".
        assert!(!drift_exceeds(1e-9, 0.0, 0.25, EPS));
        assert!(!drift_exceeds(-1e-9, 0.0, 0.25, EPS));
        assert!(!drift_exceeds(0.0, 0.0, 0.25, EPS));
    }

    #[test]
    fn zero_baseline_still_catches_real_drift() {
        // A metric that was 0 and became 3.2 is a genuine regression.
        assert!(drift_exceeds(3.2, 0.0, 0.25, EPS));
        assert!(drift_exceeds(2e-6, 0.0, 0.25, EPS));
    }

    #[test]
    fn near_zero_baseline_uses_the_floor_not_the_ratio() {
        // base 1e-9: a same-magnitude wobble is a 100% relative drift but
        // sits far inside the absolute floor.
        assert!(!drift_exceeds(2e-9, 1e-9, 0.25, EPS));
        assert!(drift_exceeds(0.5, 1e-9, 0.25, EPS));
    }

    #[test]
    fn normal_baselines_keep_the_relative_gate() {
        assert!(!drift_exceeds(110.0, 100.0, 0.25, EPS));
        assert!(drift_exceeds(130.0, 100.0, 0.25, EPS));
        assert!(drift_exceeds(70.0, 100.0, 0.25, EPS));
        // Exactly on the tolerance edge passes (strict >).
        assert!(!drift_exceeds(125.0, 100.0, 0.25, 0.0));
    }

    #[test]
    fn zero_floor_reproduces_the_old_behaviour() {
        // abs_eps = 0 is the historical gate: near-zero baselines explode.
        assert!(drift_exceeds(1e-9, 0.0, 0.25, 0.0));
    }
}
