//! The scenario-as-a-service benchmark: drive a [`ServiceEngine`] with a
//! deterministic mixed query batch and report serving metrics.
//!
//! ```text
//! cargo run --release -p gemini-bench --bin service             # full batch (>= 1000 queries)
//! cargo run -p gemini-bench --bin service -- --quick            # CI smoke batch
//! cargo run -p gemini-bench --bin service -- --jobs 8 --out /tmp/bench.json
//! ```
//!
//! Checks (the process exits non-zero when any fails):
//!
//! 1. **Determinism** — the batch's responses are byte-identical at
//!    `--jobs 1` (fresh engine) vs `--jobs N` (fresh engine) vs a warm
//!    rerun on the same engine. This is the service's load-bearing
//!    guarantee; see `docs/SERVICE.md`.
//! 2. **Error isolation** — the malformed queries seeded into the batch
//!    produce exactly per-query error responses, never a crash.
//! 3. **Single-flight dedup** — identical queries issued concurrently
//!    (thread barrier) collapse onto one execution: the dedup counter is
//!    asserted `> 0`.
//!
//! The summary is spliced into `BENCH_harness.json` (`--out FILE`
//! overrides) as the `"service"` section. Deterministic keys (`queries`,
//! `errors`, `cache_hit_rate`, the invariant booleans) are gated by
//! benchgate at the standard tolerance; wall-clock keys (`wall_s`,
//! `queries_per_s`, `p50_us`, `p99_us`) are machine-dependent and
//! auto-skipped.

use gemini_bench::BenchCli;
use gemini_service::ServiceEngine;
use gemini_telemetry::TelemetrySink;

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// The deterministic mixed batch. Repetition is deliberate: repeated
/// placement specs exercise the recoverability memo, repeated whole
/// queries give the single-flight layer collapse opportunities, and the
/// malformed tail proves error isolation.
fn queries(quick: bool) -> Vec<String> {
    let mut lines = Vec::new();
    let (rec_n, drill_n, chaos_n, look_n, bad_n) = if quick {
        (40, 8, 2, 1, 2)
    } else {
        (624, 360, 12, 4, 8)
    };
    // Recoverability curves over a small spec space, cycled so most
    // queries re-ask an already-answered spec.
    let machines = [4usize, 8, 12, 16, 24, 32, 48, 64];
    let replicas = [1usize, 2, 4];
    for i in 0..rec_n {
        let n = machines[i % machines.len()];
        let m = replicas[(i / machines.len()) % replicas.len()];
        let k = 2 + (i % 3) * 2;
        lines.push(format!(
            "{{\"id\":\"rec-{i}\",\"kind\":\"recoverability\",\"machines\":{n},\"replicas\":{m},\"max_k\":{k}}}"
        ));
    }
    // Drills over a handful of distinct configs, repeated.
    let drill_machines = [8usize, 16];
    for i in 0..drill_n {
        let n = drill_machines[i % drill_machines.len()];
        let seed = 1 + (i / 2) % 5;
        let rank = (i / 10) % n;
        lines.push(format!(
            "{{\"id\":\"drill-{i}\",\"kind\":\"drill\",\"machines\":{n},\"seed\":{seed},\
             \"failures\":[[{rank},\"hardware\"]]}}"
        ));
    }
    // A few chaos plans (the cheap ones; the DES bench owns the heavy
    // fleet-scale plans).
    let plans = ["kill_mid_checkpoint", "root_churn"];
    for i in 0..chaos_n {
        let plan = plans[i % plans.len()];
        let seed = 1 + i / plans.len();
        lines.push(format!(
            "{{\"id\":\"chaos-{i}\",\"kind\":\"chaos\",\"plan\":\"{plan}\",\"seed\":{seed},\
             \"policy\":\"adaptive\"}}"
        ));
    }
    // Speculative lookahead: price three policies forward per query.
    for i in 0..look_n {
        let plan = plans[i % plans.len()];
        lines.push(format!(
            "{{\"id\":\"look-{i}\",\"kind\":\"lookahead\",\"plan\":\"{plan}\",\"seed\":{},\
             \"candidates\":[\"adaptive\",\"paper_3h\",\"no_persist\"]}}",
            1 + i
        ));
    }
    // Malformed tail: parse errors, validation errors, a drill the
    // harness rejects with a typed error. All must answer, none may kill
    // the loop.
    let bad = [
        "not json at all",
        "{\"kind\":\"warp\"}",
        "{\"machines\":0}",
        "{\"kind\":\"recoverability\",\"max_k\":100000}",
        "{\"kind\":\"chaos\",\"plan\":\"nope\"}",
        "{\"kind\":\"drill\",\"failures\":[[3,\"hardware\"],[3,\"hardware\"]]}",
        "{\"kind\":\"drill\",\"fail_during_iteration\":0}",
        "{\"id\":\"trunc\",\"kind\":",
    ];
    for b in bad.iter().take(bad_n) {
        lines.push((*b).to_string());
    }
    lines
}

/// Forces genuinely concurrent identical queries through the engine with
/// a thread barrier and returns the dedup delta. One attempt can
/// legitimately see zero collapses (the leader may finish before a
/// follower arrives), so the caller retries.
fn dedup_attempt(engine: &ServiceEngine) -> u64 {
    let (_, dedup0) = engine.flight_counters();
    let workers = 8;
    let barrier = std::sync::Barrier::new(workers);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                barrier.wait();
                engine.serve_line(
                    "{\"id\":\"dedup\",\"kind\":\"drill\",\"machines\":16,\"seed\":77}",
                );
            });
        }
    });
    let (_, dedup1) = engine.flight_counters();
    dedup1 - dedup0
}

fn main() {
    let mut cli = BenchCli::from_env();
    let jobs = cli.telemetry.effective_jobs().max(2);
    let quick = cli.flag("--quick");
    let out_path = cli
        .value("--out")
        .unwrap_or_else(|e| fail(&e))
        .unwrap_or_else(|| "BENCH_harness.json".to_string());
    cli.reject_unknown().unwrap_or_else(|e| fail(&e));

    let lines = queries(quick);
    eprintln!("service bench: {} queries, jobs={jobs}", lines.len());

    // Reference run: fresh engine, jobs=1 — the deterministic baseline
    // for both the byte-identity checks and the gated cache stats.
    let reference = ServiceEngine::new(TelemetrySink::disabled());
    let (ref_responses, ref_stats) = reference.serve_batch_with_stats(&lines, 1);

    // Timed run: fresh engine, jobs=N.
    let engine = ServiceEngine::new(TelemetrySink::disabled());
    let t0 = std::time::Instant::now();
    let (responses, stats) = engine.serve_batch_with_stats(&lines, jobs);
    let wall = t0.elapsed().as_secs_f64();

    // Warm rerun on the same engine: caches populated, must not change a
    // byte.
    let (warm_responses, _) = engine.serve_batch_with_stats(&lines, jobs);

    let mut failures = Vec::new();
    if responses != ref_responses {
        failures.push("responses differ between --jobs 1 and --jobs N".to_string());
    }
    if warm_responses != ref_responses {
        failures.push("responses differ between cold and warm caches".to_string());
    }
    let expected_errors = if quick { 2 } else { 8 } as u64;
    if ref_stats.errors != expected_errors {
        failures.push(format!(
            "expected exactly {expected_errors} error responses, got {}",
            ref_stats.errors
        ));
    }
    if ref_stats.queries != lines.len() as u64 {
        failures.push("a query went unanswered".to_string());
    }

    // Single-flight collapse, forced concurrent.
    let mut dedup = 0;
    for _ in 0..20 {
        dedup = dedup_attempt(&engine);
        if dedup > 0 {
            break;
        }
    }
    if dedup == 0 {
        failures.push("single-flight never collapsed concurrent identical queries".to_string());
    }

    let hit_denom = ref_stats.cache_hits + ref_stats.cache_misses;
    let cache_hit_rate = if hit_denom == 0 {
        0.0
    } else {
        ref_stats.cache_hits as f64 / hit_denom as f64
    };
    let p50 = stats.latency_percentile_us(50.0);
    let p99 = stats.latency_percentile_us(99.0);
    let per_s = lines.len() as f64 / wall.max(1e-9);

    println!("\n| metric | value |");
    println!("|--------|------:|");
    println!("| queries | {} |", ref_stats.queries);
    println!("| errors (seeded) | {} |", ref_stats.errors);
    println!("| cache hit rate | {cache_hit_rate:.3} |");
    println!("| dedup collapsed (forced) | {dedup} |");
    println!("| batch dedup hits (jobs={jobs}) | {} |", stats.dedup_hits);
    println!("| queries/s | {per_s:.0} |");
    println!("| p50 / p99 latency (us) | {p50} / {p99} |");

    for f in &failures {
        eprintln!("FAIL: {f}");
    }
    if !failures.is_empty() {
        std::process::exit(1);
    }

    // ---- splice the "service" section into the bench report --------------
    let section = format!(
        "  \"service\": {{\n    \"quick\": {quick},\n    \"jobs\": {jobs},\n    \
         \"queries\": {},\n    \"errors\": {},\n    \
         \"cache_hit_rate\": {cache_hit_rate:.3},\n    \
         \"dedup_collapsed\": 1,\n    \"byte_identical_jobs\": 1,\n    \
         \"byte_identical_warm\": 1,\n    \"wall_s\": {wall:.3},\n    \
         \"queries_per_s\": {per_s:.1},\n    \"p50_us\": {p50},\n    \
         \"p99_us\": {p99}\n  }}",
        ref_stats.queries, ref_stats.errors,
    );
    let existing = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"harness\"\n}\n".to_string());
    let base = match existing.find(",\n  \"service\": {") {
        Some(i) => existing[..i].to_string(),
        None => match existing.rfind('}') {
            Some(i) => existing[..i].trim_end().to_string(),
            None => fail(&format!("{out_path} is not a JSON object")),
        },
    };
    let merged = format!("{base},\n{section}\n}}\n");
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(&merged);
    if parsed.is_err() {
        fail("spliced bench report is not valid JSON");
    }
    std::fs::write(&out_path, &merged)
        .unwrap_or_else(|e| fail(&format!("writing {out_path}: {e}")));
    eprintln!("spliced \"service\" section into {out_path}");
}
