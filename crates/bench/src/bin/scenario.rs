//! A scenario runner: describe a deployment and a failure in JSON, get the
//! schedule, recovery analysis and drill results.
//!
//! ```text
//! cargo run -p gemini-bench --bin scenario -- '{"model":"GPT-2 100B"}'
//! cargo run -p gemini-bench --bin scenario -- "$(cat my_scenario.json)"
//! cargo run -p gemini-bench --bin scenario -- --trace-out drill.json --metrics-out drill.prom
//! cargo run -p gemini-bench --bin scenario -- serve --requests queries.ndjson --jobs 4
//! echo '{"id":"q1","kind":"drill"}' | cargo run -p gemini-bench --bin scenario -- serve
//! ```
//!
//! `serve` switches the bin into scenario-as-a-service mode: line-delimited
//! JSON queries arrive on stdin (or from `--requests FILE`), one JSON
//! response per line leaves on stdout, in input order. Responses are
//! byte-identical at any `--jobs`, cache cold or warm, sink on or off, and
//! match the equivalent one-shot run (see `docs/SERVICE.md` for the query
//! schema). A malformed query yields a per-query error response; the
//! process stays up.
//!
//! `--trace-out FILE` exports the run (checkpoint interleave, failure
//! detection, recovery phases) as Chrome trace-event JSON for Perfetto;
//! `--metrics-out FILE` writes Prometheus text; `--metrics-json-out FILE`
//! writes the same registry as JSON; `--seed N` overrides the config's
//! `"seed"` field.
//!
//! Config fields (all optional):
//!
//! ```json
//! {
//!   "model": "GPT-2 100B",        // any Table 2 model name
//!   "instance": "p4d.24xlarge",   // any Table 1 instance name
//!   "machines": 16,
//!   "replicas": 2,
//!   "standbys": 0,
//!   "workload": "dense",          // or "moe" (default gating knobs)
//!   "mode": "wait",               // or "shrink" / "step_up"
//!   "failures": [[5, "hardware"], [3, "software"]],
//!   "fail_during_iteration": 4,
//!   "seed": 1
//! }
//! ```

use gemini_bench::BenchCli;
use gemini_cluster::{FailureKind, InstanceType, OperatorConfig};
use gemini_core::RecoveryMode;
use gemini_harness::{Deployment, DrillConfig, Scenario};
use gemini_training::{ModelConfig, WorkloadSpec};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// The long-running query loop: read NDJSON queries, write NDJSON
/// responses. Batch mode (`--requests FILE`) serves the whole file across
/// `--jobs` workers; stdin mode serves line-by-line as queries arrive.
fn serve(mut cli: BenchCli) -> ! {
    use std::io::{BufRead, Write};
    let targs = cli.telemetry.clone();
    let sink = targs.sink();
    let jobs = targs.effective_jobs();
    let requests = cli.value("--requests").unwrap_or_else(|e| fail(&e));
    let rest = cli.rest();
    if rest.first().map(String::as_str) != Some("serve") || rest.len() != 1 {
        fail("serve mode takes no positional operands");
    }
    let engine = gemini_service::ServiceEngine::new(sink.clone());
    let stdout = std::io::stdout();
    match requests {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| fail(&format!("reading {path}: {e}")));
            let lines: Vec<String> = text
                .lines()
                .filter(|l| !l.trim().is_empty())
                .map(str::to_string)
                .collect();
            let (responses, stats) = engine.serve_batch_with_stats(&lines, jobs);
            let mut out = stdout.lock();
            for r in &responses {
                writeln!(out, "{r}").unwrap_or_else(|e| fail(&format!("stdout: {e}")));
            }
            drop(out);
            eprintln!(
                "served {} queries ({} errors), cache hits {} misses {}, dedup {}",
                stats.queries, stats.errors, stats.cache_hits, stats.cache_misses, stats.dedup_hits
            );
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.unwrap_or_else(|e| fail(&format!("stdin: {e}")));
                if line.trim().is_empty() {
                    continue;
                }
                // One-element batches so the `service.*` counters stay
                // live in streaming mode too.
                let (responses, _) = engine.serve_batch_with_stats(&[line], 1);
                let response = &responses[0];
                let mut out = stdout.lock();
                writeln!(out, "{response}").unwrap_or_else(|e| fail(&format!("stdout: {e}")));
            }
        }
    }
    if let Err(e) = targs.write(&sink) {
        fail(&format!("writing telemetry outputs: {e}"));
    }
    std::process::exit(0)
}

fn main() {
    let cli = BenchCli::from_env();
    if cli.rest().first().map(String::as_str) == Some("serve") {
        serve(cli);
    }
    let targs = cli.telemetry.clone();
    let sink = targs.sink();
    let arg = cli.rest().first().cloned().unwrap_or_else(|| "{}".to_string());
    let cfg: serde_json::Value = serde_json::from_str(&arg)
        .unwrap_or_else(|e| fail(&format!("config is not valid JSON: {e}")));

    let model_name = cfg["model"].as_str().unwrap_or("GPT-2 100B");
    let model = ModelConfig::by_name(model_name)
        .unwrap_or_else(|| fail(&format!("unknown model {model_name:?}; see Table 2")));
    let instance_name = cfg["instance"].as_str().unwrap_or("p4d.24xlarge");
    let instance = InstanceType::by_name(instance_name)
        .unwrap_or_else(|| fail(&format!("unknown instance {instance_name:?}; see Table 1")));
    let machines = cfg["machines"].as_u64().unwrap_or(16) as usize;
    let replicas = cfg["replicas"].as_u64().unwrap_or(2) as usize;
    let standbys = cfg["standbys"].as_u64().unwrap_or(0) as usize;
    // `--seed N` on the command line overrides the config's "seed" field.
    let seed = cli.seed.unwrap_or_else(|| cfg["seed"].as_u64().unwrap_or(1));
    let fail_iter = cfg["fail_during_iteration"].as_u64().unwrap_or(4);

    let mut failures: Vec<(usize, FailureKind)> = Vec::new();
    if let Some(list) = cfg["failures"].as_array() {
        for entry in list {
            let rank = entry[0]
                .as_u64()
                .unwrap_or_else(|| fail("failure entries are [rank, kind]"))
                as usize;
            let kind = match entry[1].as_str().unwrap_or("hardware") {
                "software" => FailureKind::Software,
                "hardware" => FailureKind::Hardware,
                other => fail(&format!("unknown failure kind {other:?}")),
            };
            failures.push((rank, kind));
        }
    }
    if failures.is_empty() {
        failures.push((machines.saturating_sub(1) / 2, FailureKind::Hardware));
    }

    let workload = match cfg["workload"].as_str().unwrap_or("dense") {
        "dense" => WorkloadSpec::dense(),
        "moe" => WorkloadSpec::moe_default(),
        other => fail(&format!("unknown workload {other:?} (dense|moe)")),
    };
    let mode = match cfg["mode"].as_str().unwrap_or("wait") {
        "wait" => RecoveryMode::Wait,
        "shrink" => RecoveryMode::Shrink,
        "step_up" => RecoveryMode::StepUp,
        other => fail(&format!("unknown mode {other:?} (wait|shrink|step_up)")),
    };
    let mut scenario = Deployment {
        model,
        instance,
        machines,
        config: Default::default(),
        rack_topology: None,
        workload,
    };
    scenario.config.replicas = replicas;

    println!(
        "# {} on {} x {} (m = {replicas}, standbys = {standbys})\n",
        model.name, machines, instance.name
    );

    let sys = match scenario.build_system(seed) {
        Ok(sys) => sys,
        Err(e) => fail(&format!("deployment infeasible: {e}")),
    };
    let o = &sys.schedule.outcome;
    println!("## Steady state");
    println!(
        "- model states: {} total, {}/machine",
        scenario.ckpt_bytes_total(),
        scenario.ckpt_bytes_per_machine()
    );
    println!(
        "- placement: {:?}, {} groups",
        sys.placement.strategy(),
        sys.placement.groups().len()
    );
    println!(
        "- iteration: {} (no ckpt) -> {} (GEMINI)",
        o.baseline_iteration, o.iteration_time
    );
    println!(
        "- ckpt network time {} in {} idle; interference-free: {}",
        o.ckpt_network_time,
        sys.profile.total_idle(),
        sys.schedule.is_interference_free()
    );
    // The drill below records the steady-state checkpoint interleave into
    // the sink itself (`ckpt` spans + chunk events), so no extra recording
    // is needed here.
    let drill = DrillConfig {
        scenario,
        failures: failures.clone(),
        fail_during_iteration: fail_iter,
        operator: OperatorConfig {
            standbys,
            ..OperatorConfig::default()
        },
        seed,
        mode,
    };
    match Scenario::drill(drill).sink(sink.clone()).run() {
        Ok(r) => {
            println!("\n## Failure drill ({failures:?} during iteration {fail_iter})");
            println!("- case: {:?}", r.case);
            println!(
                "- detection {} | serialization {} | replacement {} | retrieval {} | warmup {}",
                r.detect_latency,
                r.serialize_time,
                r.replacement_wait,
                r.retrieval_time,
                r.warmup_time
            );
            println!(
                "- total downtime {}; resumed from iteration {}",
                r.total_downtime, r.resumed_from_iteration
            );
        }
        Err(e) => println!("\n## Failure drill: unrecoverable ({e})"),
    }

    if let Err(e) = targs.write(&sink) {
        fail(&format!("writing telemetry outputs: {e}"));
    }
}
