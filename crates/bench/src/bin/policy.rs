//! The policy comparison matrix: every chaos plan × seed cell runs once
//! per fault-tolerance policy (the adaptive engine, each fixed knob
//! comparator from [`gemini_baselines::fixed_policies`], each fixed
//! competing-scheme comparator from
//! [`gemini_baselines::fixed_scheme_policies`] — Checkmate-style gradient
//! replication, TierCheck-style GPU tiering, REFT-style sharding — and
//! each fixed recovery-mode comparator from
//! [`gemini_baselines::fixed_mode_policies`]: wait for a replacement,
//! shrink onto the survivors, or step up through a pre-allocated hot
//! spare), and the bin reports the wasted-time ledger (paper §2.1:
//! rework + downtime + visible overhead) per cell and per policy. The
//! quick matrix includes the two spot-preemption plans and the MoE plan,
//! so the wait/shrink/step_up columns are priced on the fault patterns
//! they were designed for.
//!
//! ```text
//! cargo run --release -p gemini-bench --bin policy              # full matrix
//! cargo run -p gemini-bench --bin policy -- --quick             # CI smoke matrix
//! cargo run -p gemini-bench --bin policy -- --seeds 1,2 --jobs 4
//! cargo run -p gemini-bench --bin policy -- --out /tmp/bench.json
//! ```
//!
//! Checks (the process exits non-zero when any fails):
//!
//! 1. **Green runs** — every report passes the chaos invariants.
//! 2. **Safety** — per cell, the adaptive run never has a *less* fresh
//!    committed checkpoint recoverable at detection than the paper's
//!    fixed configuration (`paper_3h`) on the same plan and seed
//!    ([`check_policy_preserves_commits`]). Other comparators are not
//!    baselines for this check: `dense_persist_10m` deliberately buys
//!    freshness with 18× the persist traffic.
//! 3. **Competitiveness** — adaptive aggregate wasted time ≤ the best
//!    fixed comparator's (scheme comparators included); on the full
//!    matrix additionally best-or-tied vs the fixed *knob* comparators
//!    in ≥ 80 % of cells. (Per-cell wins against the scheme comparators
//!    are reported, not gated: each fixed scheme wins its native niche
//!    by construction — `reft_sharded` on NIC-degrade plans — and the
//!    engine's hysteresis deliberately refuses sub-margin switches.)
//! 4. **Determinism** — the adaptive campaign renders byte-identically
//!    at `--jobs N` and `--jobs 1`.
//!
//! The summary is spliced into `BENCH_harness.json` (written by the
//! `perf` bin; `--out FILE` overrides the path) as the `"policy"`
//! section, replacing any previous one.

use gemini_baselines::{fixed_mode_policies, fixed_policies, fixed_scheme_policies};
use gemini_bench::BenchCli;
use gemini_core::policy::PolicySpec;
use gemini_core::WastedLedger;
use gemini_harness::{check_policy_preserves_commits, ChaosPlan, ChaosReport, Scenario};

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// Runs the full matrix for one policy: plans × seeds, plan-major.
fn campaign(
    plans: &[ChaosPlan],
    seeds: &[u64],
    jobs: usize,
    spec: &PolicySpec,
) -> Vec<ChaosReport> {
    Scenario::chaos_campaign(plans.to_vec())
        .seeds(seeds)
        .jobs(jobs)
        .policy(spec.clone())
        .run()
        .unwrap_or_else(|e| fail(&format!("chaos campaign under {:?}: {e}", spec.name())))
}

fn main() {
    let mut cli = BenchCli::from_env();
    let jobs = cli.telemetry.effective_jobs();
    let quick = cli.flag("--quick");
    let out_path = cli
        .value("--out")
        .unwrap_or_else(|e| fail(&e))
        .unwrap_or_else(|| "BENCH_harness.json".to_string());
    cli.reject_unknown().unwrap_or_else(|e| fail(&e));
    let seeds = if quick {
        cli.seeds_or(&[1])
    } else {
        cli.seeds_or(&[1, 2, 3])
    };

    let plans: Vec<ChaosPlan> = if quick {
        vec![
            ChaosPlan::kill_mid_checkpoint(),
            ChaosPlan::repeat_group_loss(),
            ChaosPlan::nic_collapse(),
            ChaosPlan::spot_preemption_notice(),
            ChaosPlan::spot_capacity_crunch(),
            ChaosPlan::moe_kill_mid_checkpoint(),
        ]
    } else {
        ChaosPlan::catalog()
    };
    let cells = plans.len() * seeds.len();

    // Policy column order: adaptive first, then the fixed knob
    // comparators, then the fixed competing-scheme comparators.
    let mut specs: Vec<PolicySpec> = vec![PolicySpec::adaptive()];
    specs.extend(fixed_policies().into_iter().map(PolicySpec::Fixed));
    // Columns 1..=knob_cols are the fixed knob comparators; scheme
    // comparators follow (the split matters for the win-rate gate).
    let knob_cols = specs.len() - 1;
    specs.extend(fixed_scheme_policies().into_iter().map(PolicySpec::Fixed));
    // Recovery-mode comparators last: wait / shrink / step_up, each the
    // paper's knobs with the failure response pinned.
    specs.extend(fixed_mode_policies().into_iter().map(PolicySpec::Fixed));
    let names: Vec<String> = specs.iter().map(|s| s.name().to_string()).collect();

    // ---- run the matrix ------------------------------------------------
    let runs: Vec<Vec<ChaosReport>> = specs
        .iter()
        .map(|spec| campaign(&plans, &seeds, jobs, spec))
        .collect();

    // Determinism: the adaptive campaign must render byte-identically on
    // a single worker.
    let adaptive_serial = campaign(&plans, &seeds, 1, &specs[0]);
    let render_all =
        |rs: &[ChaosReport]| rs.iter().map(|r| r.render()).collect::<Vec<_>>().join("\n");
    if render_all(&runs[0]) != render_all(&adaptive_serial) {
        fail("adaptive campaign is not byte-identical across --jobs counts");
    }

    // ---- per-cell wasted totals, invariants, safety --------------------
    let mut violations = 0usize;
    for (p, reports) in runs.iter().enumerate() {
        for r in reports {
            if !r.violations.is_empty() {
                eprintln!(
                    "invariant violations under {}: {} seed {}: {:?}",
                    names[p], r.plan_name, r.seed, r.violations
                );
                violations += r.violations.len();
            }
        }
    }
    let baseline = names
        .iter()
        .position(|n| n == "paper_3h")
        .unwrap_or_else(|| fail("fixed_policies() no longer offers paper_3h"));
    let mut safety = Vec::new();
    for cell in 0..cells {
        for v in check_policy_preserves_commits(&runs[0][cell], &runs[baseline][cell]) {
            safety.push(format!(
                "{} seed {}: {v}",
                runs[0][cell].plan_name, runs[0][cell].seed
            ));
        }
    }

    // ---- the markdown table --------------------------------------------
    let wasted = |r: &ChaosReport| r.wasted.total().as_secs_f64();
    println!(
        "# Policy comparison: {} plan(s) x {} seed(s), wasted time in seconds\n",
        plans.len(),
        seeds.len()
    );
    print!("| plan | seed |");
    for n in &names {
        print!(" {n} |");
    }
    println!(" best |");
    print!("|------|------|");
    for _ in &names {
        print!("---:|");
    }
    println!("------|");
    let mut adaptive_wins = 0usize;
    let mut adaptive_wins_knobs = 0usize;
    for cell in 0..cells {
        let row: Vec<f64> = runs.iter().map(|rs| wasted(&rs[cell])).collect();
        let best = row.iter().cloned().fold(f64::INFINITY, f64::min);
        let best_name = &names[row.iter().position(|&w| w == best).unwrap_or(0)];
        // "Adaptive wins" = no fixed policy strictly beats it (ties count).
        if row[0] <= best + 1e-9 {
            adaptive_wins += 1;
        }
        let best_knobs = row[1..=knob_cols]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        if row[0] <= best_knobs + 1e-9 {
            adaptive_wins_knobs += 1;
        }
        print!(
            "| {} | {} |",
            runs[0][cell].plan_name, runs[0][cell].seed
        );
        for w in &row {
            print!(" {w:.1} |");
        }
        println!(" {best_name} |");
    }

    // ---- per-policy aggregates ------------------------------------------
    let mut aggregates: Vec<WastedLedger> = Vec::new();
    for reports in &runs {
        let mut total = WastedLedger::default();
        for r in reports {
            total.merge(&r.wasted);
        }
        aggregates.push(total);
    }
    println!("\n| policy | failures | rework (s) | downtime (s) | overhead (s) | total (s) |");
    println!("|--------|---------:|-----------:|-------------:|-------------:|----------:|");
    for (n, a) in names.iter().zip(&aggregates) {
        println!(
            "| {n} | {} | {:.1} | {:.1} | {:.1} | {:.1} |",
            a.failures,
            a.rework.as_secs_f64(),
            a.downtime.as_secs_f64(),
            a.overhead.as_secs_f64(),
            a.total().as_secs_f64()
        );
    }
    let win_rate = adaptive_wins as f64 / cells.max(1) as f64;
    let win_rate_knobs = adaptive_wins_knobs as f64 / cells.max(1) as f64;
    println!(
        "\nadaptive best-or-tied in {adaptive_wins}/{cells} cells ({:.0}%) \
         overall, {adaptive_wins_knobs}/{cells} ({:.0}%) vs the knob \
         comparators; safety violations: {}",
        win_rate * 100.0,
        win_rate_knobs * 100.0,
        safety.len()
    );

    // ---- splice the "policy" section into the bench report ---------------
    let per_policy: String = names
        .iter()
        .zip(&aggregates)
        .map(|(n, a)| {
            format!(
                "      \"{n}\": {{\n        \"failures\": {},\n        \
                 \"rework_s\": {:.3},\n        \"downtime_s\": {:.3},\n        \
                 \"overhead_s\": {:.3},\n        \"wasted_s\": {:.3}\n      }}",
                a.failures,
                a.rework.as_secs_f64(),
                a.downtime.as_secs_f64(),
                a.overhead.as_secs_f64(),
                a.total().as_secs_f64()
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let seeds_json: String = seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let section = format!(
        "  \"policy\": {{\n    \"quick\": {quick},\n    \"plans\": {},\n    \
         \"seeds\": [{seeds_json}],\n    \"cells\": {cells},\n    \
         \"adaptive_best_or_tied_cells\": {adaptive_wins},\n    \
         \"adaptive_win_rate\": {win_rate:.3},\n    \
         \"adaptive_win_rate_knobs\": {win_rate_knobs:.3},\n    \
         \"safety_violations\": {},\n    \"policies\": {{\n{per_policy}\n    }}\n  }}",
        plans.len(),
        safety.len(),
    );
    let existing = std::fs::read_to_string(&out_path)
        .unwrap_or_else(|_| "{\n  \"bench\": \"harness\"\n}\n".to_string());
    let base = match existing.find(",\n  \"policy\": {") {
        Some(i) => existing[..i].to_string(),
        None => match existing.rfind('}') {
            Some(i) => existing[..i].trim_end().to_string(),
            None => fail(&format!("{out_path} is not a JSON object")),
        },
    };
    let merged = format!("{base},\n{section}\n}}\n");
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(&merged);
    if parsed.is_err() {
        fail("spliced bench report is not valid JSON");
    }
    std::fs::write(&out_path, &merged)
        .unwrap_or_else(|e| fail(&format!("writing {out_path}: {e}")));
    eprintln!("spliced \"policy\" section into {out_path}");

    // ---- gates -----------------------------------------------------------
    let mut failed = false;
    if violations > 0 {
        eprintln!("FAILED: {violations} chaos invariant violation(s)");
        failed = true;
    }
    if !safety.is_empty() {
        for v in &safety {
            eprintln!("FAILED safety: {v}");
        }
        failed = true;
    }
    // Aggregate gate (both modes): the scheme-switching adaptive policy
    // must beat or tie the best fixed comparator — scheme comparators
    // included — in total wasted time.
    let adaptive = aggregates[0].total().as_secs_f64();
    let best_fixed = aggregates[1..]
        .iter()
        .map(|a| a.total().as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    if adaptive > best_fixed + 1e-9 {
        eprintln!("FAILED: adaptive wasted {adaptive:.1}s > best fixed {best_fixed:.1}s");
        failed = true;
    }
    // Per-cell gate (full matrix): the knob comparators must not beat
    // the adaptive engine in more than 20 % of cells.
    if !quick && win_rate_knobs < 0.8 {
        eprintln!(
            "FAILED: adaptive best-or-tied rate {win_rate_knobs:.2} < 0.80 \
             vs the knob comparators"
        );
        failed = true;
    }
    if failed {
        std::process::exit(2);
    }
}
