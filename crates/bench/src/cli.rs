//! The shared command-line front end for the bench binaries.
//!
//! Every binary historically re-implemented the same scraps of argument
//! handling: the telemetry/`--jobs` flags ([`TelemetryArgs`]), `--seed N`
//! and `--seeds A,B,C`, and an ad-hoc scan for its own flags with ad-hoc
//! "unknown argument" behaviour. [`BenchCli`] centralizes all of it:
//!
//! ```
//! # use gemini_bench::cli::BenchCli;
//! let mut cli = BenchCli::parse(
//!     ["--seed", "7", "--quick", "--out", "b.json"]
//!         .iter()
//!         .map(|s| s.to_string()),
//! )
//! .unwrap();
//! let quick = cli.flag("--quick");
//! let out = cli.value("--out").unwrap().unwrap_or_else(|| "BENCH.json".into());
//! assert_eq!(cli.seeds_or(&[1, 2, 3]), vec![7]);
//! assert!(quick);
//! assert_eq!(out, "b.json");
//! cli.reject_unknown().unwrap(); // everything was consumed
//! ```
//!
//! * Telemetry and `--jobs` flags land in [`BenchCli::telemetry`]
//!   (see [`TelemetryArgs`]).
//! * `--seed N` (single) and `--seeds A,B,C` (list) land in
//!   [`BenchCli::seed`] / [`BenchCli::seeds`]; [`BenchCli::seeds_or`]
//!   folds them against a binary-specific default, with `--seed`
//!   taking precedence.
//! * Binary-specific flags are consumed with [`BenchCli::flag`] /
//!   [`BenchCli::value`], and whatever remains is either collected with
//!   [`BenchCli::rest`] (positional operands) or rejected with
//!   [`BenchCli::reject_unknown`].
//!
//! [`BenchCli::from_env`] is the `main()`-shaped entry point: it parses
//! the process arguments and exits with a diagnostic on malformed input.

use crate::out::TelemetryArgs;

/// Parsed common flags plus a cursor over the binary-specific remainder.
#[derive(Clone, Debug, Default)]
pub struct BenchCli {
    /// The telemetry/`--jobs` flags shared by every binary.
    pub telemetry: TelemetryArgs,
    /// `--seed N`, when given. Takes precedence over [`BenchCli::seeds`]
    /// in [`BenchCli::seeds_or`].
    pub seed: Option<u64>,
    /// `--seeds A,B,C`, when given.
    pub seeds: Option<Vec<u64>>,
    remainder: Vec<String>,
}

impl BenchCli {
    /// Parses `args`, splitting out the telemetry flags, `--seed` and
    /// `--seeds`. Unrecognized arguments are kept (in order) for
    /// [`BenchCli::flag`] / [`BenchCli::value`] / [`BenchCli::rest`].
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<BenchCli, String> {
        let (telemetry, rest) = TelemetryArgs::parse(args)?;
        let mut out = BenchCli {
            telemetry,
            ..BenchCli::default()
        };
        let mut it = rest.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    let s = it
                        .next()
                        .ok_or_else(|| "--seed requires an N operand".to_string())?;
                    let n = s
                        .parse()
                        .map_err(|_| format!("--seed expects an integer, got {s:?}"))?;
                    if out.seed.is_some() {
                        return Err("--seed given more than once".to_string());
                    }
                    out.seed = Some(n);
                }
                "--seeds" => {
                    let s = it
                        .next()
                        .ok_or_else(|| "--seeds requires a LIST operand".to_string())?;
                    let seeds = s
                        .split(',')
                        .map(|x| {
                            x.trim()
                                .parse()
                                .map_err(|_| format!("--seeds expects integers, got {x:?}"))
                        })
                        .collect::<Result<Vec<u64>, String>>()?;
                    if seeds.is_empty() {
                        return Err("--seeds expects a non-empty list".to_string());
                    }
                    if out.seeds.is_some() {
                        return Err("--seeds given more than once".to_string());
                    }
                    out.seeds = Some(seeds);
                }
                _ => out.remainder.push(arg),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments, printing the diagnostic and exiting
    /// non-zero on malformed input. Also installs the effective `--jobs`
    /// count as the process-wide default.
    pub fn from_env() -> BenchCli {
        match BenchCli::parse(std::env::args().skip(1)) {
            Ok(cli) => {
                cli.telemetry.install_jobs();
                cli
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1)
            }
        }
    }

    /// The seed set for this run: `--seed N` wins (a single-element set),
    /// then `--seeds A,B,C`, then `default`.
    pub fn seeds_or(&self, default: &[u64]) -> Vec<u64> {
        if let Some(seed) = self.seed {
            vec![seed]
        } else if let Some(seeds) = &self.seeds {
            seeds.clone()
        } else {
            default.to_vec()
        }
    }

    /// Consumes the boolean flag `name` from the remainder, returning
    /// whether it was present (every occurrence is removed).
    pub fn flag(&mut self, name: &str) -> bool {
        let before = self.remainder.len();
        self.remainder.retain(|a| a != name);
        self.remainder.len() != before
    }

    /// Consumes `name VALUE` from the remainder. `Ok(None)` when absent;
    /// an error when the flag is present without its operand or given more
    /// than once (a repeated value flag used to leave its second occurrence
    /// in the remainder, surfacing later as a misleading "unknown
    /// argument").
    pub fn value(&mut self, name: &str) -> Result<Option<String>, String> {
        if self.remainder.iter().filter(|a| *a == name).count() > 1 {
            return Err(format!("{name} given more than once"));
        }
        match self.remainder.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) if i + 1 < self.remainder.len() => {
                self.remainder.remove(i);
                Ok(Some(self.remainder.remove(i)))
            }
            Some(_) => Err(format!("{name} requires an operand")),
        }
    }

    /// The unconsumed remainder (positional operands), in input order.
    pub fn rest(&self) -> &[String] {
        &self.remainder
    }

    /// Errors on any unconsumed argument — the standard tail call for
    /// binaries with no positional operands. Flag-like leftovers and
    /// trailing operands get distinct diagnostics.
    pub fn reject_unknown(&self) -> Result<(), String> {
        match self.remainder.first() {
            None => Ok(()),
            Some(arg) if arg.starts_with('-') => Err(format!("unknown argument {arg:?}")),
            Some(arg) => Err(format!("unexpected operand {arg:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn splits_common_flags_and_keeps_the_rest() {
        let cli = BenchCli::parse(s(&[
            "--plan",
            "root_churn",
            "--seed",
            "7",
            "--trace-out",
            "t.json",
            "--fast",
        ]))
        .unwrap();
        assert_eq!(cli.seed, Some(7));
        assert!(cli.telemetry.trace_out.is_some());
        assert_eq!(cli.rest(), s(&["--plan", "root_churn", "--fast"]));
    }

    #[test]
    fn seed_wins_over_seeds_and_default() {
        let cli = BenchCli::parse(s(&["--seed", "9", "--seeds", "1,2,3"])).unwrap();
        assert_eq!(cli.seeds_or(&[4, 5]), vec![9]);
        let cli = BenchCli::parse(s(&["--seeds", "1, 2,3"])).unwrap();
        assert_eq!(cli.seeds_or(&[4, 5]), vec![1, 2, 3]);
        let cli = BenchCli::parse(s(&[])).unwrap();
        assert_eq!(cli.seeds_or(&[4, 5]), vec![4, 5]);
    }

    #[test]
    fn malformed_seed_flags_error() {
        assert!(BenchCli::parse(s(&["--seed"])).is_err());
        assert!(BenchCli::parse(s(&["--seed", "x"])).is_err());
        assert!(BenchCli::parse(s(&["--seeds"])).is_err());
        assert!(BenchCli::parse(s(&["--seeds", "1,x"])).is_err());
        assert!(BenchCli::parse(s(&["--seeds", ""])).is_err());
    }

    #[test]
    fn flag_and_value_consume() {
        let mut cli = BenchCli::parse(s(&["--quick", "--out", "b.json", "pos"])).unwrap();
        assert!(cli.flag("--quick"));
        assert!(!cli.flag("--quick"));
        assert_eq!(cli.value("--out").unwrap().as_deref(), Some("b.json"));
        assert_eq!(cli.value("--out").unwrap(), None);
        assert_eq!(cli.rest(), s(&["pos"]));
        assert!(cli.reject_unknown().is_err());
    }

    #[test]
    fn value_without_operand_errors() {
        let mut cli = BenchCli::parse(s(&["--out"])).unwrap();
        assert!(cli.value("--out").is_err());
    }

    #[test]
    fn reject_unknown_passes_when_everything_is_consumed() {
        let mut cli = BenchCli::parse(s(&["--list"])).unwrap();
        assert!(cli.flag("--list"));
        assert!(cli.reject_unknown().is_ok());
    }

    #[test]
    fn zero_jobs_is_rejected_at_the_cli_layer() {
        // TelemetryArgs already guards this; pin it at the BenchCli front
        // door so a refactor can't silently drop the check.
        let err = BenchCli::parse(s(&["--jobs", "0"])).unwrap_err();
        assert!(err.contains("positive integer"), "{err}");
        assert!(BenchCli::parse(s(&["--jobs", "2"])).is_ok());
    }

    #[test]
    fn duplicate_value_flags_error_instead_of_misleading() {
        // Pre-fix: value() consumed only the first occurrence, so the
        // second surfaced later as "unknown argument --out".
        let mut cli = BenchCli::parse(s(&["--out", "a.json", "--out", "b.json"])).unwrap();
        let err = cli.value("--out").unwrap_err();
        assert_eq!(err, "--out given more than once");
    }

    #[test]
    fn duplicate_common_flags_error() {
        for (args, flag) in [
            (vec!["--seed", "1", "--seed", "2"], "--seed"),
            (vec!["--seeds", "1,2", "--seeds", "3"], "--seeds"),
            (vec!["--jobs", "2", "--jobs", "4"], "--jobs"),
            (vec!["--trace-out", "a", "--trace-out", "b"], "--trace-out"),
        ] {
            let err = BenchCli::parse(s(&args)).unwrap_err();
            assert_eq!(err, format!("{flag} given more than once"));
        }
    }

    #[test]
    fn trailing_garbage_gets_a_distinct_diagnostic() {
        let mut cli = BenchCli::parse(s(&["--quick", "trailing", "junk"])).unwrap();
        assert!(cli.flag("--quick"));
        let err = cli.reject_unknown().unwrap_err();
        assert_eq!(err, "unexpected operand \"trailing\"");
        let cli = BenchCli::parse(s(&["--bogus"])).unwrap();
        assert_eq!(cli.reject_unknown().unwrap_err(), "unknown argument \"--bogus\"");
    }
}
