//! Shared `--trace-out` / `--metrics-out` handling for the bench binaries.
//!
//! Every binary accepts:
//!
//! * `--trace-out FILE` — write the run's spans and typed events as Chrome
//!   trace-event JSON (loadable in Perfetto / `chrome://tracing`);
//! * `--metrics-out FILE` — write the metrics registry as Prometheus text
//!   exposition;
//! * `--metrics-json-out FILE` — write the metrics registry as JSON;
//! * `--jobs N` — run the harness's indexed task sets on `N` worker
//!   threads (`GEMINI_JOBS` is the environment fallback). Output is
//!   byte-identical at every `N`; see `docs/PERFORMANCE.md`.
//!
//! When none of the flags is present the returned sink is disabled, so the
//! instrumented code paths cost a single branch.

use gemini_telemetry::TelemetrySink;
use std::path::PathBuf;

/// Parsed telemetry-output flags.
#[derive(Clone, Debug, Default)]
pub struct TelemetryArgs {
    /// Destination for Chrome trace-event JSON, if requested.
    pub trace_out: Option<PathBuf>,
    /// Destination for Prometheus text exposition, if requested.
    pub metrics_out: Option<PathBuf>,
    /// Destination for the JSON metrics snapshot, if requested.
    pub metrics_json_out: Option<PathBuf>,
    /// Worker threads for the deterministic pool (`--jobs N`); `None`
    /// falls back to `GEMINI_JOBS`, then serial.
    pub jobs: Option<usize>,
}

impl TelemetryArgs {
    /// Splits the telemetry flags out of `args`, returning the parsed
    /// flags and the remaining arguments in their original order. A flag
    /// missing its FILE operand is an error.
    pub fn parse(
        args: impl IntoIterator<Item = String>,
    ) -> Result<(TelemetryArgs, Vec<String>), String> {
        let mut out = TelemetryArgs::default();
        let mut rest = Vec::new();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if arg == "--jobs" {
                let n = it
                    .next()
                    .ok_or_else(|| "--jobs requires an N operand".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got {n:?}"))?;
                if n == 0 {
                    return Err("--jobs expects a positive integer, got 0".to_string());
                }
                if out.jobs.is_some() {
                    return Err("--jobs given more than once".to_string());
                }
                out.jobs = Some(n);
                continue;
            }
            let slot = match arg.as_str() {
                "--trace-out" => &mut out.trace_out,
                "--metrics-out" => &mut out.metrics_out,
                "--metrics-json-out" => &mut out.metrics_json_out,
                _ => {
                    rest.push(arg);
                    continue;
                }
            };
            if slot.is_some() {
                return Err(format!("{arg} given more than once"));
            }
            match it.next() {
                Some(path) => *slot = Some(PathBuf::from(path)),
                None => return Err(format!("{arg} requires a FILE operand")),
            }
        }
        Ok((out, rest))
    }

    /// The effective worker count: `--jobs` if given, else the process
    /// default (which already honours `GEMINI_JOBS`, falling back to 1).
    pub fn effective_jobs(&self) -> usize {
        gemini_harness::par::resolve_jobs(self.jobs)
    }

    /// Installs [`TelemetryArgs::effective_jobs`] as the process-wide
    /// default, so every harness entry point that runs at
    /// [`gemini_harness::par::default_jobs`] (figure regeneration,
    /// campaign sweeps, Monte-Carlo estimators) picks it up. Returns the
    /// installed count.
    pub fn install_jobs(&self) -> usize {
        let jobs = self.effective_jobs();
        gemini_harness::par::set_default_jobs(jobs);
        jobs
    }

    /// Whether any output was requested.
    pub fn any(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.metrics_json_out.is_some()
    }

    /// An enabled sink when any output is requested, a disabled one (zero
    /// recording cost) otherwise.
    pub fn sink(&self) -> TelemetrySink {
        if self.any() {
            TelemetrySink::enabled()
        } else {
            TelemetrySink::disabled()
        }
    }

    /// Writes the requested exports from `sink`.
    pub fn write(&self, sink: &TelemetrySink) -> std::io::Result<()> {
        if let Some(path) = &self.trace_out {
            std::fs::write(path, sink.export_chrome_trace())?;
            eprintln!("wrote Chrome trace to {}", path.display());
        }
        if let Some(path) = &self.metrics_out {
            std::fs::write(path, sink.export_prometheus())?;
            eprintln!("wrote Prometheus metrics to {}", path.display());
        }
        if let Some(path) = &self.metrics_json_out {
            std::fs::write(path, sink.export_metrics_json())?;
            eprintln!("wrote metrics JSON to {}", path.display());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_flags_and_preserves_the_rest() {
        let (args, rest) = TelemetryArgs::parse(s(&[
            "{\"model\":\"x\"}",
            "--trace-out",
            "t.json",
            "--fast",
            "--metrics-out",
            "m.prom",
        ]))
        .unwrap();
        assert_eq!(args.trace_out.as_deref().unwrap().to_str(), Some("t.json"));
        assert_eq!(
            args.metrics_out.as_deref().unwrap().to_str(),
            Some("m.prom")
        );
        assert!(args.metrics_json_out.is_none());
        assert_eq!(rest, s(&["{\"model\":\"x\"}", "--fast"]));
        assert!(args.any());
        assert!(args.sink().is_enabled());
    }

    #[test]
    fn no_flags_means_disabled_sink() {
        let (args, rest) = TelemetryArgs::parse(s(&["--fast"])).unwrap();
        assert!(!args.any());
        assert!(!args.sink().is_enabled());
        assert_eq!(rest, s(&["--fast"]));
    }

    #[test]
    fn missing_operand_is_an_error() {
        assert!(TelemetryArgs::parse(s(&["--trace-out"])).is_err());
    }

    #[test]
    fn parses_jobs() {
        let (args, rest) = TelemetryArgs::parse(s(&["--jobs", "4", "--fast"])).unwrap();
        assert_eq!(args.jobs, Some(4));
        assert_eq!(rest, s(&["--fast"]));
        assert_eq!(args.effective_jobs(), 4);
    }

    #[test]
    fn jobs_rejects_bad_operands() {
        assert!(TelemetryArgs::parse(s(&["--jobs"])).is_err());
        assert!(TelemetryArgs::parse(s(&["--jobs", "zero"])).is_err());
        assert!(TelemetryArgs::parse(s(&["--jobs", "0"])).is_err());
    }
}
