//! The long-running query engine.
//!
//! [`ServiceEngine`] owns the shared immutable world state — a catalog of
//! base deployments wrapped in [`Snapshot`]s, the chaos-plan catalog, the
//! keyed recoverability memo and the single-flight table — and answers
//! batches of queries in parallel. Three layers keep thousands of
//! concurrent tenants cheap:
//!
//! 1. **Copy-on-write forks** ([`gemini_core::Fork`]): a query evaluates
//!    against a fork of a catalog snapshot; the base deployment is cloned
//!    only when the query actually diverges (resizes the fleet, changes
//!    the replica count).
//! 2. **Keyed memoization** ([`gemini_core::RecoveryMemo`]): placement
//!    recoverability curves are pure functions of (strategy, N, m, k), so
//!    distinct tenants asking about equivalent placements share one
//!    computation, with hit/miss telemetry.
//! 3. **Single-flight dedup** ([`gemini_parallel::SingleFlight`]): whole
//!    queries are keyed on their canonical form ([`Query::canonical`]);
//!    identical questions in flight at the same moment run once and
//!    everyone gets the answer.
//!
//! Determinism is the load-bearing guarantee: a response depends only on
//! the query (never on cache state, dedup timing, worker count or the
//! telemetry sink), so serving is byte-identical at any `--jobs`, cold or
//! warm, sink on or off — and identical to the equivalent one-shot
//! [`Scenario`] builder run. Simulations triggered by queries always run
//! with a *disabled* sink internally; the engine's own sink only carries
//! `service.*` counters about the serving layer itself.

use crate::query::{ChaosQuery, DrillQuery, LookaheadQuery, Query, QueryKind, RecoverabilityQuery};
use gemini_cluster::OperatorConfig;
use gemini_core::policy::PolicySpec;
use gemini_core::{Fork, RecoveryMemo, Snapshot};
use gemini_harness::{ChaosPlan, Deployment, Scenario};
use gemini_parallel::{par_map, SingleFlight};
use gemini_telemetry::TelemetrySink;

/// Serving statistics for one [`ServiceEngine::serve_batch_with_stats`]
/// call. Counter fields are deltas over the batch, not engine lifetime
/// totals.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Lines served (responses emitted), including error responses.
    pub queries: u64,
    /// Responses with `"ok":false`.
    pub errors: u64,
    /// Whole-query executions that actually ran (single-flight leaders).
    pub executions: u64,
    /// Queries answered by piggybacking on an identical in-flight one.
    pub dedup_hits: u64,
    /// Recoverability-memo hits.
    pub cache_hits: u64,
    /// Recoverability-memo misses.
    pub cache_misses: u64,
    /// Wall-clock latency per response, input order (microseconds).
    /// Purely observational — never part of a response.
    pub latencies_us: Vec<u64>,
}

impl BatchStats {
    /// The p-th latency percentile (nearest-rank), 0 for an empty batch.
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }
}

/// The multi-tenant what-if query engine. Cheap to share by reference
/// across a serve loop; all interior state is synchronized.
pub struct ServiceEngine {
    catalog: Vec<Snapshot<Deployment>>,
    plans: Vec<(ChaosPlan, Snapshot<Deployment>)>,
    memo: RecoveryMemo,
    flight: SingleFlight<String, String>,
    sink: TelemetrySink,
}

impl ServiceEngine {
    /// An engine over the default catalog (the paper's two deployments)
    /// and the full extended chaos-plan catalog. The sink carries the
    /// `service.*` serving metrics; pass a disabled sink to opt out.
    pub fn new(sink: TelemetrySink) -> ServiceEngine {
        let plans = ChaosPlan::extended_catalog()
            .into_iter()
            .map(|plan| {
                let base = plan.scenario.clone().snapshot();
                (plan, base)
            })
            .collect();
        ServiceEngine {
            catalog: vec![
                Deployment::dense_gpt2_100b_p4d().snapshot(),
                Deployment::dense_gpt2_40b_p3dn().snapshot(),
            ],
            plans,
            memo: RecoveryMemo::new(),
            flight: SingleFlight::new(),
            sink,
        }
    }

    /// Serves one request line: parse, dedup, answer. Always returns a
    /// single-line JSON response; never panics on malformed input.
    pub fn serve_line(&self, line: &str) -> String {
        let query = match Query::parse(line) {
            Ok(q) => q,
            Err(e) => {
                self.sink.counter_add("service.parse_errors", 1);
                // Best-effort id recovery so tenants can correlate the
                // error even when validation (not syntax) failed.
                let id = crate::json::parse(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(|i| i.as_str().map(str::to_string)))
                    .unwrap_or_default();
                return format!(
                    "{{\"id\":\"{}\",\"ok\":false,\"error\":\"{}\"}}",
                    crate::json::escape(&id),
                    crate::json::escape(&e)
                );
            }
        };
        let (tail, _deduped) = self
            .flight
            .run(query.canonical(), || self.answer_tail(&query));
        format!("{{\"id\":\"{}\",{tail}}}", crate::json::escape(&query.id))
    }

    /// Serves a batch of request lines across `jobs` workers, responses
    /// in input order. Byte-identical output at any `jobs`, cold or warm.
    pub fn serve_batch(&self, lines: &[String], jobs: usize) -> Vec<String> {
        self.serve_batch_with_stats(lines, jobs).0
    }

    /// [`ServiceEngine::serve_batch`] plus serving statistics, and the
    /// `service.*` counters updated on the engine's sink.
    pub fn serve_batch_with_stats(&self, lines: &[String], jobs: usize) -> (Vec<String>, BatchStats) {
        let (hits0, miss0) = (self.memo.hits(), self.memo.misses());
        let (exec0, dedup0) = (self.flight.executions(), self.flight.dedup_hits());
        let timed: Vec<(String, u64)> = par_map(jobs.max(1), lines.len(), |i| {
            let start = std::time::Instant::now();
            let response = self.serve_line(&lines[i]);
            (response, start.elapsed().as_micros() as u64)
        });
        let mut responses = Vec::with_capacity(timed.len());
        let mut stats = BatchStats::default();
        for (response, us) in timed {
            stats.queries += 1;
            if response.contains("\"ok\":false") {
                stats.errors += 1;
            }
            stats.latencies_us.push(us);
            responses.push(response);
        }
        stats.cache_hits = self.memo.hits() - hits0;
        stats.cache_misses = self.memo.misses() - miss0;
        stats.executions = self.flight.executions() - exec0;
        stats.dedup_hits = self.flight.dedup_hits() - dedup0;
        self.sink.counter_add("service.queries", stats.queries);
        self.sink.counter_add("service.errors", stats.errors);
        self.sink.counter_add("service.cache_hits", stats.cache_hits);
        self.sink.counter_add("service.cache_misses", stats.cache_misses);
        self.sink.counter_add("service.executions", stats.executions);
        self.sink.counter_add("service.dedup_hits", stats.dedup_hits);
        for &us in &stats.latencies_us {
            self.sink.observe_us("service.query_latency_us", || us);
        }
        (responses, stats)
    }

    /// Recoverability-memo hit rate over the engine's lifetime.
    pub fn cache_hit_rate(&self) -> f64 {
        self.memo.hit_rate()
    }

    /// Lifetime single-flight counters `(executions, dedup_hits)`.
    pub fn flight_counters(&self) -> (u64, u64) {
        (self.flight.executions(), self.flight.dedup_hits())
    }

    /// The response minus its `id` field — everything after `{"id":"…",`.
    /// This is the unit the single-flight layer shares between tenants:
    /// identical canonical queries from different ids get the same tail.
    fn answer_tail(&self, query: &Query) -> String {
        let kind = query.kind_tag();
        match self.answer(&query.kind) {
            Ok(body) => format!(
                "\"kind\":\"{kind}\",\"ok\":true,\"body\":\"{}\"",
                crate::json::escape(&body)
            ),
            Err(e) => format!(
                "\"kind\":\"{kind}\",\"ok\":false,\"error\":\"{}\"",
                crate::json::escape(&e)
            ),
        }
    }

    fn answer(&self, kind: &QueryKind) -> Result<String, String> {
        match kind {
            QueryKind::Drill(q) => self.answer_drill(q),
            QueryKind::Recoverability(q) => self.answer_recoverability(q),
            QueryKind::Chaos(q) => self.answer_chaos(q),
            QueryKind::Lookahead(q) => self.answer_lookahead(q),
        }
    }

    /// A copy-on-write fork of the catalog base matching the query's
    /// model × instance, or a fresh single-use snapshot for combinations
    /// outside the catalog.
    fn fork_for(&self, q: &DrillQuery) -> Fork<Deployment> {
        for base in &self.catalog {
            let d = base.get();
            if std::ptr::eq(d.model, q.model) && std::ptr::eq(d.instance, q.instance) {
                return base.fork();
            }
        }
        Deployment::with_workload(
            q.model,
            q.instance,
            q.machines,
            gemini_training::WorkloadSpec::dense(),
        )
        .snapshot()
        .fork()
    }

    fn answer_drill(&self, q: &DrillQuery) -> Result<String, String> {
        let mut fork = self.fork_for(q);
        if fork.get().machines != q.machines {
            fork.make_mut().machines = q.machines;
        }
        if fork.get().config.replicas != q.replicas {
            fork.make_mut().config.replicas = q.replicas;
        }
        if fork.get().workload != q.workload {
            fork.make_mut().workload = q.workload;
        }
        let report = Scenario::drill_from_fork(
            fork,
            q.failures.clone(),
            q.fail_during_iteration,
            OperatorConfig {
                standbys: q.standbys,
                ..OperatorConfig::default()
            },
            q.seed,
        )
        .run()
        .map_err(|e| e.to_string())?;
        Ok(report.render())
    }

    fn answer_recoverability(&self, q: &RecoverabilityQuery) -> Result<String, String> {
        let mut deployment = Deployment::with_workload(
            gemini_training::ModelConfig::gpt2_100b(),
            gemini_cluster::InstanceType::p4d(),
            q.machines,
            gemini_training::WorkloadSpec::dense(),
        );
        deployment.config.replicas = q.replicas;
        let placement = deployment.placement().map_err(|e| e.to_string())?;
        let curve = self.memo.curve(&placement, q.max_k);
        let mut body = format!(
            "recoverability strategy={:?} machines={} replicas={}\n",
            placement.strategy(),
            q.machines,
            q.replicas
        );
        for (k, p) in curve.iter().enumerate() {
            body.push_str(&format!("k={k} p={p}\n"));
        }
        Ok(body)
    }

    /// The plan catalog entry plus its shareable deployment snapshot.
    fn plan_named(&self, name: &str) -> Result<(&ChaosPlan, &Snapshot<Deployment>), String> {
        self.plans
            .iter()
            .find(|(p, _)| p.name == name)
            .map(|(p, s)| (p, s))
            .ok_or_else(|| format!("unknown chaos plan {name:?}"))
    }

    /// Materializes a plan for a query: the fault schedule is cloned from
    /// the catalog, the deployment comes from a fork of the shared
    /// snapshot (cloned only when the query overrides it).
    fn plan_for(
        &self,
        name: &str,
        machines: Option<usize>,
        replicas: Option<usize>,
    ) -> Result<ChaosPlan, String> {
        let (plan, base) = self.plan_named(name)?;
        let mut fork = base.fork();
        if let Some(n) = machines {
            if fork.get().machines != n {
                fork.make_mut().machines = n;
            }
        }
        if let Some(m) = replicas {
            if fork.get().config.replicas != m {
                fork.make_mut().config.replicas = m;
            }
        }
        let mut plan = plan.clone();
        plan.scenario = fork.into_owned();
        Ok(plan)
    }

    fn policy_spec(&self, name: &str) -> Result<PolicySpec, String> {
        if name == "adaptive" {
            return Ok(PolicySpec::adaptive());
        }
        gemini_baselines::fixed_policies()
            .into_iter()
            .chain(gemini_baselines::fixed_scheme_policies())
            .chain(gemini_baselines::fixed_mode_policies())
            .find(|p| p.name == name)
            .map(PolicySpec::Fixed)
            .ok_or_else(|| format!("unknown policy {name:?}"))
    }

    fn answer_chaos(&self, q: &ChaosQuery) -> Result<String, String> {
        let plan = self.plan_for(&q.plan, q.machines, q.replicas)?;
        let mut run = Scenario::chaos(plan).seed(q.seed);
        if let Some(name) = &q.policy {
            run = run.policy(self.policy_spec(name)?);
        } else if let Some(mode) = q.mode {
            // `mode` is shorthand for the matching fixed comparator.
            run = run.policy(self.policy_spec(&format!("mode_{}", mode.label()))?);
        }
        let report = run.run().map_err(|e| e.to_string())?;
        Ok(report.render())
    }

    /// The speculative-selection primitive: fork the plan's deployment,
    /// price every candidate policy forward under the same seed, answer
    /// with the cheapest by total wasted time (ties to the earlier
    /// candidate).
    fn answer_lookahead(&self, q: &LookaheadQuery) -> Result<String, String> {
        let mut body = format!("lookahead plan={} seed={}\n", q.plan, q.seed);
        let mut best: Option<(usize, f64)> = None;
        for (i, name) in q.candidates.iter().enumerate() {
            let plan = self.plan_for(&q.plan, q.machines, q.replicas)?;
            let report = Scenario::chaos(plan)
                .seed(q.seed)
                .policy(self.policy_spec(name)?)
                .run()
                .map_err(|e| e.to_string())?;
            let wasted = report.wasted.total().as_secs_f64();
            body.push_str(&format!(
                "candidate={name} wasted={wasted:.3}s green={}\n",
                report.is_green()
            ));
            if best.map(|(_, w)| wasted < w).unwrap_or(true) {
                best = Some((i, wasted));
            }
        }
        let (i, wasted) = best.expect("candidates are validated non-empty");
        body.push_str(&format!("best={} wasted={wasted:.3}s\n", q.candidates[i]));
        Ok(body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> ServiceEngine {
        ServiceEngine::new(TelemetrySink::disabled())
    }

    #[test]
    fn malformed_lines_get_error_responses_not_panics() {
        let e = engine();
        for line in [
            "",
            "not json",
            "{\"kind\":\"warp\"}",
            "{\"machines\":0}",
            "{\"kind\":\"drill\",\"failures\":[[5,\"hardware\"],[5,\"hardware\"]]}",
        ] {
            let resp = e.serve_line(line);
            assert!(resp.contains("\"ok\":false"), "line {line:?} -> {resp}");
            assert!(resp.ends_with('}'), "single JSON object: {resp}");
        }
    }

    #[test]
    fn recoverability_is_served_from_the_memo() {
        let e = engine();
        let q = r#"{"id":"r","kind":"recoverability","machines":16,"replicas":2,"max_k":3}"#;
        let a = e.serve_line(q);
        assert!(a.contains("\"ok\":true"), "{a}");
        assert!(a.contains("k=0 p=1"), "{a}");
        let misses_after_first = e.memo_misses();
        let b = e.serve_line(q);
        assert_eq!(a, b, "warm answer must be byte-identical");
        assert_eq!(
            e.memo_misses(),
            misses_after_first,
            "second ask must not recompute"
        );
        assert!(e.memo_hits() > 0);
    }

    #[test]
    fn drill_response_matches_the_one_shot_builder() {
        use gemini_harness::DrillConfig;
        let e = engine();
        let resp = e.serve_line(r#"{"id":"d","kind":"drill","seed":1}"#);
        let direct = Scenario::drill(DrillConfig::fig14()).run().unwrap();
        let expected = format!(
            "\"kind\":\"drill\",\"ok\":true,\"body\":\"{}\"",
            crate::json::escape(&direct.render())
        );
        assert_eq!(resp, format!("{{\"id\":\"d\",{expected}}}"));
    }

    #[test]
    fn batch_order_is_input_order_at_any_jobs() {
        let e = engine();
        let lines: Vec<String> = (0..6)
            .map(|i| format!("{{\"id\":\"q{i}\",\"kind\":\"recoverability\",\"max_k\":{}}}", i % 3))
            .collect();
        let (one, _) = e.serve_batch_with_stats(&lines, 1);
        let (four, stats) = engine().serve_batch_with_stats(&lines, 4);
        assert_eq!(one, four);
        assert_eq!(stats.queries, 6);
        for (i, resp) in one.iter().enumerate() {
            assert!(resp.starts_with(&format!("{{\"id\":\"q{i}\"")), "{resp}");
        }
    }

    impl ServiceEngine {
        fn memo_hits(&self) -> u64 {
            self.memo.hits()
        }
        fn memo_misses(&self) -> u64 {
            self.memo.misses()
        }
    }
}
