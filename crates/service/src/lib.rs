//! Scenario-as-a-service: a long-running, multi-tenant what-if query
//! engine over GEMINI's simulation stack (ROADMAP item 3).
//!
//! The unit of traffic is a *what-if query*: cluster spec × workload ×
//! fault plan × policy in, a wasted-time / recoverability report out
//! (the paper's §2.1 schema). The engine is built to serve thousands of
//! such queries concurrently over shared immutable state:
//!
//! * [`json`] — a dep-free JSON reader/escaper (the crate has no
//!   external dependencies, like `gemini-parallel`).
//! * [`query`] — the request schema: `drill`, `recoverability`,
//!   `chaos` and `lookahead` kinds, validated at parse time.
//! * [`engine`] — [`ServiceEngine`]: copy-on-write deployment forks,
//!   the keyed recoverability memo, single-flight dedup on canonical
//!   query hashes, and `service.*` telemetry.
//!
//! The front door is the `scenario serve` mode in `gemini-bench`
//! (line-delimited JSON on stdin or a request file); `docs/SERVICE.md`
//! documents the schema and the determinism contract.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod json;
pub mod query;

pub use engine::{BatchStats, ServiceEngine};
pub use json::Json;
pub use query::{
    ChaosQuery, DrillQuery, LookaheadQuery, Query, QueryKind, RecoverabilityQuery,
    MAX_LOOKAHEAD_CANDIDATES, MAX_QUERY_K, MAX_QUERY_MACHINES,
};
