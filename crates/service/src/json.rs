//! A minimal hand-rolled JSON layer: the service is dep-free by design
//! (same discipline as `gemini-parallel`), so request parsing and
//! response escaping cannot lean on an external crate.
//!
//! The parser is a recursive-descent reader over the full JSON grammar
//! (objects, arrays, strings with escapes, numbers, literals) that
//! produces a [`Json`] tree; errors carry the byte offset so a malformed
//! query line yields a useful per-query diagnostic instead of killing
//! the serve loop. The writer side is just [`escape`]: responses are
//! assembled field-by-field with `format!` so their byte layout is
//! fully deterministic.

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a `BTreeMap`, so key iteration (and
/// therefore any canonical re-rendering) is deterministic regardless of
/// the key order in the request.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` for absent keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error (so `{"a":1} garbage` is rejected, not silently truncated).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        raw.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {other:?} at byte {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (requests are valid UTF-8:
                    // they arrive as `&str`).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_query_shapes() {
        let q = parse(
            r#"{"id":"q1","kind":"drill","machines":16,"failures":[[5,"hardware"]],"deep":{"a":null,"b":true}}"#,
        )
        .unwrap();
        assert_eq!(q.get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(q.get("machines").unwrap().as_u64(), Some(16));
        let failures = q.get("failures").unwrap().as_array().unwrap();
        assert_eq!(failures[0].as_array().unwrap()[0].as_u64(), Some(5));
        assert_eq!(q.get("deep").unwrap().get("b"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_malformed_input_with_offsets() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse(r#"{"a":1} extra"#).unwrap_err().contains("trailing"));
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("[1,2,").is_err());
        assert!(parse(r#""open"#).is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1.2.3").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
        assert_eq!(escape("a\"b\\c\nd"), r#"a\"b\\c\nd"#);
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_parse_and_gate_integers() {
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e2").unwrap().as_u64(), Some(100));
    }
}
