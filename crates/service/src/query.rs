//! The what-if query model: one line of JSON in, one typed [`Query`] out.
//!
//! A query names a cluster spec, a workload, a fault plan and (optionally)
//! a policy, and asks for a wasted-time / recoverability report — the unit
//! of traffic the service is built around. Four kinds exist:
//!
//! * `drill` — the Fig. 14 single-failure recovery drill against an
//!   arbitrary deployment (model × instance × machines × replicas).
//! * `recoverability` — the analytic `P(recovery | k failures)` curve for
//!   a placement spec, served from the keyed memo cache.
//! * `chaos` — one named chaos plan under an optional policy, rendered
//!   through the canonical [`gemini_harness::ChaosReport::render`].
//! * `lookahead` — fork the plan's deployment and price N candidate
//!   policies forward, answering with the cheapest (Chameleon-style
//!   speculative policy selection).
//!
//! Everything is validated at parse time: unknown models, instances,
//! plans, policies, malformed failure lists, zero iteration indices and
//! absurd fleet sizes all come back as per-query errors instead of
//! reaching the simulation layer.

use crate::json::{self, Json};
use gemini_cluster::{FailureKind, InstanceType};
use gemini_core::RecoveryMode;
use gemini_harness::ChaosPlan;
use gemini_training::{ModelConfig, WorkloadSpec};

/// Hard cap on `machines` in a query: large enough for the fleet-scale
/// paths (10k machines), small enough that a hostile query cannot make
/// the engine allocate per-machine state without bound.
pub const MAX_QUERY_MACHINES: usize = 20_000;

/// Hard cap on `max_k` in a recoverability query.
pub const MAX_QUERY_K: usize = 256;

/// Hard cap on lookahead candidate lists.
pub const MAX_LOOKAHEAD_CANDIDATES: usize = 16;

/// A parsed, validated query.
#[derive(Clone, Debug)]
pub struct Query {
    /// Echoed verbatim in the response; not part of the canonical key.
    pub id: String,
    /// What is being asked.
    pub kind: QueryKind,
}

/// The four query kinds.
#[derive(Clone, Debug)]
pub enum QueryKind {
    /// A single-failure recovery drill.
    Drill(DrillQuery),
    /// The analytic recovery-probability curve.
    Recoverability(RecoverabilityQuery),
    /// One chaos plan under an optional policy.
    Chaos(ChaosQuery),
    /// Price N candidate policies forward on a forked deployment.
    Lookahead(LookaheadQuery),
}

/// `kind: "drill"`.
#[derive(Clone, Debug)]
pub struct DrillQuery {
    /// The model under training (Table 2 name).
    pub model: &'static ModelConfig,
    /// The instance type (Table 1 name).
    pub instance: &'static InstanceType,
    /// Fleet size `N`.
    pub machines: usize,
    /// Checkpoint replicas `m`.
    pub replicas: usize,
    /// Standby machines held by the cloud operator.
    pub standbys: usize,
    /// The training recipe: `"dense"` (default) or `"moe"` (the default
    /// expert-parallel gating knobs with sparse checkpointing).
    pub workload: WorkloadSpec,
    /// `[rank, kind]` failures, all at the same instant.
    pub failures: Vec<(usize, FailureKind)>,
    /// Which iteration the failure interrupts (1-based).
    pub fail_during_iteration: u64,
    /// RNG seed.
    pub seed: u64,
}

/// `kind: "recoverability"`.
#[derive(Clone, Debug, PartialEq)]
pub struct RecoverabilityQuery {
    /// Fleet size `N`.
    pub machines: usize,
    /// Checkpoint replicas `m`.
    pub replicas: usize,
    /// The curve is reported for `k = 0 ..= max_k` failures.
    pub max_k: usize,
}

/// `kind: "chaos"`.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosQuery {
    /// A plan name from [`ChaosPlan::extended_catalog`].
    pub plan: String,
    /// RNG seed.
    pub seed: u64,
    /// `"adaptive"` or a fixed policy/scheme/mode comparator name; `None`
    /// runs the plan without a policy engine.
    pub policy: Option<String>,
    /// Pin the failure response: `"wait"`, `"shrink"` or `"step_up"`.
    /// Shorthand for the matching `mode_*` fixed policy; mutually
    /// exclusive with `policy`.
    pub mode: Option<RecoveryMode>,
    /// Optional fleet-size override, applied to a fork of the plan's
    /// deployment.
    pub machines: Option<usize>,
    /// Optional replica-count override, applied to the same fork.
    pub replicas: Option<usize>,
}

/// `kind: "lookahead"`.
#[derive(Clone, Debug, PartialEq)]
pub struct LookaheadQuery {
    /// A plan name from [`ChaosPlan::extended_catalog`].
    pub plan: String,
    /// RNG seed (every candidate is priced under the same seed).
    pub seed: u64,
    /// Candidate policies, priced in order; ties go to the earlier one.
    pub candidates: Vec<String>,
    /// Optional fleet-size override (forked, never mutating the plan).
    pub machines: Option<usize>,
    /// Optional replica-count override.
    pub replicas: Option<usize>,
}

impl Query {
    /// Parses and validates one request line.
    pub fn parse(line: &str) -> Result<Query, String> {
        let v = json::parse(line)?;
        if !matches!(v, Json::Obj(_)) {
            return Err("query must be a JSON object".to_string());
        }
        let id = match v.get("id") {
            None => String::new(),
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Num(n)) => format_f64(*n),
            Some(_) => return Err("\"id\" must be a string or number".to_string()),
        };
        let kind = match v.get("kind").map(|k| k.as_str()) {
            None => "drill",
            Some(Some(k)) => k,
            Some(None) => return Err("\"kind\" must be a string".to_string()),
        };
        let kind = match kind {
            "drill" => QueryKind::Drill(DrillQuery::from_json(&v)?),
            "recoverability" => QueryKind::Recoverability(RecoverabilityQuery::from_json(&v)?),
            "chaos" => QueryKind::Chaos(ChaosQuery::from_json(&v)?),
            "lookahead" => QueryKind::Lookahead(LookaheadQuery::from_json(&v)?),
            other => return Err(format!("unknown query kind {other:?}")),
        };
        Ok(Query { id, kind })
    }

    /// The canonical key: a deterministic rendering of everything except
    /// `id`. Two tenants asking the same question produce the same key,
    /// which is what the single-flight layer dedups on.
    pub fn canonical(&self) -> String {
        match &self.kind {
            QueryKind::Drill(q) => {
                let failures: Vec<String> = q
                    .failures
                    .iter()
                    .map(|(rank, kind)| format!("{rank}:{}", kind_name(*kind)))
                    .collect();
                format!(
                    "drill|model={}|instance={}|machines={}|replicas={}|standbys={}|workload={}|failures={}|fail_iter={}|seed={}",
                    q.model.name,
                    q.instance.name,
                    q.machines,
                    q.replicas,
                    q.standbys,
                    q.workload.label(),
                    failures.join(","),
                    q.fail_during_iteration,
                    q.seed,
                )
            }
            QueryKind::Recoverability(q) => format!(
                "recoverability|machines={}|replicas={}|max_k={}",
                q.machines, q.replicas, q.max_k
            ),
            QueryKind::Chaos(q) => format!(
                "chaos|plan={}|seed={}|policy={}|mode={}|machines={}|replicas={}",
                q.plan,
                q.seed,
                q.policy.as_deref().unwrap_or("-"),
                q.mode.map_or("-", |m| m.label()),
                opt(q.machines),
                opt(q.replicas),
            ),
            QueryKind::Lookahead(q) => format!(
                "lookahead|plan={}|seed={}|candidates={}|machines={}|replicas={}",
                q.plan,
                q.seed,
                q.candidates.join(","),
                opt(q.machines),
                opt(q.replicas),
            ),
        }
    }

    /// The kind tag echoed in responses.
    pub fn kind_tag(&self) -> &'static str {
        match &self.kind {
            QueryKind::Drill(_) => "drill",
            QueryKind::Recoverability(_) => "recoverability",
            QueryKind::Chaos(_) => "chaos",
            QueryKind::Lookahead(_) => "lookahead",
        }
    }
}

fn opt(v: Option<usize>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "-".to_string(),
    }
}

fn kind_name(kind: FailureKind) -> &'static str {
    match kind {
        FailureKind::Hardware => "hardware",
        FailureKind::Software => "software",
    }
}

fn format_f64(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn usize_field(v: &Json, key: &str, default: usize) -> Result<usize, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .map(|n| n as usize)
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn u64_field(v: &Json, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => j
            .as_u64()
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn opt_usize_field(v: &Json, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(j) => j
            .as_u64()
            .map(|n| Some(n as usize))
            .ok_or_else(|| format!("{key:?} must be a non-negative integer")),
    }
}

fn check_fleet(machines: usize, replicas: usize) -> Result<(), String> {
    if machines == 0 {
        return Err("\"machines\" must be at least 1".to_string());
    }
    if machines > MAX_QUERY_MACHINES {
        return Err(format!(
            "\"machines\" exceeds the query cap ({MAX_QUERY_MACHINES})"
        ));
    }
    if replicas == 0 {
        return Err("\"replicas\" must be at least 1".to_string());
    }
    Ok(())
}

fn plan_name_field(v: &Json) -> Result<String, String> {
    let name = v
        .get("plan")
        .and_then(|p| p.as_str())
        .ok_or("\"plan\" must name a chaos plan")?;
    if !ChaosPlan::extended_catalog().iter().any(|p| p.name == name) {
        return Err(format!("unknown chaos plan {name:?}"));
    }
    Ok(name.to_string())
}

fn policy_name_ok(name: &str) -> bool {
    name == "adaptive"
        || gemini_baselines::fixed_policies()
            .iter()
            .chain(gemini_baselines::fixed_scheme_policies().iter())
            .chain(gemini_baselines::fixed_mode_policies().iter())
            .any(|p| p.name == name)
}

fn workload_field(v: &Json) -> Result<WorkloadSpec, String> {
    match v.get("workload") {
        None => Ok(WorkloadSpec::dense()),
        Some(j) => match j.as_str() {
            Some("dense") => Ok(WorkloadSpec::dense()),
            Some("moe") => Ok(WorkloadSpec::moe_default()),
            _ => Err("\"workload\" must be \"dense\" or \"moe\"".to_string()),
        },
    }
}

fn mode_field(v: &Json) -> Result<Option<RecoveryMode>, String> {
    match v.get("mode") {
        None | Some(Json::Null) => Ok(None),
        Some(j) => match j.as_str() {
            Some("wait") => Ok(Some(RecoveryMode::Wait)),
            Some("shrink") => Ok(Some(RecoveryMode::Shrink)),
            Some("step_up") => Ok(Some(RecoveryMode::StepUp)),
            _ => Err("\"mode\" must be \"wait\", \"shrink\" or \"step_up\"".to_string()),
        },
    }
}

impl DrillQuery {
    fn from_json(v: &Json) -> Result<DrillQuery, String> {
        let model_name = match v.get("model") {
            None => "GPT-2 100B",
            Some(j) => j.as_str().ok_or("\"model\" must be a string")?,
        };
        let model = ModelConfig::by_name(model_name)
            .ok_or_else(|| format!("unknown model {model_name:?}; see Table 2"))?;
        let instance_name = match v.get("instance") {
            None => "p4d.24xlarge",
            Some(j) => j.as_str().ok_or("\"instance\" must be a string")?,
        };
        let instance = InstanceType::by_name(instance_name)
            .ok_or_else(|| format!("unknown instance {instance_name:?}; see Table 1"))?;
        let machines = usize_field(v, "machines", 16)?;
        let replicas = usize_field(v, "replicas", 2)?;
        check_fleet(machines, replicas)?;
        let standbys = usize_field(v, "standbys", 0)?;
        let workload = workload_field(v)?;
        let fail_during_iteration = u64_field(v, "fail_during_iteration", 4)?;
        if fail_during_iteration == 0 {
            return Err("\"fail_during_iteration\" is 1-based; 0 never strikes".to_string());
        }
        let seed = u64_field(v, "seed", 1)?;
        let mut failures = Vec::new();
        if let Some(list) = v.get("failures") {
            let list = list.as_array().ok_or("\"failures\" must be an array")?;
            for entry in list {
                let pair = entry
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("failure entries are [rank, kind] pairs")?;
                let rank = pair[0]
                    .as_u64()
                    .ok_or("failure rank must be a non-negative integer")?
                    as usize;
                if rank >= machines {
                    return Err(format!("failure rank {rank} out of range (N={machines})"));
                }
                let kind = match pair[1].as_str() {
                    Some("hardware") => FailureKind::Hardware,
                    Some("software") => FailureKind::Software,
                    _ => return Err("failure kind must be \"hardware\" or \"software\"".to_string()),
                };
                failures.push((rank, kind));
            }
        }
        if failures.is_empty() {
            failures.push((machines.saturating_sub(1) / 2, FailureKind::Hardware));
        }
        Ok(DrillQuery {
            model,
            instance,
            machines,
            replicas,
            standbys,
            workload,
            failures,
            fail_during_iteration,
            seed,
        })
    }
}

impl RecoverabilityQuery {
    fn from_json(v: &Json) -> Result<RecoverabilityQuery, String> {
        let machines = usize_field(v, "machines", 16)?;
        let replicas = usize_field(v, "replicas", 2)?;
        check_fleet(machines, replicas)?;
        let max_k = usize_field(v, "max_k", 4)?;
        if max_k > MAX_QUERY_K {
            return Err(format!("\"max_k\" exceeds the query cap ({MAX_QUERY_K})"));
        }
        Ok(RecoverabilityQuery {
            machines,
            replicas,
            max_k,
        })
    }
}

impl ChaosQuery {
    fn from_json(v: &Json) -> Result<ChaosQuery, String> {
        let plan = plan_name_field(v)?;
        let seed = u64_field(v, "seed", 1)?;
        let policy = match v.get("policy") {
            None | Some(Json::Null) => None,
            Some(j) => {
                let name = j.as_str().ok_or("\"policy\" must be a string")?;
                if !policy_name_ok(name) {
                    return Err(format!("unknown policy {name:?}"));
                }
                Some(name.to_string())
            }
        };
        let mode = mode_field(v)?;
        if mode.is_some() && policy.is_some() {
            return Err(
                "\"mode\" and \"policy\" are mutually exclusive; \"mode\" is shorthand \
                 for the matching mode_* fixed policy"
                    .to_string(),
            );
        }
        let (machines, replicas) = override_fields(v)?;
        Ok(ChaosQuery {
            plan,
            seed,
            policy,
            mode,
            machines,
            replicas,
        })
    }
}

impl LookaheadQuery {
    fn from_json(v: &Json) -> Result<LookaheadQuery, String> {
        let plan = plan_name_field(v)?;
        let seed = u64_field(v, "seed", 1)?;
        let list = v
            .get("candidates")
            .and_then(|c| c.as_array())
            .ok_or("\"candidates\" must be an array of policy names")?;
        if list.is_empty() {
            return Err("\"candidates\" must not be empty".to_string());
        }
        if list.len() > MAX_LOOKAHEAD_CANDIDATES {
            return Err(format!(
                "\"candidates\" exceeds the query cap ({MAX_LOOKAHEAD_CANDIDATES})"
            ));
        }
        let mut candidates = Vec::with_capacity(list.len());
        for entry in list {
            let name = entry.as_str().ok_or("candidate names must be strings")?;
            if !policy_name_ok(name) {
                return Err(format!("unknown policy {name:?}"));
            }
            candidates.push(name.to_string());
        }
        let (machines, replicas) = override_fields(v)?;
        Ok(LookaheadQuery {
            plan,
            seed,
            candidates,
            machines,
            replicas,
        })
    }
}

fn override_fields(v: &Json) -> Result<(Option<usize>, Option<usize>), String> {
    let machines = opt_usize_field(v, "machines")?;
    let replicas = opt_usize_field(v, "replicas")?;
    if let Some(n) = machines {
        check_fleet(n, replicas.unwrap_or(1))?;
    } else if let Some(m) = replicas {
        if m == 0 {
            return Err("\"replicas\" must be at least 1".to_string());
        }
    }
    Ok((machines, replicas))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drill_defaults_mirror_the_scenario_bin() {
        let q = Query::parse(r#"{"id":"a"}"#).unwrap();
        match &q.kind {
            QueryKind::Drill(d) => {
                assert_eq!(d.model.name, "GPT-2 100B");
                assert_eq!(d.instance.name, "p4d.24xlarge");
                assert_eq!(d.machines, 16);
                assert_eq!(d.replicas, 2);
                assert_eq!(d.failures, vec![(7, FailureKind::Hardware)]);
                assert_eq!(d.fail_during_iteration, 4);
                assert_eq!(d.seed, 1);
            }
            other => panic!("expected drill, got {other:?}"),
        }
    }

    #[test]
    fn canonical_is_id_independent() {
        let a = Query::parse(r#"{"id":"tenant-a","kind":"drill","seed":3}"#).unwrap();
        let b = Query::parse(r#"{"id":"tenant-b","seed":3,"kind":"drill"}"#).unwrap();
        assert_eq!(a.canonical(), b.canonical());
        let c = Query::parse(r#"{"id":"tenant-a","kind":"drill","seed":4}"#).unwrap();
        assert_ne!(a.canonical(), c.canonical());
    }

    #[test]
    fn validation_rejects_the_sharp_edges() {
        for bad in [
            r#"{"kind":"warp"}"#,
            r#"{"machines":0}"#,
            r#"{"machines":1000000}"#,
            r#"{"replicas":0}"#,
            r#"{"fail_during_iteration":0}"#,
            r#"{"failures":[[99,"hardware"]]}"#,
            r#"{"failures":[[1,"cosmic"]]}"#,
            r#"{"failures":[5]}"#,
            r#"{"kind":"recoverability","max_k":10000}"#,
            r#"{"kind":"chaos","plan":"nope"}"#,
            r#"{"kind":"chaos","plan":"root_churn","policy":"nope"}"#,
            r#"{"workload":"sparse"}"#,
            r#"{"workload":7}"#,
            r#"{"kind":"chaos","plan":"root_churn","mode":"regrow"}"#,
            r#"{"kind":"chaos","plan":"root_churn","mode":"shrink","policy":"adaptive"}"#,
            r#"{"kind":"lookahead","plan":"root_churn"}"#,
            r#"{"kind":"lookahead","plan":"root_churn","candidates":[]}"#,
            r#"{"kind":"lookahead","plan":"root_churn","candidates":["nope"]}"#,
            "not json",
            "[1,2]",
        ] {
            assert!(Query::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn chaos_and_lookahead_parse_fully() {
        let q = Query::parse(
            r#"{"id":"c","kind":"chaos","plan":"kill_mid_checkpoint","seed":7,"policy":"adaptive","machines":32}"#,
        )
        .unwrap();
        assert_eq!(q.kind_tag(), "chaos");
        assert!(q.canonical().contains("plan=kill_mid_checkpoint"));
        let q = Query::parse(
            r#"{"kind":"lookahead","plan":"root_churn","candidates":["adaptive","paper_3h"]}"#,
        )
        .unwrap();
        match &q.kind {
            QueryKind::Lookahead(l) => assert_eq!(l.candidates.len(), 2),
            other => panic!("expected lookahead, got {other:?}"),
        }
    }

    #[test]
    fn workload_parses_and_keys_the_canonical_form() {
        let dense = Query::parse(r#"{"id":"a","kind":"drill"}"#).unwrap();
        let moe = Query::parse(r#"{"id":"a","kind":"drill","workload":"moe"}"#).unwrap();
        match &moe.kind {
            QueryKind::Drill(d) => assert!(d.workload.is_moe()),
            other => panic!("expected drill, got {other:?}"),
        }
        assert!(dense.canonical().contains("workload=dense"));
        assert!(moe.canonical().contains("workload=moe"));
        assert_ne!(dense.canonical(), moe.canonical());
    }

    #[test]
    fn mode_parses_and_keys_the_canonical_form() {
        let q = Query::parse(
            r#"{"id":"m","kind":"chaos","plan":"kill_mid_checkpoint","mode":"shrink"}"#,
        )
        .unwrap();
        match &q.kind {
            QueryKind::Chaos(c) => assert_eq!(c.mode, Some(RecoveryMode::Shrink)),
            other => panic!("expected chaos, got {other:?}"),
        }
        assert!(q.canonical().contains("mode=shrink"));
        // Mode comparators are addressable as plain fixed policies too.
        for name in ["mode_wait", "mode_shrink", "mode_step_up"] {
            assert!(policy_name_ok(name), "{name} must be a known policy");
        }
    }
}
