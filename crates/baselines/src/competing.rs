//! Competing fault-tolerance schemes (Chameleon-style selectable
//! baselines).
//!
//! GEMINI's wasted-time model (§2.1) prices exactly one scheme:
//! CPU-memory checkpointing with interleaved traffic. The adaptive-FT
//! layer needs real competitors to choose between, so this module models
//! the three published alternatives on the same net/training machinery:
//!
//! * **Checkmate-style gradient replication** — each machine pushes its
//!   gradient shard to its replica peers during the all-reduce window,
//!   making *every* iteration recoverable. The price is fabric time every
//!   iteration (the extra ring traffic cannot be hidden once the NIC is
//!   the bottleneck), not per-checkpoint overhead.
//! * **TierCheck-style GPU-memory tier** — a checkpoint tier *above* CPU
//!   memory: software failures restore from device memory at copy-engine
//!   speed. Feasible only while the checkpoint shard fits in the GPU
//!   headroom that large-model training leaves free (§5.2 profiles "a
//!   few hundred MB" — which is exactly why GEMINI targets CPU memory).
//! * **REFT-style hybrid-parallel sharding** — each machine's checkpoint
//!   is scattered over a fan-out set instead of whole-copied to one
//!   peer, so a replacement re-assembles it fan-in from many NICs at
//!   once. Retrieval shrinks by the fan-out; commits pay a scatter tax.
//!
//! Every scheme implements [`SchemeModel`], so the policy bin's
//! plan×seed×policy matrix and the chaos invariants treat them
//! uniformly, and [`scheme_signals`] compresses the capacity facts into
//! the [`SchemeSignals`] the adaptive `PolicyEngine` prices at iteration
//! boundaries.

use gemini_cluster::InstanceType;
use gemini_core::policy::{SchemeChoice, SchemeSignals};
use gemini_core::RecoveryCase;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;
use gemini_training::models::COMM_BYTES_PER_PARAM;
use gemini_training::ModelConfig;

/// Capacity and timing facts a scheme is priced against. Plain numbers —
/// everything here is derivable at launch from the cluster spec and the
/// profiled iteration, so scheme pricing stays byte-deterministic.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SchemeInputs {
    /// Machines in the job.
    pub machines: usize,
    /// Placement-group replica count `m`.
    pub replicas: usize,
    /// Checkpoint shard per machine (fp32 master + Adam state).
    pub ckpt_bytes_per_machine: ByteSize,
    /// Gradient shard per machine (fp16), the payload Checkmate
    /// replicates.
    pub grad_bytes_per_machine: ByteSize,
    /// Profiled iteration time.
    pub iteration_time: SimDuration,
    /// Visible per-commit overhead of the interleaved CPU checkpoint
    /// (zero when it hides entirely in idle spans).
    pub ckpt_overhead: SimDuration,
    /// Local-CPU retrieval time (software failure, healthy network).
    pub retrieval_local: SimDuration,
    /// Remote-CPU retrieval time (replacement machine, healthy network).
    pub retrieval_remote: SimDuration,
    /// Persistent-storage retrieval time.
    pub retrieval_persistent: SimDuration,
    /// GPU memory headroom per machine (all GPUs together).
    pub gpu_headroom_per_machine: ByteSize,
    /// Checkpoint-traffic cost of the inter-machine fabric.
    pub fabric: TransferCost,
    /// GPU↔CPU copy-engine cost.
    pub copy: TransferCost,
}

impl SchemeInputs {
    /// Builds the inputs from a deployment spec plus profiled timings.
    /// Gradient bytes are the fp16 shard (`2 B/param`), one sixth of the
    /// persisted `12 B/param` checkpoint state.
    #[allow(clippy::too_many_arguments)]
    pub fn from_deployment(
        instance: &InstanceType,
        model: &ModelConfig,
        machines: usize,
        replicas: usize,
        iteration_time: SimDuration,
        ckpt_overhead: SimDuration,
        retrieval_local: SimDuration,
        retrieval_remote: SimDuration,
        retrieval_persistent: SimDuration,
    ) -> Self {
        let grad_total = ByteSize::from_bytes(model.params() * COMM_BYTES_PER_PARAM);
        SchemeInputs {
            machines,
            replicas,
            ckpt_bytes_per_machine: model.checkpoint_bytes_per_machine(machines),
            grad_bytes_per_machine: grad_total / machines.max(1) as u64,
            iteration_time,
            ckpt_overhead,
            retrieval_local,
            retrieval_remote,
            retrieval_persistent,
            gpu_headroom_per_machine: instance.gpu_headroom * instance.gpus as u64,
            fabric: instance.ckpt_net_cost(),
            copy: instance.copy_cost(),
        }
    }
}

/// The common face of a fault-tolerance scheme: what it costs to stay
/// protected, how fresh recovery is, what each recovery path costs, and
/// whether the cluster can run it at all.
pub trait SchemeModel {
    /// Which policy-level choice this model prices.
    fn choice(&self) -> SchemeChoice;

    /// Whether the cluster spec can run this scheme at all.
    fn feasible(&self, inputs: &SchemeInputs) -> bool;

    /// Visible overhead charged per *commit event* at checkpoint cadence
    /// `k` (schemes that protect every iteration commit every iteration,
    /// whatever `k` says).
    fn ckpt_overhead(&self, inputs: &SchemeInputs, cadence: u64) -> SimDuration;

    /// Worst-case iterations rolled back when a failure strikes under
    /// cadence `k`. Never exceeds `k`.
    fn recovery_freshness(&self, cadence: u64) -> u64;

    /// Retrieval time of the given recovery path under this scheme.
    fn retrieval_cost(&self, inputs: &SchemeInputs, case: RecoveryCase) -> SimDuration;
}

/// The paper's scheme: interleaved CPU-memory checkpointing (§4–§5).
pub struct CpuInterleavedModel;

/// Checkmate-style gradient replication during the all-reduce.
pub struct GradientReplicateModel;

/// TierCheck-style GPU-memory checkpoint tier.
pub struct GpuTierModel;

/// REFT-style hybrid-parallel in-memory sharding.
pub struct ShardedHybridModel;

/// Fan-out a sharded checkpoint is scattered over: half the job, but at
/// least the replica pair and at most 8 peers (past that the per-peer
/// alpha dominates the bandwidth win).
pub fn sharded_fanout(machines: usize) -> usize {
    (machines / 2).clamp(2, 8)
}

/// The extra per-commit scatter tax sharding pays: the same bytes cross
/// the NIC, but every extra peer costs one more transfer setup per
/// replica copy.
fn scatter_tax(inputs: &SchemeInputs) -> SimDuration {
    let extra_peers = (sharded_fanout(inputs.machines) - 1) as u64;
    let copies = inputs.replicas.saturating_sub(1).max(1) as u64;
    SimDuration::from_secs_f64(inputs.fabric.alpha.as_secs_f64() * (extra_peers * copies) as f64)
}

impl SchemeModel for CpuInterleavedModel {
    fn choice(&self) -> SchemeChoice {
        SchemeChoice::CpuInterleaved
    }

    fn feasible(&self, _inputs: &SchemeInputs) -> bool {
        true
    }

    fn ckpt_overhead(&self, inputs: &SchemeInputs, _cadence: u64) -> SimDuration {
        inputs.ckpt_overhead
    }

    fn recovery_freshness(&self, cadence: u64) -> u64 {
        cadence
    }

    fn retrieval_cost(&self, inputs: &SchemeInputs, case: RecoveryCase) -> SimDuration {
        match case {
            RecoveryCase::SoftwareLocal => inputs.retrieval_local,
            RecoveryCase::HardwareFromCpu => inputs.retrieval_remote,
            RecoveryCase::PersistentFallback => inputs.retrieval_persistent,
        }
    }
}

impl SchemeModel for GradientReplicateModel {
    fn choice(&self) -> SchemeChoice {
        SchemeChoice::GradientReplicate
    }

    /// The replication traffic must fit inside the iteration it protects.
    fn feasible(&self, inputs: &SchemeInputs) -> bool {
        inputs.machines >= 2 && self.ckpt_overhead(inputs, 1) < inputs.iteration_time
    }

    /// One extra fabric transfer of the gradient shard per replica copy,
    /// paid every iteration (the commit *is* the iteration).
    fn ckpt_overhead(&self, inputs: &SchemeInputs, _cadence: u64) -> SimDuration {
        let copies = inputs.replicas.saturating_sub(1).max(1) as u64;
        inputs.fabric.time_n(inputs.grad_bytes_per_machine, copies)
    }

    /// Every iteration is recoverable; only the in-flight one is redone.
    fn recovery_freshness(&self, _cadence: u64) -> u64 {
        0
    }

    fn retrieval_cost(&self, inputs: &SchemeInputs, case: RecoveryCase) -> SimDuration {
        match case {
            RecoveryCase::SoftwareLocal => inputs.retrieval_local,
            RecoveryCase::HardwareFromCpu => inputs.retrieval_remote,
            RecoveryCase::PersistentFallback => inputs.retrieval_persistent,
        }
    }
}

impl SchemeModel for GpuTierModel {
    fn choice(&self) -> SchemeChoice {
        SchemeChoice::GpuTier
    }

    /// The whole checkpoint shard must fit in the training job's GPU
    /// headroom — at paper scale (GPT-2 100B on 16 machines: 75 GB/shard
    /// vs ≈ 6.4 GB headroom) it does not, which is exactly why GEMINI
    /// checkpoints to CPU memory instead.
    fn feasible(&self, inputs: &SchemeInputs) -> bool {
        inputs.ckpt_bytes_per_machine <= inputs.gpu_headroom_per_machine
    }

    /// The device-memory snapshot rides the same interleaved schedule;
    /// its visible overhead is the CPU path's.
    fn ckpt_overhead(&self, inputs: &SchemeInputs, _cadence: u64) -> SimDuration {
        inputs.ckpt_overhead
    }

    fn recovery_freshness(&self, cadence: u64) -> u64 {
        cadence
    }

    /// Software failures restore from device memory at copy-engine speed
    /// (degrade-immune: no NIC involved); hardware failures lose the GPU
    /// tier with the machine and walk the CPU path.
    fn retrieval_cost(&self, inputs: &SchemeInputs, case: RecoveryCase) -> SimDuration {
        match case {
            RecoveryCase::SoftwareLocal => inputs
                .copy
                .time(inputs.ckpt_bytes_per_machine)
                .min(inputs.retrieval_local),
            RecoveryCase::HardwareFromCpu => inputs.retrieval_remote,
            RecoveryCase::PersistentFallback => inputs.retrieval_persistent,
        }
    }
}

impl SchemeModel for ShardedHybridModel {
    fn choice(&self) -> SchemeChoice {
        SchemeChoice::ShardedHybrid
    }

    /// Needs peers beyond the replica pair to fan out over.
    fn feasible(&self, inputs: &SchemeInputs) -> bool {
        inputs.machines >= 4
    }

    /// The interleaved commit plus the scatter tax.
    fn ckpt_overhead(&self, inputs: &SchemeInputs, _cadence: u64) -> SimDuration {
        inputs.ckpt_overhead + scatter_tax(inputs)
    }

    fn recovery_freshness(&self, cadence: u64) -> u64 {
        cadence
    }

    /// A replacement pulls its shard fan-in from `fanout` peers at once:
    /// the bandwidth-bound remote path divides by the fan-out. A whole
    /// lost group has nothing to fan in from and pays the full fallback.
    fn retrieval_cost(&self, inputs: &SchemeInputs, case: RecoveryCase) -> SimDuration {
        match case {
            RecoveryCase::SoftwareLocal => inputs.retrieval_local,
            RecoveryCase::HardwareFromCpu => SimDuration::from_secs_f64(
                inputs.retrieval_remote.as_secs_f64() / sharded_fanout(inputs.machines) as f64,
            ),
            RecoveryCase::PersistentFallback => inputs.retrieval_persistent,
        }
    }
}

/// Every competing model behind the common trait, in policy order.
pub fn all_models() -> [&'static dyn SchemeModel; 4] {
    [
        &CpuInterleavedModel,
        &GradientReplicateModel,
        &GpuTierModel,
        &ShardedHybridModel,
    ]
}

/// Compresses the capacity facts into the [`SchemeSignals`] the adaptive
/// engine prices at iteration boundaries. Infeasible schemes report
/// `*_feasible: false` and are never proposed.
pub fn scheme_signals(inputs: &SchemeInputs) -> SchemeSignals {
    SchemeSignals {
        gradient_feasible: GradientReplicateModel.feasible(inputs),
        gradient_overhead: GradientReplicateModel.ckpt_overhead(inputs, 1),
        gpu_feasible: GpuTierModel.feasible(inputs),
        gpu_retrieval: GpuTierModel.retrieval_cost(inputs, RecoveryCase::SoftwareLocal),
        sharded_feasible: ShardedHybridModel.feasible(inputs),
        sharded_overhead: scatter_tax(inputs),
        sharded_factor: 1.0 / sharded_fanout(inputs.machines) as f64,
        // On a healthy fabric the replacement machine's own ingress NIC is
        // already the bottleneck, so fan-in cannot beat this; it only claws
        // back per-link degradation.
        remote_baseline: inputs.retrieval_remote,
    }
}

/// The fixed competing-scheme comparator policies the policy bin runs
/// alongside [`crate::fixed_policies`]: each freezes the paper's knobs
/// but swaps the scheme, so every column differs in exactly one
/// dimension.
pub fn fixed_scheme_policies() -> Vec<gemini_core::FixedPolicy> {
    use gemini_core::{FixedPolicy, PolicyKnobs};
    let base = PolicyKnobs::paper_default();
    vec![
        FixedPolicy {
            name: "checkmate_grad",
            knobs: PolicyKnobs {
                scheme: SchemeChoice::GradientReplicate,
                ..base
            },
        },
        FixedPolicy {
            name: "tiercheck_gpu",
            knobs: PolicyKnobs {
                scheme: SchemeChoice::GpuTier,
                ..base
            },
        },
        FixedPolicy {
            name: "reft_sharded",
            knobs: PolicyKnobs {
                scheme: SchemeChoice::ShardedHybrid,
                ..base
            },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim::SimTime;

    /// The paper's large setting: GPT-2 100B on 16 p4d machines.
    fn paper_inputs() -> SchemeInputs {
        SchemeInputs::from_deployment(
            InstanceType::p4d(),
            ModelConfig::gpt2_100b(),
            16,
            2,
            SimDuration::from_secs(62),
            SimDuration::ZERO,
            SimDuration::from_secs(2),
            SimDuration::from_secs(5),
            SimDuration::from_secs(480),
        )
    }

    #[test]
    fn gpu_tier_is_infeasible_at_paper_scale() {
        // 100B params / 16 machines → 75 GB checkpoint shard, far above
        // the ≈ 6.4 GB of GPU headroom — the capacity argument for
        // CPU-memory checkpointing the paper makes in §5.2.
        let inputs = paper_inputs();
        assert!(inputs.ckpt_bytes_per_machine > ByteSize::from_gb(70));
        assert!(!GpuTierModel.feasible(&inputs));
        assert!(!scheme_signals(&inputs).gpu_feasible);
    }

    #[test]
    fn gpu_tier_feasible_for_small_shards() {
        let mut inputs = paper_inputs();
        inputs.ckpt_bytes_per_machine = ByteSize::from_gb(4);
        assert!(GpuTierModel.feasible(&inputs));
        let sig = scheme_signals(&inputs);
        assert!(sig.gpu_feasible);
        // Device restore beats the local-CPU path or at worst matches it.
        assert!(sig.gpu_retrieval <= inputs.retrieval_local);
    }

    #[test]
    fn gradient_replication_prices_fabric_time_per_iteration() {
        let inputs = paper_inputs();
        let ovh = GradientReplicateModel.ckpt_overhead(&inputs, 1);
        // One extra transfer of the 12.5 GB gradient shard on a p4d NIC
        // (~100 Gbps × 0.8): seconds, not milliseconds — Checkmate's
        // "zero overhead" claim does not survive an honest fabric model
        // at this scale.
        assert!(ovh > SimDuration::from_millis(200), "ovh = {ovh}");
        assert!(ovh < inputs.iteration_time, "must stay feasible");
        assert!(GradientReplicateModel.feasible(&inputs));
        // Cadence does not change the per-commit price: the commit is
        // the iteration.
        assert_eq!(ovh, GradientReplicateModel.ckpt_overhead(&inputs, 8));
    }

    #[test]
    fn sharded_fan_in_divides_remote_retrieval() {
        let inputs = paper_inputs();
        let fanout = sharded_fanout(inputs.machines);
        assert_eq!(fanout, 8);
        let full = CpuInterleavedModel.retrieval_cost(&inputs, RecoveryCase::HardwareFromCpu);
        let sharded = ShardedHybridModel.retrieval_cost(&inputs, RecoveryCase::HardwareFromCpu);
        assert_eq!(
            sharded,
            SimDuration::from_secs_f64(full.as_secs_f64() / fanout as f64)
        );
        // The group-loss fallback is untouched: nothing to fan in from.
        assert_eq!(
            ShardedHybridModel.retrieval_cost(&inputs, RecoveryCase::PersistentFallback),
            inputs.retrieval_persistent
        );
    }

    #[test]
    fn scheme_policy_catalog_is_stable() {
        let cat = fixed_scheme_policies();
        let names: Vec<&str> = cat.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["checkmate_grad", "tiercheck_gpu", "reft_sharded"]);
        // Every comparator keeps the paper's knobs except the scheme.
        let base = gemini_core::PolicyKnobs::paper_default();
        for p in &cat {
            assert_eq!(p.knobs.ckpt_every_iters, base.ckpt_every_iters);
            assert_eq!(p.knobs.persist_interval, base.persist_interval);
            assert_eq!(p.knobs.replicas, base.replicas);
            assert_ne!(p.knobs.scheme, base.scheme);
        }
    }

    #[test]
    fn engine_picks_sharded_under_degrade_with_real_signals() {
        // End-to-end: capacity facts from this module drive the core
        // engine to the sharded scheme once the network degrades.
        use gemini_core::policy::{PolicyConfig, PolicyEngine, PolicyKnobs, PolicySignals};
        let inputs = paper_inputs();
        let sig = scheme_signals(&inputs);
        let mut eng = PolicyEngine::new(PolicyConfig::default(), PolicyKnobs::paper_default());
        let mut s = PolicySignals {
            now: SimTime::from_secs(10_000),
            committed: 100,
            iteration_time: inputs.iteration_time,
            ckpt_overhead: inputs.ckpt_overhead,
            retrieval_remote: inputs.retrieval_remote,
            retrieval_persistent: inputs.retrieval_persistent,
            persist_upload: SimDuration::from_secs(480),
            persist_anchor: None,
            healthy_machines: 16,
            machines: 16,
            scheme: sig,
            mode: gemini_core::policy::ModeSignals::default(),
        };
        assert_eq!(eng.target(&s).scheme, SchemeChoice::CpuInterleaved);
        // NIC collapse: remote retrieval 5 s → 30 min.
        s.retrieval_remote = SimDuration::from_mins(30);
        assert_eq!(eng.target(&s).scheme, SchemeChoice::ShardedHybrid);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn any_inputs() -> impl Strategy<Value = SchemeInputs> {
            (
                (1usize..64, 1usize..5, 1u64..200, 1u64..600),
                (0u64..30_000, 1u64..30, 1u64..7_200),
            )
                .prop_map(
                    |(
                        (machines, replicas, ckpt_gb, iter_s),
                        (ovh_ms, retr_local_s, retr_remote_s),
                    )| SchemeInputs {
                        machines,
                        replicas,
                        ckpt_bytes_per_machine: ByteSize::from_gb(ckpt_gb),
                        grad_bytes_per_machine: ByteSize::from_gb(ckpt_gb) / 6,
                        iteration_time: SimDuration::from_secs(iter_s),
                        ckpt_overhead: SimDuration::from_millis(ovh_ms),
                        retrieval_local: SimDuration::from_secs(retr_local_s),
                        retrieval_remote: SimDuration::from_secs(retr_remote_s),
                        retrieval_persistent: SimDuration::from_secs(480),
                        gpu_headroom_per_machine: ByteSize::from_gb(6),
                        fabric: InstanceType::p4d().ckpt_net_cost(),
                        copy: InstanceType::p4d().copy_cost(),
                    },
                )
        }

        proptest! {
            /// The trait invariants the policy layer relies on, for every
            /// model over arbitrary inputs: overhead is finite, freshness
            /// never exceeds the cadence, every retrieval path is
            /// defined, and feasibility is a pure function of the inputs.
            #[test]
            fn scheme_model_invariants(inputs in any_inputs(), cadence in 1u64..64) {
                for model in all_models() {
                    let ovh = model.ckpt_overhead(&inputs, cadence);
                    prop_assert!(ovh.as_secs_f64().is_finite());
                    prop_assert!(model.recovery_freshness(cadence) <= cadence);
                    for case in [
                        RecoveryCase::SoftwareLocal,
                        RecoveryCase::HardwareFromCpu,
                        RecoveryCase::PersistentFallback,
                    ] {
                        let t = model.retrieval_cost(&inputs, case);
                        prop_assert!(t.as_secs_f64().is_finite());
                    }
                    prop_assert_eq!(model.feasible(&inputs), model.feasible(&inputs));
                }
            }

            /// Signals never mark an infeasible scheme feasible, and the
            /// engine (which only proposes feasible candidates) can thus
            /// never select one: the GPU tier above headroom is the
            /// canonical case.
            #[test]
            fn infeasible_never_signalled(inputs in any_inputs()) {
                let sig = scheme_signals(&inputs);
                prop_assert_eq!(sig.gradient_feasible, GradientReplicateModel.feasible(&inputs));
                prop_assert_eq!(sig.gpu_feasible, GpuTierModel.feasible(&inputs));
                prop_assert_eq!(sig.sharded_feasible, ShardedHybridModel.feasible(&inputs));
                if inputs.ckpt_bytes_per_machine > inputs.gpu_headroom_per_machine {
                    prop_assert!(!sig.gpu_feasible);
                }
                prop_assert!(sig.sharded_factor > 0.0 && sig.sharded_factor <= 0.5);
            }

            /// Sharded retrieval is never slower than the paper's remote
            /// path, and the scatter tax is the only extra commit cost.
            #[test]
            fn sharded_dominates_on_hardware_path(inputs in any_inputs(), cadence in 1u64..64) {
                let full = CpuInterleavedModel
                    .retrieval_cost(&inputs, RecoveryCase::HardwareFromCpu);
                let sharded = ShardedHybridModel
                    .retrieval_cost(&inputs, RecoveryCase::HardwareFromCpu);
                prop_assert!(sharded <= full);
                let extra = ShardedHybridModel.ckpt_overhead(&inputs, cadence)
                    .saturating_sub(CpuInterleavedModel.ckpt_overhead(&inputs, cadence));
                prop_assert_eq!(extra, scatter_tax(&inputs));
            }
        }
    }
}
