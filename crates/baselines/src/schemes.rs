//! The traffic-interleaving ablation schemes (paper §7.4, Fig. 16).
//!
//! Five schemes for checkpointing to CPU memory, evaluated on the same
//! profiled iteration:
//!
//! 1. **Baseline** — no checkpointing at all.
//! 2. **Blocking** — checkpoint traffic runs at the start of the iteration
//!    and blocks training (Fig. 4b); each chunk's network transfer and
//!    GPU→CPU copy serialize on a single buffer.
//! 3. **Naive interleave** — one checkpoint partition per idle timespan,
//!    which requires a GPU buffer as large as the biggest span's traffic
//!    volume → GPU OOM on real models.
//! 4. **Interleave without pipeline** — Algorithm 2 partitioning, but one
//!    reception buffer, so every chunk occupies the NIC for
//!    `f_net + f_copy`; the idle time may no longer suffice.
//! 5. **GEMINI** — Algorithm 2 + `p` sub-buffer pipelining.

use gemini_core::partition::{checkpoint_partition, PartitionInput};
use gemini_core::pipeline::single_buffer_chunk_cost;
use gemini_core::schedule::schedule_checkpoint;
use gemini_core::{GeminiConfig, GeminiError};
use gemini_net::{Bandwidth, ByteSize, TransferCost};
use gemini_sim::SimDuration;
use gemini_training::IdleProfile;
use serde::{Deserialize, Serialize};

/// The five schemes of Fig. 16.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InterleaveScheme {
    /// Training without checkpointing.
    Baseline,
    /// Checkpoint traffic blocks training at iteration start.
    Blocking,
    /// One partition per idle timespan (huge buffers).
    NaiveInterleave,
    /// Algorithm 2 with a single reception buffer.
    InterleaveNoPipeline,
    /// The full system: Algorithm 2 + sub-buffer pipeline.
    Gemini,
}

impl InterleaveScheme {
    /// Display name as in Fig. 16.
    pub fn name(&self) -> &'static str {
        match self {
            InterleaveScheme::Baseline => "Baseline",
            InterleaveScheme::Blocking => "Blocking",
            InterleaveScheme::NaiveInterleave => "Naive interleave",
            InterleaveScheme::InterleaveNoPipeline => "Interleave w/o pipeline",
            InterleaveScheme::Gemini => "GEMINI",
        }
    }

    /// All schemes in figure order.
    pub fn all() -> [InterleaveScheme; 5] {
        [
            InterleaveScheme::Baseline,
            InterleaveScheme::Blocking,
            InterleaveScheme::NaiveInterleave,
            InterleaveScheme::InterleaveNoPipeline,
            InterleaveScheme::Gemini,
        ]
    }
}

/// The outcome of evaluating one scheme.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SchemeOutcome {
    /// Which scheme.
    pub scheme: InterleaveScheme,
    /// Resulting iteration time (`None` if the scheme OOMs).
    pub iteration_time: Option<SimDuration>,
    /// Relative overhead versus the no-checkpoint baseline.
    pub overhead_frac: Option<f64>,
    /// Whether the scheme ran out of GPU memory.
    pub oom: bool,
    /// GPU buffer per GPU the scheme requires.
    pub required_buffer_per_gpu: ByteSize,
}

/// Combines network and copy costs for a scheme whose chunks hold the NIC
/// through the GPU→CPU copy: `f(s) = (α_n + α_c) + s·(1/B_n + 1/B_c)`.
fn serialized_cost(net: &TransferCost, copy: &TransferCost) -> TransferCost {
    let bn = net.bandwidth.bytes_per_sec();
    let bc = copy.bandwidth.bytes_per_sec();
    let combined = if bn <= 0.0 || bc <= 0.0 {
        0.0
    } else {
        bn * bc / (bn + bc)
    };
    TransferCost::new(
        net.alpha + copy.alpha,
        Bandwidth::from_bytes_per_sec(combined),
    )
}

/// Evaluates one scheme on a profiled iteration.
///
/// Arguments mirror [`gemini_core::schedule::schedule_checkpoint`]; the
/// checkpoint sends `config.replicas − 1` remote copies of
/// `ckpt_bytes_machine`.
pub fn evaluate_scheme(
    scheme: InterleaveScheme,
    profile: &IdleProfile,
    ckpt_bytes_machine: ByteSize,
    gpus: u32,
    config: &GeminiConfig,
    net: &TransferCost,
    copy: &TransferCost,
    gpu_headroom: ByteSize,
) -> Result<SchemeOutcome, GeminiError> {
    let baseline = profile.iteration_time;
    let copies = config.replicas.saturating_sub(1) as u64;
    let gpus64 = gpus.max(1) as u64;
    match scheme {
        InterleaveScheme::Baseline => Ok(outcome(scheme, baseline, baseline, ByteSize::ZERO)),
        InterleaveScheme::Blocking => {
            // All remote copies up-front, single-buffer semantics: the
            // network and the receiving copies serialize; training waits.
            let chunk = config.sub_buffer_size() * gpus64;
            let n_chunks = (ckpt_bytes_machine * copies).div_ceil_by(chunk);
            let stall = SimDuration::from_secs_f64(
                single_buffer_chunk_cost(chunk, net, copy).as_secs_f64() * n_chunks as f64,
            );
            Ok(outcome(
                scheme,
                baseline + stall,
                baseline,
                config.sub_buffer_size(),
            ))
        }
        InterleaveScheme::NaiveInterleave => {
            // One partition per idle span: the biggest span's traffic must
            // fit in GPU memory at once.
            let largest = profile
                .span_lengths()
                .into_iter()
                .fold(SimDuration::ZERO, SimDuration::max);
            let machine_buffer = net
                .bandwidth
                .bytes_in_seconds(largest.as_secs_f64())
                .min(ckpt_bytes_machine * copies);
            let per_gpu = machine_buffer / gpus64;
            if per_gpu > gpu_headroom {
                return Ok(SchemeOutcome {
                    scheme,
                    iteration_time: None,
                    overhead_frac: None,
                    oom: true,
                    required_buffer_per_gpu: per_gpu,
                });
            }
            // Small models: one chunk per span, network-cost only.
            let input = PartitionInput {
                idle_spans: profile.span_lengths(),
                ckpt_size: ckpt_bytes_machine,
                copies: copies as usize,
                reserved_buffer: machine_buffer.max(ByteSize::from_bytes(1)),
                buffer_parts: 1,
                cost: *net,
                gamma: config.gamma,
            };
            let plan = checkpoint_partition(&input)?;
            let overflow = plan.overflow(&input.idle_spans, net);
            Ok(outcome(scheme, baseline + overflow, baseline, per_gpu))
        }
        InterleaveScheme::InterleaveNoPipeline => {
            // Algorithm 2, one reception buffer: each chunk costs
            // f_net + f_copy of NIC time.
            let cost = serialized_cost(net, copy);
            let input = PartitionInput {
                idle_spans: profile.span_lengths(),
                ckpt_size: ckpt_bytes_machine,
                copies: copies as usize,
                reserved_buffer: config.reserved_buffer * gpus64,
                buffer_parts: 1,
                cost,
                gamma: config.gamma,
            };
            let plan = checkpoint_partition(&input)?;
            let overflow = plan.overflow(&input.idle_spans, &cost);
            Ok(outcome(
                scheme,
                baseline + overflow,
                baseline,
                config.reserved_buffer,
            ))
        }
        InterleaveScheme::Gemini => {
            let sched = schedule_checkpoint(
                profile,
                ckpt_bytes_machine,
                gpus,
                config,
                net,
                copy,
                gpu_headroom,
            )?;
            Ok(outcome(
                scheme,
                sched.outcome.iteration_time,
                baseline,
                config.sub_buffer_size(),
            ))
        }
    }
}

/// The fixed fault-tolerance comparator policies the adaptive engine is
/// benchmarked against (`bench policy`). Every one freezes its knobs at
/// launch — the published GEMINI behaviour and the obvious neighbours:
///
/// * `paper_3h` — the paper's §7.1 configuration: commit every iteration,
///   persist every three hours, CPU tiers first.
/// * `no_persist` — pure in-memory protection, never persists.
/// * `dense_persist_10m` — persists as fast as the upload pipe allows
///   (every 10 min), paying the interference everywhere.
/// * `amortized_8` — commits every 8th iteration (stale in-memory
///   checkpoints, cheap when checkpoints carry visible overhead).
pub fn fixed_policies() -> Vec<gemini_core::FixedPolicy> {
    use gemini_core::{FixedPolicy, PolicyKnobs, RecoveryMode, SchemeChoice, TierPreference};
    let base = PolicyKnobs {
        ckpt_every_iters: 1,
        persist_interval: Some(SimDuration::from_hours(3)),
        replicas: 2,
        tier: TierPreference::CpuFirst,
        scheme: SchemeChoice::CpuInterleaved,
        mode: RecoveryMode::Wait,
    };
    vec![
        FixedPolicy {
            name: "paper_3h",
            knobs: base,
        },
        FixedPolicy {
            name: "no_persist",
            knobs: PolicyKnobs {
                persist_interval: None,
                ..base
            },
        },
        FixedPolicy {
            name: "dense_persist_10m",
            knobs: PolicyKnobs {
                persist_interval: Some(SimDuration::from_mins(10)),
                ..base
            },
        },
        FixedPolicy {
            name: "amortized_8",
            knobs: PolicyKnobs {
                ckpt_every_iters: 8,
                ..base
            },
        },
    ]
}

/// The fixed [`RecoveryMode`] comparator policies: the paper's knobs with
/// the failure response pinned to each of the three modes. Benchmarks run
/// all three on the same plan so the wasted-time matrix shows what
/// waiting, shrinking, and stepping up each cost on that fault pattern.
///
/// [`RecoveryMode`]: gemini_core::RecoveryMode
pub fn fixed_mode_policies() -> Vec<gemini_core::FixedPolicy> {
    use gemini_core::{FixedPolicy, PolicyKnobs, RecoveryMode};
    vec![
        FixedPolicy {
            name: "mode_wait",
            knobs: PolicyKnobs::with_mode(RecoveryMode::Wait),
        },
        FixedPolicy {
            name: "mode_shrink",
            knobs: PolicyKnobs::with_mode(RecoveryMode::Shrink),
        },
        FixedPolicy {
            name: "mode_step_up",
            knobs: PolicyKnobs::with_mode(RecoveryMode::StepUp),
        },
    ]
}

fn outcome(
    scheme: InterleaveScheme,
    iteration: SimDuration,
    baseline: SimDuration,
    buffer: ByteSize,
) -> SchemeOutcome {
    let overhead = (iteration.as_secs_f64() - baseline.as_secs_f64())
        / baseline.as_secs_f64().max(f64::MIN_POSITIVE);
    SchemeOutcome {
        scheme,
        iteration_time: Some(iteration),
        overhead_frac: Some(overhead),
        oom: false,
        required_buffer_per_gpu: buffer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_cluster::InstanceType;
    use gemini_training::{ModelConfig, OnlineProfiler, TimelineBuilder};

    /// The Fig. 16 setting: GPT-2 40B on 16 p3dn.24xlarge.
    fn fig16_profile() -> IdleProfile {
        let b = TimelineBuilder::new(ModelConfig::gpt2_40b(), InstanceType::p3dn(), 16);
        let mut p = OnlineProfiler::new(3);
        for _ in 0..3 {
            p.observe(&b.build());
        }
        p.profile().unwrap()
    }

    fn run(scheme: InterleaveScheme) -> SchemeOutcome {
        let inst = InstanceType::p3dn();
        let model = ModelConfig::gpt2_40b();
        evaluate_scheme(
            scheme,
            &fig16_profile(),
            model.checkpoint_bytes_per_machine(16),
            inst.gpus,
            &GeminiConfig::default(),
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
            inst.gpu_headroom,
        )
        .unwrap()
    }

    #[test]
    fn baseline_has_zero_overhead() {
        let o = run(InterleaveScheme::Baseline);
        assert_eq!(o.overhead_frac, Some(0.0));
        assert!(!o.oom);
    }

    #[test]
    fn blocking_overhead_near_10_percent() {
        // Fig. 16: "the iteration time with Blocking is 10.1% higher".
        let o = run(InterleaveScheme::Blocking);
        let f = o.overhead_frac.unwrap();
        assert!((0.06..0.16).contains(&f), "overhead = {:.3}", f);
    }

    #[test]
    fn naive_interleave_goes_oom() {
        // Fig. 16 / §7.4: "Naive interleave can cause GPU out-of-memory
        // errors … the required memory buffer size is more than 2GB".
        let o = run(InterleaveScheme::NaiveInterleave);
        assert!(o.oom);
        assert!(o.iteration_time.is_none());
        assert!(
            o.required_buffer_per_gpu > ByteSize::from_gb(2),
            "buffer = {}",
            o.required_buffer_per_gpu
        );
    }

    #[test]
    fn no_pipeline_has_small_positive_overhead() {
        // Fig. 16: "it worsens the iteration time by 3.5%".
        let o = run(InterleaveScheme::InterleaveNoPipeline);
        let f = o.overhead_frac.unwrap();
        assert!(f > 0.005, "overhead = {f:.4} (expected > 0)");
        assert!(f < 0.10, "overhead = {f:.4} (expected small)");
    }

    #[test]
    fn gemini_has_no_overhead() {
        // Fig. 16: "the iteration time with GEMINI is almost the same as
        // the Baseline".
        let o = run(InterleaveScheme::Gemini);
        let f = o.overhead_frac.unwrap();
        assert!(f < 0.005, "overhead = {f:.4}");
    }

    #[test]
    fn ordering_matches_fig16() {
        let blocking = run(InterleaveScheme::Blocking).overhead_frac.unwrap();
        let no_pipe = run(InterleaveScheme::InterleaveNoPipeline)
            .overhead_frac
            .unwrap();
        let gemini = run(InterleaveScheme::Gemini).overhead_frac.unwrap();
        assert!(blocking > no_pipe);
        assert!(no_pipe > gemini);
    }

    #[test]
    fn naive_interleave_is_fine_for_tiny_checkpoints() {
        // A small enough shard fits the per-span buffers — no OOM.
        let inst = InstanceType::p3dn();
        let o = evaluate_scheme(
            InterleaveScheme::NaiveInterleave,
            &fig16_profile(),
            ByteSize::from_mb(64),
            inst.gpus,
            &GeminiConfig::default(),
            &inst.ckpt_net_cost(),
            &inst.copy_cost(),
            inst.gpu_headroom,
        )
        .unwrap();
        assert!(!o.oom);
        assert_eq!(o.overhead_frac, Some(0.0));
    }

    #[test]
    fn scheme_names_and_order() {
        let names: Vec<&str> = InterleaveScheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "Baseline",
                "Blocking",
                "Naive interleave",
                "Interleave w/o pipeline",
                "GEMINI"
            ]
        );
    }

    #[test]
    fn fixed_policy_catalog_is_stable() {
        let cat = fixed_policies();
        let names: Vec<&str> = cat.iter().map(|p| p.name).collect();
        assert_eq!(
            names,
            vec!["paper_3h", "no_persist", "dense_persist_10m", "amortized_8"]
        );
        assert!(cat.iter().all(|p| p.knobs.replicas == 2));
        assert_eq!(cat[1].knobs.persist_interval, None);
        assert_eq!(cat[3].knobs.ckpt_every_iters, 8);
    }

    #[test]
    fn serialized_cost_is_harmonic() {
        let net = TransferCost::new(
            SimDuration::from_millis(1),
            Bandwidth::from_gbytes_per_sec(10.0),
        );
        let copy = TransferCost::new(
            SimDuration::from_millis(2),
            Bandwidth::from_gbytes_per_sec(10.0),
        );
        let c = serialized_cost(&net, &copy);
        assert_eq!(c.alpha, SimDuration::from_millis(3));
        assert!((c.bandwidth.as_gbytes_per_sec() - 5.0).abs() < 1e-9);
    }
}
