//! The remote-persistent-storage baselines (paper §7.1).
//!
//! * **Strawman** follows BLOOM's production setup: checkpoint the model
//!   states to remote persistent storage every three hours.
//! * **HighFreq** saturates the storage: it profiles the checkpoint time
//!   `t_ckpt` and the iteration time `T_iter`, then checkpoints every
//!   `⌈t_ckpt / T_iter⌉` iterations — "the best we can do with remote
//!   storage-based solutions".
//!
//! Both must serialize the model states with `torch.save()` before
//! uploading, and that serialization **blocks training** (§7.3: ≈81 s per
//! checkpoint for GPT-2 100B, costing HighFreq 14.5% of its time even with
//! zero failures). The upload itself is asynchronous.

use gemini_core::wasted::WastedTimeModel;
use gemini_core::GeminiConfig;
use gemini_net::{ByteSize, TransferCost};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Inputs shared by the remote baselines.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RemoteSetup {
    /// Total model-state bytes (all machines).
    pub total_bytes: ByteSize,
    /// Machines in the job.
    pub machines: usize,
    /// Measured iteration time.
    pub iteration_time: SimDuration,
    /// Aggregate cost of the remote persistent storage.
    pub storage: TransferCost,
    /// Per-machine `torch.save()` throughput.
    pub serialize_bytes_per_sec: f64,
}

impl RemoteSetup {
    /// Per-machine shard size.
    pub fn bytes_per_machine(&self) -> ByteSize {
        self.total_bytes / self.machines.max(1) as u64
    }

    /// The blocking `torch.save()` stall per checkpoint: every machine
    /// serializes its shard in parallel.
    pub fn serialize_stall(&self) -> SimDuration {
        if self.serialize_bytes_per_sec <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(
            self.bytes_per_machine().as_bytes() as f64 / self.serialize_bytes_per_sec,
        )
    }

    /// The storage upload time (asynchronous to training but serial at the
    /// storage's aggregate bandwidth).
    pub fn upload_time(&self) -> SimDuration {
        self.storage.time(self.total_bytes)
    }

    /// The full checkpoint time `t_ckpt` = serialize + upload.
    pub fn ckpt_time(&self) -> SimDuration {
        self.serialize_stall() + self.upload_time()
    }

    /// Retrieval time from persistent storage: the full state funnels back
    /// through the same aggregate pipe.
    pub fn retrieval_time(&self) -> SimDuration {
        self.storage.time(self.total_bytes)
    }
}

/// A fully-specified remote baseline.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct RemoteBaseline {
    /// Display name ("Strawman" / "HighFreq").
    pub name: &'static str,
    /// Checkpoint interval actually achieved.
    pub interval: SimDuration,
    /// Interval in whole iterations.
    pub interval_iterations: u64,
    /// The wasted-time regime (Equation 1 inputs).
    pub wasted: WastedTimeModel,
    /// Training stall per checkpoint (serialization).
    pub serialize_stall: SimDuration,
    /// Fraction of steady-state time lost to serialization stalls, with no
    /// failures at all.
    pub steady_state_overhead: f64,
}

fn build(name: &'static str, setup: &RemoteSetup, interval: SimDuration) -> RemoteBaseline {
    let wasted = WastedTimeModel::new(
        setup.ckpt_time(),
        interval,
        setup.iteration_time,
        setup.retrieval_time(),
    );
    let interval = wasted.interval;
    let iters = (interval.as_secs_f64() / setup.iteration_time.as_secs_f64()).round() as u64;
    let stall = setup.serialize_stall();
    let cycle = interval.as_secs_f64() + stall.as_secs_f64();
    RemoteBaseline {
        name,
        interval,
        interval_iterations: iters.max(1),
        wasted,
        serialize_stall: stall,
        steady_state_overhead: stall.as_secs_f64() / cycle,
    }
}

/// The Strawman baseline: checkpoint every three hours (BLOOM's cadence).
pub fn strawman(setup: &RemoteSetup) -> RemoteBaseline {
    build(
        "Strawman",
        setup,
        GeminiConfig::default().persistent_interval,
    )
}

/// The HighFreq baseline: checkpoint every `⌈t_ckpt / T_iter⌉` iterations.
pub fn highfreq(setup: &RemoteSetup) -> RemoteBaseline {
    let iters = (setup.ckpt_time().as_secs_f64() / setup.iteration_time.as_secs_f64()).ceil();
    let interval = SimDuration::from_secs_f64(iters * setup.iteration_time.as_secs_f64());
    build("HighFreq", setup, interval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_cluster::catalog::fsx_storage_cost;
    use gemini_training::ModelConfig;

    /// GPT-2 100B on 16 p4d with the paper's FSx: the setting of §7.2/§7.3.
    fn setup_100b() -> RemoteSetup {
        RemoteSetup {
            total_bytes: ModelConfig::gpt2_100b().checkpoint_bytes_total(),
            machines: 16,
            iteration_time: SimDuration::from_secs(62),
            storage: fsx_storage_cost(),
            serialize_bytes_per_sec: GeminiConfig::default().serialize_bytes_per_sec,
        }
    }

    #[test]
    fn serialize_stall_is_about_81s() {
        // §7.3: "the incurred overhead for each checkpoint serialization is
        // around 81 seconds" (one 75 GB shard per machine).
        let stall = setup_100b().serialize_stall().as_secs_f64();
        assert!((stall - 80.6).abs() < 2.0, "stall = {stall:.1}s");
    }

    #[test]
    fn highfreq_interval_is_about_9_iterations() {
        // §7.3: "HighFreq checkpoints the model states every nine
        // iterations".
        let hf = highfreq(&setup_100b());
        assert!(
            (9..=10).contains(&hf.interval_iterations),
            "interval = {} iterations",
            hf.interval_iterations
        );
    }

    #[test]
    fn strawman_interval_is_three_hours() {
        let s = strawman(&setup_100b());
        assert_eq!(s.interval, SimDuration::from_hours(3));
        // 10 800 s / 62 s ≈ 174 iterations between checkpoints.
        assert_eq!(s.interval_iterations, 174);
    }

    #[test]
    fn highfreq_steady_state_overhead_near_14_percent() {
        // §7.3: "Even without any failures, 14.5% time is spent on
        // checkpoint serialization" (81 s per ≈560 s cycle).
        let hf = highfreq(&setup_100b());
        assert!(
            (0.10..0.17).contains(&hf.steady_state_overhead),
            "overhead = {:.3}",
            hf.steady_state_overhead
        );
    }

    #[test]
    fn strawman_steady_state_overhead_negligible() {
        // "Strawman also has this overhead, but it is negligible due to the
        // low frequency."
        let s = strawman(&setup_100b());
        assert!(s.steady_state_overhead < 0.01);
    }

    #[test]
    fn strawman_wasted_time_near_100_minutes() {
        // Fig. 10's Strawman bar: t_ckpt + 90 min + retrieval ≈ 107 min.
        let s = strawman(&setup_100b());
        let avg_min = s.wasted.average_wasted().as_secs_f64() / 60.0;
        assert!((95.0..115.0).contains(&avg_min), "avg = {avg_min:.1} min");
    }

    #[test]
    fn highfreq_wasted_time_near_22_minutes() {
        // Fig. 10's HighFreq bar: ≈ t_ckpt(9.3) + interval/2(4.7) + rtvl(8).
        let hf = highfreq(&setup_100b());
        let avg_min = hf.wasted.average_wasted().as_secs_f64() / 60.0;
        assert!((17.0..26.0).contains(&avg_min), "avg = {avg_min:.1} min");
    }

    #[test]
    fn gemini_beats_highfreq_by_more_than_13x() {
        // The headline: GEMINI's wasted time (≈1.5 iterations when
        // recovering from CPU memory) vs HighFreq (§7.2: "more than 13x").
        let hf = highfreq(&setup_100b());
        let gemini_avg = 1.5 * 62.0; // 1.5 T_iter, retrieval < 3 s
        let speedup = hf.wasted.average_wasted().as_secs_f64() / gemini_avg;
        assert!(speedup > 13.0, "speedup = {speedup:.1}x");
    }

    #[test]
    fn checkpoint_frequency_ratios_match_fig12() {
        // Fig. 12: GEMINI (every iteration) is 8× HighFreq and >170×
        // Strawman.
        let s = strawman(&setup_100b());
        let hf = highfreq(&setup_100b());
        let gemini_per_hour = 3_600.0 / 62.0;
        let vs_hf = gemini_per_hour / hf.wasted.frequency_per_hour();
        let vs_straw = gemini_per_hour / s.wasted.frequency_per_hour();
        assert!((7.0..11.0).contains(&vs_hf), "vs HighFreq = {vs_hf:.1}x");
        assert!(vs_straw > 170.0, "vs Strawman = {vs_straw:.0}x");
    }

    #[test]
    fn upload_independent_of_machine_count() {
        let mut a = setup_100b();
        a.machines = 4;
        let mut b = setup_100b();
        b.machines = 16;
        assert_eq!(a.upload_time(), b.upload_time());
        // But the per-machine serialization stall shrinks with more
        // machines (smaller shards).
        assert!(a.serialize_stall() > b.serialize_stall());
    }

    #[test]
    fn zero_serialize_rate_means_no_stall() {
        let mut s = setup_100b();
        s.serialize_bytes_per_sec = 0.0;
        assert_eq!(s.serialize_stall(), SimDuration::ZERO);
    }
}
