//! Baseline checkpointing systems and ablation schemes.
//!
//! The paper compares GEMINI against two remote-persistent-storage
//! baselines (§7.1) and, for the traffic-interleaving ablation (§7.4,
//! Fig. 16), against successively smarter schemes for checkpointing to CPU
//! memory. Both live here:
//!
//! * [`remote`] — **Strawman** (BLOOM's every-3-hours cadence) and
//!   **HighFreq** (checkpointing as fast as the persistent storage's
//!   aggregate bandwidth allows), including their `torch.save()`
//!   serialization stalls;
//! * [`schemes`] — **Blocking**, **Naive interleave**, **Interleave
//!   without pipeline** and **GEMINI** evaluated on the same idle-span
//!   profile, plus the fixed fault-tolerance comparator policies
//!   ([`fixed_policies`]) the adaptive `gemini_core::policy` engine is
//!   benchmarked against;
//! * [`competing`] — the competing *fault-tolerance* schemes from related
//!   work, priced on the same fabric/timeline models: **Checkmate**-style
//!   gradient replication, **TierCheck**-style GPU-memory checkpoints and
//!   **REFT**-style hybrid-parallel sharding, behind a common
//!   [`SchemeModel`] trait.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod competing;
pub mod remote;
pub mod schemes;

pub use competing::{
    all_models, fixed_scheme_policies, scheme_signals, CpuInterleavedModel, GradientReplicateModel,
    GpuTierModel, SchemeInputs, SchemeModel, ShardedHybridModel,
};
pub use remote::{highfreq, strawman, RemoteBaseline, RemoteSetup};
pub use schemes::{
    evaluate_scheme, fixed_mode_policies, fixed_policies, InterleaveScheme, SchemeOutcome,
};
