//! GPU machines, instance catalog, cluster state and cloud-operator models.
//!
//! This crate is the "hardware inventory" of the reproduction. It carries:
//!
//! * the instance-type catalog of the paper's Table 1, extended with the
//!   network/compute calibration constants the timeline model needs;
//! * machines with GPUs, CPU memory and health states;
//! * the cluster (a set of ranked machines) and its fabric configuration;
//! * the cloud operator (EC2 Auto Scaling Group in the paper, §6.2) that
//!   replaces failed machines after a stochastic delay, optionally fronted
//!   by a pool of standby machines.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod cluster;
pub mod machine;
pub mod operator;

pub use catalog::{InstanceType, TABLE1_INSTANCES};
pub use cluster::Cluster;
pub use machine::{FailureKind, HealthState, Machine, MachineId};
pub use operator::{CloudOperator, OperatorConfig, Provision};
