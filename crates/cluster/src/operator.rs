//! The cloud operator: machine replacement and standby pools.
//!
//! The paper relies on EC2 Auto Scaling Groups to swap failed machines for
//! healthy ones (§6.2) and measures the reservation wait at 4–7 minutes for
//! p4d instances (§7.3). It also describes *standby machines* the job can
//! pre-allocate so a replacement is nearly instantaneous; the root agent
//! then back-fills the standby pool asynchronously.

use gemini_sim::{DetRng, SimDuration, SimTime};
use gemini_telemetry::{TelemetryEvent, TelemetrySink};
use serde::{Deserialize, Serialize};

/// Configuration of the cloud operator model.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct OperatorConfig {
    /// Minimum time to reserve a fresh machine from the cloud.
    pub reserve_min: SimDuration,
    /// Maximum time to reserve a fresh machine from the cloud.
    pub reserve_max: SimDuration,
    /// Time to activate a pre-allocated standby machine.
    pub standby_activation: SimDuration,
    /// Number of standby machines pre-allocated at job start.
    pub standbys: usize,
}

impl Default for OperatorConfig {
    fn default() -> Self {
        // §7.3: "around 4-7 minutes" to reserve a new p4d with ASG.
        OperatorConfig {
            reserve_min: SimDuration::from_mins(4),
            reserve_max: SimDuration::from_mins(7),
            standby_activation: SimDuration::from_secs(30),
            standbys: 0,
        }
    }
}

impl OperatorConfig {
    /// A config with `n` standby machines.
    pub fn with_standbys(n: usize) -> Self {
        OperatorConfig {
            standbys: n,
            ..OperatorConfig::default()
        }
    }
}

/// The outcome of a replacement request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provision {
    /// When the replacement machine is ready to join training.
    pub ready_at: SimTime,
    /// Whether it came from the standby pool.
    pub from_standby: bool,
}

/// The cloud operator (ASG + optional standby pool).
#[derive(Clone, Debug)]
pub struct CloudOperator {
    config: OperatorConfig,
    standbys_available: usize,
    /// Times at which requested standby refills arrive.
    refills_pending: Vec<SimTime>,
    replacements_served: u64,
    requests_denied: u64,
    /// While set and in the future, the control plane denies requests
    /// (chaos: API outage / capacity exhaustion window).
    outage_until: Option<SimTime>,
    telemetry: TelemetrySink,
}

impl CloudOperator {
    /// Creates an operator with a full standby pool.
    pub fn new(config: OperatorConfig) -> Self {
        CloudOperator {
            standbys_available: config.standbys,
            config,
            refills_pending: Vec::new(),
            replacements_served: 0,
            requests_denied: 0,
            outage_until: None,
            telemetry: TelemetrySink::disabled(),
        }
    }

    /// Attaches a telemetry sink; each provisioned replacement is reported
    /// through it.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The static config.
    pub fn config(&self) -> &OperatorConfig {
        &self.config
    }

    /// Standby machines ready right now (after absorbing matured refills).
    pub fn standbys_available(&mut self, now: SimTime) -> usize {
        self.absorb_refills(now);
        self.standbys_available
    }

    /// Total replacements served.
    pub fn replacements_served(&self) -> u64 {
        self.replacements_served
    }

    /// Total requests denied during outage windows.
    pub fn requests_denied(&self) -> u64 {
        self.requests_denied
    }

    /// Declares a control-plane outage: until `until`, replacement
    /// requests are denied ([`CloudOperator::try_request_replacement`]
    /// returns `None`) and callers must retry with backoff. Chaos plans
    /// use this to model slow/exhausted Auto Scaling Groups.
    pub fn set_outage_until(&mut self, until: SimTime) {
        self.outage_until = Some(until);
    }

    /// Whether the control plane is inside an outage window at `now`.
    pub fn in_outage(&self, now: SimTime) -> bool {
        self.outage_until.is_some_and(|t| now < t)
    }

    fn absorb_refills(&mut self, now: SimTime) {
        let before = self.refills_pending.len();
        self.refills_pending.retain(|&t| t > now);
        self.standbys_available += before - self.refills_pending.len();
    }

    /// Requests a replacement machine at `now`. Uses a standby if one is
    /// ready (activation ≈ seconds, and a cloud refill for the pool is
    /// ordered immediately, per §6.2); otherwise reserves a fresh machine
    /// from the cloud with a uniformly distributed 4–7 minute delay.
    pub fn request_replacement(&mut self, now: SimTime, rng: &mut DetRng) -> Provision {
        self.try_request_replacement(now, rng)
            .expect("request_replacement outside an outage window")
    }

    /// Like [`CloudOperator::request_replacement`], but fallible: returns
    /// `None` while the control plane is in a declared outage window, in
    /// which case the caller should back off and retry (see
    /// `gemini_kvstore::RetryPolicy`). Prefer this entry point anywhere an
    /// outage is possible — `request_replacement` keeps the infallible
    /// contract for legacy callers that never declare outages.
    pub fn try_request_replacement(
        &mut self,
        now: SimTime,
        rng: &mut DetRng,
    ) -> Option<Provision> {
        if self.in_outage(now) {
            self.requests_denied += 1;
            self.telemetry
                .counter_add("cluster.replacement_denied", 1);
            return None;
        }
        self.absorb_refills(now);
        self.replacements_served += 1;
        let provision = if self.standbys_available > 0 {
            self.standbys_available -= 1;
            // "the root agent returns the failed one and requests another
            // standby machine" — the refill arrives after a full reservation.
            let refill_at = now + self.reserve_delay(rng);
            self.refills_pending.push(refill_at);
            Provision {
                ready_at: now + self.config.standby_activation,
                from_standby: true,
            }
        } else {
            Provision {
                ready_at: now + self.reserve_delay(rng),
                from_standby: false,
            }
        };
        if self.telemetry.is_enabled() {
            self.telemetry
                .event(now, || TelemetryEvent::ReplacementProvisioned {
                    standby: provision.from_standby,
                });
            let label = if provision.from_standby {
                "standby"
            } else {
                "cloud"
            };
            self.telemetry
                .counter_add_labeled("cluster.replacements", "source", label, 1);
            self.telemetry.observe_us("cluster.provision_wait_us", || {
                provision.ready_at.saturating_since(now).as_nanos() / 1_000
            });
        }
        Some(provision)
    }

    fn reserve_delay(&self, rng: &mut DetRng) -> SimDuration {
        let lo = self.config.reserve_min.as_secs_f64();
        let hi = self.config.reserve_max.as_secs_f64();
        SimDuration::from_secs_f64(rng.uniform(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asg_delay_in_configured_window() {
        let mut op = CloudOperator::new(OperatorConfig::default());
        let mut rng = DetRng::new(1);
        for _ in 0..100 {
            let p = op.request_replacement(SimTime::ZERO, &mut rng);
            assert!(!p.from_standby);
            let mins = p.ready_at.as_secs_f64() / 60.0;
            assert!((4.0..=7.0).contains(&mins), "{mins} min");
        }
        assert_eq!(op.replacements_served(), 100);
    }

    #[test]
    fn standby_is_fast_and_pool_depletes() {
        let mut op = CloudOperator::new(OperatorConfig::with_standbys(2));
        let mut rng = DetRng::new(2);
        let p1 = op.request_replacement(SimTime::ZERO, &mut rng);
        let p2 = op.request_replacement(SimTime::ZERO, &mut rng);
        let p3 = op.request_replacement(SimTime::ZERO, &mut rng);
        assert!(p1.from_standby && p2.from_standby);
        assert!(!p3.from_standby);
        assert_eq!(p1.ready_at, SimTime::from_secs(30));
    }

    #[test]
    fn standby_pool_refills_over_time() {
        let mut op = CloudOperator::new(OperatorConfig::with_standbys(1));
        let mut rng = DetRng::new(3);
        let p = op.request_replacement(SimTime::ZERO, &mut rng);
        assert!(p.from_standby);
        assert_eq!(op.standbys_available(SimTime::from_secs(60)), 0);
        // After the refill window (max 7 min) the pool is whole again.
        assert_eq!(op.standbys_available(SimTime::from_mins(8)), 1);
        // And usable for the next failure.
        let p2 = op.request_replacement(SimTime::from_mins(9), &mut rng);
        assert!(p2.from_standby);
    }

    #[test]
    fn outage_window_denies_then_recovers() {
        let mut op = CloudOperator::new(OperatorConfig::default());
        let mut rng = DetRng::new(4);
        op.set_outage_until(SimTime::from_mins(10));
        assert!(op.in_outage(SimTime::ZERO));
        assert!(op
            .try_request_replacement(SimTime::from_mins(5), &mut rng)
            .is_none());
        assert!(op
            .try_request_replacement(SimTime::from_mins(9), &mut rng)
            .is_none());
        assert_eq!(op.requests_denied(), 2);
        assert_eq!(op.replacements_served(), 0);
        // Window over: requests succeed again.
        assert!(!op.in_outage(SimTime::from_mins(10)));
        let p = op
            .try_request_replacement(SimTime::from_mins(10), &mut rng)
            .unwrap();
        assert!(!p.from_standby);
        assert_eq!(op.replacements_served(), 1);
    }

    #[test]
    fn outage_denies_even_with_standbys() {
        // An API outage blocks standby activation too (the control plane
        // brokers both paths) — zero-standby exhaustion plus outage is the
        // chaos "replacement exhaustion" scenario.
        let mut op = CloudOperator::new(OperatorConfig::with_standbys(2));
        let mut rng = DetRng::new(5);
        op.set_outage_until(SimTime::from_secs(100));
        assert!(op
            .try_request_replacement(SimTime::ZERO, &mut rng)
            .is_none());
        // The pool is untouched by denied requests.
        assert_eq!(op.standbys_available(SimTime::from_secs(200)), 2);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut op1 = CloudOperator::new(OperatorConfig::default());
        let mut op2 = CloudOperator::new(OperatorConfig::default());
        let mut r1 = DetRng::new(9);
        let mut r2 = DetRng::new(9);
        for _ in 0..10 {
            assert_eq!(
                op1.request_replacement(SimTime::ZERO, &mut r1),
                op2.request_replacement(SimTime::ZERO, &mut r2)
            );
        }
    }
}
