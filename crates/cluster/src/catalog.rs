//! The instance-type catalog.
//!
//! [`TABLE1_INSTANCES`] reproduces the paper's Table 1 (GPU vs CPU memory of
//! popular cloud GPU instances). The two AWS types the evaluation runs on —
//! `p4d.24xlarge` and `p3dn.24xlarge` — additionally carry the calibration
//! constants the timeline model needs. Each constant is anchored to a number
//! the paper reports:
//!
//! * `p4d` 400 Gbps EFA, GPU↔CPU copy ≈ network bandwidth (footnote 2);
//! * GPT-2 100B on 16 p4d: 62 s iterations (§7.2), ≈12.5 s network idle
//!   (Fig. 8), < 3 s checkpoint time;
//! * GPT-2 40B on 16 p3dn: ≈45 s iterations with a few seconds of idle
//!   (Fig. 13, Fig. 16).
//!
//! The `mfu` (model FLOPs utilization) and network-efficiency factors are
//! the two knobs that make those anchors come out; they are *fixed once
//! here* and never tuned per-experiment.

use gemini_net::{Bandwidth, ByteSize, TransferCost};
use gemini_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A GPU instance type, as in the paper's Table 1 plus calibration data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InstanceType {
    /// Vendor name, e.g. `p4d.24xlarge`.
    pub name: &'static str,
    /// Cloud provider.
    pub cloud: &'static str,
    /// GPUs per machine.
    pub gpus: u32,
    /// Memory per GPU.
    pub gpu_mem: ByteSize,
    /// Host CPU memory per machine.
    pub cpu_mem: ByteSize,
    /// Peak dense fp16 throughput per GPU, in FLOP/s.
    pub gpu_peak_flops: f64,
    /// Inter-machine network line rate (per machine NIC).
    pub network: Bandwidth,
    /// GPU↔CPU copy bandwidth per machine (PCIe / copy engines). The paper
    /// measured this ≈ network line rate on p4d (footnote 2).
    pub copy_bandwidth: Bandwidth,
    /// Model-FLOPs utilization the training workloads achieve (calibrated).
    pub mfu: f64,
    /// Fraction of line rate the *training* collectives achieve (calibrated;
    /// ZeRO-3 issues many per-layer operations and never saturates EFA).
    pub train_net_efficiency: f64,
    /// Fraction of line rate large point-to-point *checkpoint* transfers
    /// achieve (large contiguous chunks run close to line rate).
    pub ckpt_net_efficiency: f64,
    /// Per-message startup latency α.
    pub net_alpha: SimDuration,
    /// GPU memory that remains free during large-model training — "a few
    /// hundred MB" per the paper's profiling (§5.2) — available for
    /// checkpoint communication buffers.
    pub gpu_headroom: ByteSize,
}

impl InstanceType {
    /// Total GPU memory on one machine.
    pub fn total_gpu_mem(&self) -> ByteSize {
        self.gpu_mem * self.gpus as u64
    }

    /// Aggregate peak FLOP/s of one machine.
    pub fn machine_peak_flops(&self) -> f64 {
        self.gpu_peak_flops * self.gpus as f64
    }

    /// Effective per-GPU training throughput in FLOP/s.
    pub fn effective_gpu_flops(&self) -> f64 {
        self.gpu_peak_flops * self.mfu
    }

    /// The point-to-point cost model seen by training collectives.
    pub fn training_net_cost(&self) -> TransferCost {
        TransferCost::new(
            self.net_alpha,
            self.network.scaled(self.train_net_efficiency),
        )
    }

    /// The point-to-point cost model seen by checkpoint transfers.
    pub fn ckpt_net_cost(&self) -> TransferCost {
        TransferCost::new(
            self.net_alpha,
            self.network.scaled(self.ckpt_net_efficiency),
        )
    }

    /// The GPU↔CPU copy cost model (for one machine's copy engines).
    pub fn copy_cost(&self) -> TransferCost {
        TransferCost::new(SimDuration::from_micros(10), self.copy_bandwidth)
    }

    /// Looks an instance type up by name in [`TABLE1_INSTANCES`].
    pub fn by_name(name: &str) -> Option<&'static InstanceType> {
        TABLE1_INSTANCES.iter().find(|i| i.name == name)
    }

    /// The AWS p4d.24xlarge used for the paper's main evaluation.
    pub fn p4d() -> &'static InstanceType {
        Self::by_name("p4d.24xlarge").expect("p4d is in the catalog")
    }

    /// The AWS p3dn.24xlarge used for the paper's V100 evaluation.
    pub fn p3dn() -> &'static InstanceType {
        Self::by_name("p3dn.24xlarge").expect("p3dn is in the catalog")
    }
}

/// Aggregate bandwidth of the remote persistent storage (FSx) in the
/// paper's evaluation (§7.1): 20 Gbps regardless of cluster size.
pub fn fsx_storage_cost() -> TransferCost {
    TransferCost::new(SimDuration::from_millis(20), Bandwidth::from_gbps(20.0))
}

/// The paper's Table 1, with calibration extensions for the two evaluated
/// AWS types. Memory sizes are as printed in the paper (decimal GB for CPU
/// memory, binary GiB for GPU memory which vendors quote as "32/40/80 GB").
pub static TABLE1_INSTANCES: &[InstanceType] = &[
    InstanceType {
        name: "p3dn.24xlarge",
        cloud: "AWS",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(32),
        cpu_mem: ByteSize::from_gb(768),
        gpu_peak_flops: 125e12, // V100 tensor-core fp16 peak
        network: bandwidth_gbps(100.0),
        copy_bandwidth: bandwidth_gbps(100.0),
        mfu: 0.30,
        train_net_efficiency: 0.48,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(200),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "p4d.24xlarge",
        cloud: "AWS",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(40),
        cpu_mem: ByteSize::from_gb(1152),
        gpu_peak_flops: 312e12, // A100 tensor-core fp16 peak
        network: bandwidth_gbps(400.0),
        copy_bandwidth: bandwidth_gbps(400.0), // footnote 2: both ≈400 Gbps
        mfu: 0.214,
        train_net_efficiency: 0.23,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(100),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "ND40rs_v2",
        cloud: "Azure",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(32),
        cpu_mem: ByteSize::from_gb(672),
        gpu_peak_flops: 125e12,
        network: bandwidth_gbps(100.0),
        copy_bandwidth: bandwidth_gbps(100.0),
        mfu: 0.30,
        train_net_efficiency: 0.48,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(200),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "ND96asr_v4",
        cloud: "Azure",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(40),
        cpu_mem: ByteSize::from_gb(900),
        gpu_peak_flops: 312e12,
        network: bandwidth_gbps(200.0),
        copy_bandwidth: bandwidth_gbps(200.0),
        mfu: 0.214,
        train_net_efficiency: 0.30,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(100),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "n1-8-v100",
        cloud: "GCP",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(32),
        cpu_mem: ByteSize::from_gb(624),
        gpu_peak_flops: 125e12,
        network: bandwidth_gbps(100.0),
        copy_bandwidth: bandwidth_gbps(100.0),
        mfu: 0.30,
        train_net_efficiency: 0.48,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(200),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "a2-highgpu-8g",
        cloud: "GCP",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(40),
        cpu_mem: ByteSize::from_gb(640),
        gpu_peak_flops: 312e12,
        network: bandwidth_gbps(100.0),
        copy_bandwidth: bandwidth_gbps(100.0),
        mfu: 0.214,
        train_net_efficiency: 0.48,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(100),
        gpu_headroom: ByteSize::from_mib(800),
    },
    InstanceType {
        name: "DGX A100",
        cloud: "NVIDIA",
        gpus: 8,
        gpu_mem: ByteSize::from_gib(80),
        cpu_mem: ByteSize::from_gb(2000),
        gpu_peak_flops: 312e12,
        network: bandwidth_gbps(200.0),
        copy_bandwidth: bandwidth_gbps(200.0),
        mfu: 0.214,
        train_net_efficiency: 0.30,
        ckpt_net_efficiency: 0.80,
        net_alpha: SimDuration::from_micros(100),
        gpu_headroom: ByteSize::from_mib(800),
    },
];

/// `const`-friendly bandwidth constructor (Bandwidth::from_gbps is not
/// `const` because of float ops under MSRV; this keeps the table literal).
const fn bandwidth_gbps(gbps: f64) -> Bandwidth {
    // SAFETY of representation: Bandwidth is a transparent f64 of bytes/s.
    // We cannot call the non-const constructor here, so replicate it.
    Bandwidth::const_from_gbps(gbps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_seven_rows_like_the_paper() {
        assert_eq!(TABLE1_INSTANCES.len(), 7);
    }

    #[test]
    fn cpu_memory_dwarfs_gpu_memory_everywhere() {
        // The observation motivating §2.3.1.
        for inst in TABLE1_INSTANCES {
            assert!(
                inst.cpu_mem.as_bytes() > inst.total_gpu_mem().as_bytes(),
                "{}: cpu {} vs gpu {}",
                inst.name,
                inst.cpu_mem,
                inst.total_gpu_mem()
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(InstanceType::p4d().gpus, 8);
        assert_eq!(InstanceType::p3dn().cloud, "AWS");
        assert!(InstanceType::by_name("nonexistent").is_none());
    }

    #[test]
    fn p4d_matches_paper_table1() {
        let p4d = InstanceType::p4d();
        assert_eq!(p4d.gpu_mem, ByteSize::from_gib(40));
        assert_eq!(p4d.cpu_mem, ByteSize::from_gb(1152));
        assert!((p4d.network.as_gbps() - 400.0).abs() < 1e-9);
        // Footnote 2: copy bandwidth comparable to network bandwidth.
        assert!((p4d.copy_bandwidth.as_gbps() - p4d.network.as_gbps()).abs() < 1e-9);
    }

    #[test]
    fn p3dn_matches_paper_table1() {
        let p3dn = InstanceType::p3dn();
        assert_eq!(p3dn.gpu_mem, ByteSize::from_gib(32));
        assert_eq!(p3dn.cpu_mem, ByteSize::from_gb(768));
        assert!((p3dn.network.as_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn fsx_is_20gbps() {
        let c = fsx_storage_cost();
        assert!((c.bandwidth.as_gbps() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn cost_models_reflect_efficiencies() {
        let p4d = InstanceType::p4d();
        let train = p4d.training_net_cost();
        let ckpt = p4d.ckpt_net_cost();
        assert!(train.bandwidth.bytes_per_sec() < ckpt.bandwidth.bytes_per_sec());
        assert!((ckpt.bandwidth.as_gbps() - 320.0).abs() < 1e-6);
    }

    #[test]
    fn headroom_is_a_few_hundred_mb() {
        for inst in TABLE1_INSTANCES {
            let mb = inst.gpu_headroom.as_mb_f64();
            assert!((100.0..1000.0).contains(&mb), "{}: {mb} MB", inst.name);
        }
    }
}
