//! Machines, health states and failure kinds.

use crate::catalog::InstanceType;
use gemini_net::ByteSize;
use gemini_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A globally unique machine identity. Replacement machines get *new* ids
/// even though they take over the failed machine's rank — exactly like the
/// paper's Machine 2 → Machine 2′ in Figure 6c.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MachineId(pub u64);

impl core::fmt::Display for MachineId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "machine-{}", self.0)
    }
}

/// Why a machine failed (paper §6.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum FailureKind {
    /// Bugs in software or errors in data; the hardware (and thus the CPU
    /// memory holding checkpoints) survives, only the training process dies.
    Software,
    /// GPU malfunction, network failure, etc.; the machine must be replaced
    /// and everything in its CPU memory is lost.
    Hardware,
}

/// A machine's health as tracked by the worker/root agents.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HealthState {
    /// Participating in training.
    Healthy,
    /// Failed and not yet replaced/restarted.
    Failed(FailureKind),
    /// A replacement has been requested from the cloud operator.
    Replacing,
}

impl HealthState {
    /// Whether the machine can serve checkpoints from its CPU memory.
    /// Software failures keep CPU memory intact (paper §6.2: "the hardware
    /// remains healthy and all checkpoints stored in CPU memory are still
    /// accessible").
    pub fn cpu_memory_intact(&self) -> bool {
        matches!(
            self,
            HealthState::Healthy | HealthState::Failed(FailureKind::Software)
        )
    }

    /// Whether the machine is actively training.
    pub fn is_healthy(&self) -> bool {
        matches!(self, HealthState::Healthy)
    }
}

/// One GPU machine participating in training.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Machine {
    /// Unique identity (survives nothing; replacements get new ids).
    pub id: MachineId,
    /// Training rank: the machine's position in the job, which replacements
    /// reuse (paper §6.2: "reuse their machine rank IDs").
    pub rank: usize,
    /// Health as last observed.
    pub health: HealthState,
    /// When this physical machine joined the job.
    pub joined_at: SimTime,
    /// CPU memory capacity.
    pub cpu_mem: ByteSize,
    /// CPU memory currently holding checkpoint replicas.
    pub ckpt_mem_used: ByteSize,
}

impl Machine {
    /// Creates a healthy machine of the given instance type.
    pub fn new(id: MachineId, rank: usize, inst: &InstanceType, joined_at: SimTime) -> Self {
        Machine {
            id,
            rank,
            health: HealthState::Healthy,
            joined_at,
            cpu_mem: inst.cpu_mem,
            ckpt_mem_used: ByteSize::ZERO,
        }
    }

    /// CPU memory still free for checkpoints.
    pub fn ckpt_mem_free(&self) -> ByteSize {
        self.cpu_mem.saturating_sub(self.ckpt_mem_used)
    }

    /// Accounts for storing `size` of checkpoint data; returns `false`
    /// (and stores nothing) if it does not fit.
    pub fn store_ckpt(&mut self, size: ByteSize) -> bool {
        if size > self.ckpt_mem_free() {
            return false;
        }
        self.ckpt_mem_used += size;
        true
    }

    /// Releases `size` of checkpoint data.
    pub fn release_ckpt(&mut self, size: ByteSize) {
        self.ckpt_mem_used = self.ckpt_mem_used.saturating_sub(size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_failure_keeps_cpu_memory() {
        assert!(HealthState::Failed(FailureKind::Software).cpu_memory_intact());
        assert!(!HealthState::Failed(FailureKind::Hardware).cpu_memory_intact());
        assert!(HealthState::Healthy.cpu_memory_intact());
        assert!(!HealthState::Replacing.cpu_memory_intact());
    }

    #[test]
    fn ckpt_memory_accounting() {
        let inst = InstanceType::p4d();
        let mut m = Machine::new(MachineId(0), 0, inst, SimTime::ZERO);
        assert_eq!(m.ckpt_mem_free(), inst.cpu_mem);
        assert!(m.store_ckpt(ByteSize::from_gb(100)));
        assert_eq!(m.ckpt_mem_used, ByteSize::from_gb(100));
        m.release_ckpt(ByteSize::from_gb(40));
        assert_eq!(m.ckpt_mem_used, ByteSize::from_gb(60));
    }

    #[test]
    fn store_rejects_overflow() {
        let inst = InstanceType::p4d();
        let mut m = Machine::new(MachineId(0), 0, inst, SimTime::ZERO);
        assert!(!m.store_ckpt(ByteSize::from_gb(2_000)));
        assert_eq!(m.ckpt_mem_used, ByteSize::ZERO);
    }

    #[test]
    fn release_saturates() {
        let inst = InstanceType::p4d();
        let mut m = Machine::new(MachineId(0), 0, inst, SimTime::ZERO);
        m.release_ckpt(ByteSize::from_gb(5));
        assert_eq!(m.ckpt_mem_used, ByteSize::ZERO);
    }
}
