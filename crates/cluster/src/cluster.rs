//! The training cluster: `N` ranked machines of one instance type.

use crate::catalog::InstanceType;
use crate::machine::{FailureKind, HealthState, Machine, MachineId};
use gemini_net::{Fabric, FabricConfig};
use gemini_sim::SimTime;

/// Errors from cluster operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The rank does not exist.
    UnknownRank(usize),
    /// Tried to replace a machine that is not awaiting replacement.
    NotReplacing(usize),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            ClusterError::NotReplacing(r) => {
                write!(f, "rank {r} is not awaiting replacement")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A static, synchronous training cluster (the setting GEMINI targets, §1:
/// fixed computation resources, all ranks advance in lockstep).
#[derive(Clone, Debug)]
pub struct Cluster {
    instance: &'static InstanceType,
    machines: Vec<Machine>,
    next_id: u64,
}

impl Cluster {
    /// Creates a cluster of `n` healthy machines.
    pub fn new(instance: &'static InstanceType, n: usize) -> Self {
        let machines = (0..n)
            .map(|rank| Machine::new(MachineId(rank as u64), rank, instance, SimTime::ZERO))
            .collect();
        Cluster {
            instance,
            machines,
            next_id: n as u64,
        }
    }

    /// The instance type all machines share.
    pub fn instance(&self) -> &'static InstanceType {
        self.instance
    }

    /// Number of ranks (constant for the lifetime of the job).
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// Total number of GPUs (the world size of ZeRO-3).
    pub fn world_size(&self) -> usize {
        self.machines.len() * self.instance.gpus as usize
    }

    /// All machines in rank order.
    pub fn machines(&self) -> &[Machine] {
        &self.machines
    }

    /// The machine at `rank`.
    pub fn machine(&self, rank: usize) -> Result<&Machine, ClusterError> {
        self.machines
            .get(rank)
            .ok_or(ClusterError::UnknownRank(rank))
    }

    /// Mutable access to the machine at `rank`.
    pub fn machine_mut(&mut self, rank: usize) -> Result<&mut Machine, ClusterError> {
        self.machines
            .get_mut(rank)
            .ok_or(ClusterError::UnknownRank(rank))
    }

    /// Ranks that are currently healthy.
    pub fn healthy_ranks(&self) -> Vec<usize> {
        self.machines
            .iter()
            .filter(|m| m.health.is_healthy())
            .map(|m| m.rank)
            .collect()
    }

    /// Ranks whose CPU memory (and thus in-memory checkpoints) is intact.
    pub fn cpu_intact_ranks(&self) -> Vec<usize> {
        self.machines
            .iter()
            .filter(|m| m.health.cpu_memory_intact())
            .map(|m| m.rank)
            .collect()
    }

    /// Whether every rank is healthy (training can proceed).
    pub fn all_healthy(&self) -> bool {
        self.machines.iter().all(|m| m.health.is_healthy())
    }

    /// Marks `rank` failed with the given kind.
    pub fn fail(&mut self, rank: usize, kind: FailureKind) -> Result<(), ClusterError> {
        let m = self.machine_mut(rank)?;
        m.health = HealthState::Failed(kind);
        Ok(())
    }

    /// Marks `rank` as awaiting a replacement machine.
    pub fn begin_replacement(&mut self, rank: usize) -> Result<(), ClusterError> {
        let m = self.machine_mut(rank)?;
        m.health = HealthState::Replacing;
        Ok(())
    }

    /// Installs a fresh machine at `rank` (the replacement arrived). The new
    /// machine reuses the rank but has a new identity and empty CPU memory.
    pub fn complete_replacement(
        &mut self,
        rank: usize,
        now: SimTime,
    ) -> Result<MachineId, ClusterError> {
        if rank >= self.machines.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        if self.machines[rank].health != HealthState::Replacing {
            return Err(ClusterError::NotReplacing(rank));
        }
        let id = MachineId(self.next_id);
        self.next_id += 1;
        self.machines[rank] = Machine::new(id, rank, self.instance, now);
        Ok(id)
    }

    /// Restarts the training process on a software-failed machine (no
    /// hardware change, CPU memory intact).
    pub fn restart(&mut self, rank: usize) -> Result<(), ClusterError> {
        let m = self.machine_mut(rank)?;
        m.health = HealthState::Healthy;
        Ok(())
    }

    /// The fabric configuration for checkpoint traffic on this cluster.
    pub fn ckpt_fabric_config(&self) -> FabricConfig {
        FabricConfig {
            machines: self.machines.len(),
            network: self.instance.ckpt_net_cost(),
            copy: self.instance.copy_cost(),
        }
    }

    /// Builds a fresh checkpoint fabric.
    pub fn ckpt_fabric(&self) -> Fabric {
        Fabric::new(self.ckpt_fabric_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(InstanceType::p4d(), n)
    }

    #[test]
    fn fresh_cluster_is_healthy() {
        let c = cluster(16);
        assert_eq!(c.len(), 16);
        assert_eq!(c.world_size(), 128);
        assert!(c.all_healthy());
        assert_eq!(c.healthy_ranks().len(), 16);
    }

    #[test]
    fn failure_and_restart_roundtrip() {
        let mut c = cluster(4);
        c.fail(2, FailureKind::Software).unwrap();
        assert!(!c.all_healthy());
        assert_eq!(c.healthy_ranks(), vec![0, 1, 3]);
        // Software failure: CPU memory still intact on all machines.
        assert_eq!(c.cpu_intact_ranks().len(), 4);
        c.restart(2).unwrap();
        assert!(c.all_healthy());
    }

    #[test]
    fn hardware_failure_loses_cpu_memory() {
        let mut c = cluster(4);
        c.fail(1, FailureKind::Hardware).unwrap();
        assert_eq!(c.cpu_intact_ranks(), vec![0, 2, 3]);
    }

    #[test]
    fn replacement_issues_fresh_identity() {
        let mut c = cluster(4);
        let old_id = c.machine(3).unwrap().id;
        c.fail(3, FailureKind::Hardware).unwrap();
        c.begin_replacement(3).unwrap();
        let new_id = c.complete_replacement(3, SimTime::from_secs(300)).unwrap();
        assert_ne!(old_id, new_id);
        let m = c.machine(3).unwrap();
        assert_eq!(m.rank, 3);
        assert!(m.health.is_healthy());
        assert_eq!(m.joined_at, SimTime::from_secs(300));
    }

    #[test]
    fn replacement_requires_replacing_state() {
        let mut c = cluster(4);
        assert_eq!(
            c.complete_replacement(0, SimTime::ZERO),
            Err(ClusterError::NotReplacing(0))
        );
        assert_eq!(
            c.complete_replacement(9, SimTime::ZERO),
            Err(ClusterError::UnknownRank(9))
        );
    }

    #[test]
    fn unknown_rank_errors() {
        let mut c = cluster(2);
        assert!(c.fail(5, FailureKind::Software).is_err());
        assert!(c.machine(5).is_err());
    }

    #[test]
    fn fabric_config_matches_instance() {
        let c = cluster(8);
        let cfg = c.ckpt_fabric_config();
        assert_eq!(cfg.machines, 8);
        assert!((cfg.network.bandwidth.as_gbps() - 320.0).abs() < 1e-6);
    }
}
