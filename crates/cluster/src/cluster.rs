//! The training cluster: `N` ranked machines of one instance type.
//!
//! # Struct-of-arrays layout
//!
//! The cluster's hot state is stored as flat per-field lanes (`ids`,
//! `health`, `joined_at`, `ckpt_mem_used`) indexed by rank, not as a
//! `Vec<Machine>` of per-machine structs. The fleet-scale chaos and DES
//! paths scan *one* field across *all* ranks (health sweeps, liveness
//! censuses) thousands of times per simulated second; a lane scan touches
//! `N × 1` field worth of cache lines instead of `N × sizeof(Machine)`,
//! which is what keeps a 10 000-machine month-long run inside the DES
//! event budget. Aggregate counts (`healthy`, `cpu_intact`) are maintained
//! incrementally on every health transition, so the common "is everyone
//! up / how many survivors" queries are O(1).
//!
//! [`Machine`] remains the assembled per-rank *view* ([`Cluster::machine`]
//! returns it by value); nothing outside this module depends on the
//! storage layout.

use crate::catalog::InstanceType;
use crate::machine::{FailureKind, HealthState, Machine, MachineId};
use gemini_net::{ByteSize, Fabric, FabricConfig};
use gemini_sim::SimTime;

/// Errors from cluster operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClusterError {
    /// The rank does not exist.
    UnknownRank(usize),
    /// Tried to replace a machine that is not awaiting replacement.
    NotReplacing(usize),
}

impl core::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ClusterError::UnknownRank(r) => write!(f, "unknown rank {r}"),
            ClusterError::NotReplacing(r) => {
                write!(f, "rank {r} is not awaiting replacement")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A static, synchronous training cluster (the setting GEMINI targets, §1:
/// fixed computation resources, all ranks advance in lockstep), stored as
/// struct-of-arrays (see the module docs).
#[derive(Clone, Debug)]
pub struct Cluster {
    instance: &'static InstanceType,
    /// Identity lane: the physical machine currently holding each rank.
    ids: Vec<MachineId>,
    /// Health lane — the hottest field; scanned by censuses and sweeps.
    health: Vec<HealthState>,
    /// When the physical machine at each rank joined the job.
    joined_at: Vec<SimTime>,
    /// Checkpoint-replica bytes resident in each rank's CPU memory.
    ckpt_mem_used: Vec<ByteSize>,
    /// Count cache: ranks with `health.is_healthy()`.
    healthy: usize,
    /// Count cache: ranks with `health.cpu_memory_intact()`.
    cpu_intact: usize,
    next_id: u64,
}

impl Cluster {
    /// Creates a cluster of `n` healthy machines.
    pub fn new(instance: &'static InstanceType, n: usize) -> Self {
        Cluster {
            instance,
            ids: (0..n).map(|rank| MachineId(rank as u64)).collect(),
            health: vec![HealthState::Healthy; n],
            joined_at: vec![SimTime::ZERO; n],
            ckpt_mem_used: vec![ByteSize::ZERO; n],
            healthy: n,
            cpu_intact: n,
            next_id: n as u64,
        }
    }

    /// The instance type all machines share.
    pub fn instance(&self) -> &'static InstanceType {
        self.instance
    }

    /// Number of ranks (constant for the lifetime of the job).
    pub fn len(&self) -> usize {
        self.health.len()
    }

    /// Whether the cluster has no machines.
    pub fn is_empty(&self) -> bool {
        self.health.is_empty()
    }

    /// Total number of GPUs (the world size of ZeRO-3).
    pub fn world_size(&self) -> usize {
        self.health.len() * self.instance.gpus as usize
    }

    /// The health lane, indexed by rank — the raw SoA view for hot scans.
    pub fn health_lane(&self) -> &[HealthState] {
        &self.health
    }

    /// The identity lane, indexed by rank.
    pub fn id_lane(&self) -> &[MachineId] {
        &self.ids
    }

    /// All machines in rank order, assembled from the lanes. Cold-path
    /// convenience (reports, tests) — hot paths use the lane accessors.
    pub fn machines(&self) -> Vec<Machine> {
        (0..self.len()).map(|r| self.assemble(r)).collect()
    }

    /// The machine at `rank`, assembled by value from the lanes.
    pub fn machine(&self, rank: usize) -> Result<Machine, ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        Ok(self.assemble(rank))
    }

    fn assemble(&self, rank: usize) -> Machine {
        Machine {
            id: self.ids[rank],
            rank,
            health: self.health[rank],
            joined_at: self.joined_at[rank],
            cpu_mem: self.instance.cpu_mem,
            ckpt_mem_used: self.ckpt_mem_used[rank],
        }
    }

    /// Ranks that are currently healthy.
    pub fn healthy_ranks(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.healthy);
        out.extend(
            self.health
                .iter()
                .enumerate()
                .filter(|(_, h)| h.is_healthy())
                .map(|(r, _)| r),
        );
        out
    }

    /// Ranks whose CPU memory (and thus in-memory checkpoints) is intact.
    pub fn cpu_intact_ranks(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.cpu_intact);
        out.extend(
            self.health
                .iter()
                .enumerate()
                .filter(|(_, h)| h.cpu_memory_intact())
                .map(|(r, _)| r),
        );
        out
    }

    /// Number of healthy ranks — O(1) from the count cache.
    pub fn healthy_count(&self) -> usize {
        self.healthy
    }

    /// Number of ranks with intact CPU memory — O(1) from the count cache.
    pub fn cpu_intact_count(&self) -> usize {
        self.cpu_intact
    }

    /// Whether every rank is healthy (training can proceed). O(1).
    pub fn all_healthy(&self) -> bool {
        self.healthy == self.len()
    }

    /// Sets `rank`'s health, keeping the aggregate counts in step.
    fn set_health(&mut self, rank: usize, new: HealthState) {
        let old = std::mem::replace(&mut self.health[rank], new);
        self.healthy = self.healthy + new.is_healthy() as usize - old.is_healthy() as usize;
        self.cpu_intact =
            self.cpu_intact + new.cpu_memory_intact() as usize - old.cpu_memory_intact() as usize;
    }

    /// Marks `rank` failed with the given kind.
    pub fn fail(&mut self, rank: usize, kind: FailureKind) -> Result<(), ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        self.set_health(rank, HealthState::Failed(kind));
        Ok(())
    }

    /// Marks `rank` as awaiting a replacement machine.
    pub fn begin_replacement(&mut self, rank: usize) -> Result<(), ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        self.set_health(rank, HealthState::Replacing);
        Ok(())
    }

    /// Installs a fresh machine at `rank` (the replacement arrived). The new
    /// machine reuses the rank but has a new identity and empty CPU memory.
    pub fn complete_replacement(
        &mut self,
        rank: usize,
        now: SimTime,
    ) -> Result<MachineId, ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        if self.health[rank] != HealthState::Replacing {
            return Err(ClusterError::NotReplacing(rank));
        }
        let id = MachineId(self.next_id);
        self.next_id += 1;
        self.ids[rank] = id;
        self.joined_at[rank] = now;
        self.ckpt_mem_used[rank] = ByteSize::ZERO;
        self.set_health(rank, HealthState::Healthy);
        Ok(id)
    }

    /// Restarts the training process on a software-failed machine (no
    /// hardware change, CPU memory intact).
    pub fn restart(&mut self, rank: usize) -> Result<(), ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        self.set_health(rank, HealthState::Healthy);
        Ok(())
    }

    /// Accounts for storing `size` of checkpoint data in `rank`'s CPU
    /// memory; returns `Ok(false)` (and stores nothing) if it does not fit.
    pub fn store_ckpt(&mut self, rank: usize, size: ByteSize) -> Result<bool, ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        let free = self.instance.cpu_mem.saturating_sub(self.ckpt_mem_used[rank]);
        if size > free {
            return Ok(false);
        }
        self.ckpt_mem_used[rank] += size;
        Ok(true)
    }

    /// Releases `size` of checkpoint data from `rank`'s CPU memory.
    pub fn release_ckpt(&mut self, rank: usize, size: ByteSize) -> Result<(), ClusterError> {
        if rank >= self.len() {
            return Err(ClusterError::UnknownRank(rank));
        }
        self.ckpt_mem_used[rank] = self.ckpt_mem_used[rank].saturating_sub(size);
        Ok(())
    }

    /// The fabric configuration for checkpoint traffic on this cluster.
    pub fn ckpt_fabric_config(&self) -> FabricConfig {
        FabricConfig {
            machines: self.len(),
            network: self.instance.ckpt_net_cost(),
            copy: self.instance.copy_cost(),
        }
    }

    /// Builds a fresh checkpoint fabric.
    pub fn ckpt_fabric(&self) -> Fabric {
        Fabric::new(self.ckpt_fabric_config())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Cluster {
        Cluster::new(InstanceType::p4d(), n)
    }

    #[test]
    fn fresh_cluster_is_healthy() {
        let c = cluster(16);
        assert_eq!(c.len(), 16);
        assert_eq!(c.world_size(), 128);
        assert!(c.all_healthy());
        assert_eq!(c.healthy_ranks().len(), 16);
        assert_eq!(c.healthy_count(), 16);
        assert_eq!(c.cpu_intact_count(), 16);
    }

    #[test]
    fn failure_and_restart_roundtrip() {
        let mut c = cluster(4);
        c.fail(2, FailureKind::Software).unwrap();
        assert!(!c.all_healthy());
        assert_eq!(c.healthy_ranks(), vec![0, 1, 3]);
        assert_eq!(c.healthy_count(), 3);
        // Software failure: CPU memory still intact on all machines.
        assert_eq!(c.cpu_intact_ranks().len(), 4);
        assert_eq!(c.cpu_intact_count(), 4);
        c.restart(2).unwrap();
        assert!(c.all_healthy());
    }

    #[test]
    fn hardware_failure_loses_cpu_memory() {
        let mut c = cluster(4);
        c.fail(1, FailureKind::Hardware).unwrap();
        assert_eq!(c.cpu_intact_ranks(), vec![0, 2, 3]);
        assert_eq!(c.cpu_intact_count(), 3);
        assert_eq!(c.health_lane()[1], HealthState::Failed(FailureKind::Hardware));
    }

    #[test]
    fn replacement_issues_fresh_identity() {
        let mut c = cluster(4);
        let old_id = c.machine(3).unwrap().id;
        c.fail(3, FailureKind::Hardware).unwrap();
        c.begin_replacement(3).unwrap();
        let new_id = c.complete_replacement(3, SimTime::from_secs(300)).unwrap();
        assert_ne!(old_id, new_id);
        let m = c.machine(3).unwrap();
        assert_eq!(m.rank, 3);
        assert!(m.health.is_healthy());
        assert_eq!(m.joined_at, SimTime::from_secs(300));
        assert_eq!(c.id_lane()[3], new_id);
    }

    #[test]
    fn replacement_requires_replacing_state() {
        let mut c = cluster(4);
        assert_eq!(
            c.complete_replacement(0, SimTime::ZERO),
            Err(ClusterError::NotReplacing(0))
        );
        assert_eq!(
            c.complete_replacement(9, SimTime::ZERO),
            Err(ClusterError::UnknownRank(9))
        );
    }

    #[test]
    fn unknown_rank_errors() {
        let mut c = cluster(2);
        assert!(c.fail(5, FailureKind::Software).is_err());
        assert!(c.machine(5).is_err());
        assert!(c.store_ckpt(5, ByteSize::from_gb(1)).is_err());
    }

    #[test]
    fn ckpt_accounting_tracks_per_rank_lane() {
        let mut c = cluster(2);
        assert!(c.store_ckpt(0, ByteSize::from_gb(100)).unwrap());
        assert_eq!(c.machine(0).unwrap().ckpt_mem_used, ByteSize::from_gb(100));
        assert_eq!(c.machine(1).unwrap().ckpt_mem_used, ByteSize::ZERO);
        // Overflow is rejected without storing anything.
        assert!(!c.store_ckpt(0, ByteSize::from_gb(10_000)).unwrap());
        c.release_ckpt(0, ByteSize::from_gb(40)).unwrap();
        assert_eq!(c.machine(0).unwrap().ckpt_mem_used, ByteSize::from_gb(60));
        // A hardware replacement wipes the rank's checkpoint memory.
        c.fail(0, FailureKind::Hardware).unwrap();
        c.begin_replacement(0).unwrap();
        c.complete_replacement(0, SimTime::from_secs(60)).unwrap();
        assert_eq!(c.machine(0).unwrap().ckpt_mem_used, ByteSize::ZERO);
    }

    #[test]
    fn count_caches_stay_consistent_at_fleet_scale() {
        // 10k ranks: churn a pseudo-random third of the fleet through
        // every transition and check the caches against full lane scans.
        let n = 10_000;
        let mut c = cluster(n);
        for i in 0..n / 3 {
            let rank = (i * 7919) % n;
            let kind = if i % 2 == 0 {
                FailureKind::Software
            } else {
                FailureKind::Hardware
            };
            c.fail(rank, kind).unwrap();
            match kind {
                FailureKind::Software => c.restart(rank).unwrap(),
                FailureKind::Hardware => {
                    c.begin_replacement(rank).unwrap();
                    if i % 3 == 0 {
                        c.complete_replacement(rank, SimTime::from_secs(i as u64)).unwrap();
                    }
                }
            }
        }
        assert_eq!(c.healthy_count(), c.healthy_ranks().len());
        assert_eq!(c.cpu_intact_count(), c.cpu_intact_ranks().len());
        assert_eq!(
            c.all_healthy(),
            c.health_lane().iter().all(|h| h.is_healthy())
        );
    }

    #[test]
    fn fabric_config_matches_instance() {
        let c = cluster(8);
        let cfg = c.ckpt_fabric_config();
        assert_eq!(cfg.machines, 8);
        assert!((cfg.network.bandwidth.as_gbps() - 320.0).abs() < 1e-6);
    }
}
