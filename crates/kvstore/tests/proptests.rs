//! Property-based tests for the distributed KV store: model-based
//! checking of revisioned mutations, lease semantics and election safety.

use gemini_kvstore::{Election, EventKind, KvStore};
use gemini_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random store operation with a relative time step.
#[derive(Clone, Debug)]
enum Op {
    Put { key: u8, value: u8 },
    Delete { key: u8 },
    LeasePut { key: u8, value: u8, ttl_s: u64 },
    Advance { secs: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, any::<u8>()).prop_map(|(key, value)| Op::Put { key, value }),
        (0u8..8).prop_map(|key| Op::Delete { key }),
        (0u8..8, any::<u8>(), 1u64..20).prop_map(|(key, value, ttl_s)| Op::LeasePut {
            key,
            value,
            ttl_s
        }),
        (1u64..30).prop_map(|secs| Op::Advance { secs }),
    ]
}

/// A random lease-table operation for the watermark equivalence test.
#[derive(Clone, Debug)]
enum LeaseOp {
    Grant(u64),
    KeepAlive(usize),
    Revoke(usize),
    PutLeased { which: usize, key: u8 },
    Advance(u64),
    Tick,
}

proptest! {
    /// Model-based check: the store agrees with a simple map + lease model
    /// after any operation sequence, and revisions strictly increase.
    #[test]
    fn store_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut kv = KvStore::new();
        // Reference model: key → (value, expiry).
        let mut model: HashMap<String, (String, Option<SimTime>)> = HashMap::new();
        let mut now = SimTime::ZERO;
        let mut last_rev = kv.revision();

        for op in ops {
            // Expire model entries first (the store does so lazily).
            model.retain(|_, (_, exp)| exp.map(|e| now < e).unwrap_or(true));
            match op {
                Op::Put { key, value } => {
                    let k = format!("k/{key}");
                    let rev = kv.put(now, &k, &value.to_string(), None).unwrap();
                    prop_assert!(rev > last_rev);
                    last_rev = rev;
                    model.insert(k, (value.to_string(), None));
                }
                Op::Delete { key } => {
                    let k = format!("k/{key}");
                    let res = kv.delete(now, &k);
                    if model.remove(&k).is_some() {
                        let rev = res.unwrap();
                        prop_assert!(rev > last_rev);
                        last_rev = rev;
                    } else {
                        prop_assert!(res.is_err());
                    }
                }
                Op::LeasePut { key, value, ttl_s } => {
                    let k = format!("k/{key}");
                    let ttl = SimDuration::from_secs(ttl_s);
                    let lease = kv.grant_lease(now, ttl);
                    let rev = kv.put(now, &k, &value.to_string(), Some(lease)).unwrap();
                    prop_assert!(rev > last_rev);
                    last_rev = rev;
                    model.insert(k, (value.to_string(), Some(now + ttl)));
                }
                Op::Advance { secs } => {
                    now += SimDuration::from_secs(secs);
                }
            }
            // Compare visible state.
            model.retain(|_, (_, exp)| exp.map(|e| now < e).unwrap_or(true));
            for key in 0..8u8 {
                let k = format!("k/{key}");
                let store_val = kv.get(now, &k).map(|v| v.value);
                let model_val = model.get(&k).map(|(v, _)| v.clone());
                prop_assert_eq!(store_val, model_val, "key {} at {}", k, now);
            }
        }
    }

    /// Watch events on a prefix exactly mirror the mutations applied to it,
    /// with strictly increasing revisions.
    #[test]
    fn watch_mirrors_mutations(keys in proptest::collection::vec((0u8..4, any::<u8>()), 1..50)) {
        let mut kv = KvStore::new();
        let w = kv.watch("k/");
        let mut expected = 0usize;
        for (key, value) in &keys {
            kv.put(SimTime::ZERO, &format!("k/{key}"), &value.to_string(), None).unwrap();
            expected += 1;
        }
        kv.put(SimTime::ZERO, "other/x", "ignored", None).unwrap();
        let events = kv.poll_watch(SimTime::ZERO, w).unwrap();
        prop_assert_eq!(events.len(), expected);
        for (ev, (key, value)) in events.iter().zip(&keys) {
            prop_assert_eq!(ev.kind, EventKind::Put);
            prop_assert_eq!(&ev.key, &format!("k/{key}"));
            prop_assert_eq!(&ev.value, &value.to_string());
        }
        for pair in events.windows(2) {
            prop_assert!(pair[0].revision < pair[1].revision);
        }
    }

    /// Election safety under arbitrary interleavings of campaigns and
    /// candidate blackouts: never two leaders, and the leader is always a
    /// known candidate.
    #[test]
    fn election_safety(schedule in proptest::collection::vec((0usize..4, 1u64..8), 1..100)) {
        let mut kv = KvStore::new();
        let election = Election::new("root", SimDuration::from_secs(10));
        let candidates = ["c0", "c1", "c2", "c3"];
        let mut now = SimTime::ZERO;
        for (who, advance) in schedule {
            now += SimDuration::from_secs(advance);
            let _ = election.campaign(&mut kv, now, candidates[who], None).unwrap();
            // At most one leader, and it is a real candidate.
            if let Some(leader) = election.leader(&mut kv, now) {
                prop_assert!(candidates.contains(&leader.as_str()));
            }
            // The underlying key count for the election is at most 1.
            prop_assert!(kv.range(now, "root").len() <= 1);
        }
    }

    /// The `next_expiry` watermark fast path is observationally identical
    /// to a naive store that sweeps the full lease table on every
    /// operation. Audit note (long-running-process sweep): the watermark
    /// is maintained as a *lower bound* — `grant_lease` lowers it via
    /// `min`, keep-alives only push deadlines later under monotonic time
    /// (deadline = now + ttl), sweeps recompute it exactly, and `revoke`
    /// recomputes when it removes the lease carrying the bound. No
    /// missed-expiry bug was found; this test pins the equivalence under
    /// arbitrary grant/keep-alive/revoke/advance interleavings.
    #[test]
    fn lease_watermark_matches_sweep_every_time_reference(
        ops in proptest::collection::vec(
            prop_oneof![
                (1u64..20).prop_map(LeaseOp::Grant),
                (0usize..12).prop_map(LeaseOp::KeepAlive),
                (0usize..12).prop_map(LeaseOp::Revoke),
                (0usize..12, 0u8..4).prop_map(|(which, key)| LeaseOp::PutLeased { which, key }),
                (1u64..25).prop_map(LeaseOp::Advance),
                Just(LeaseOp::Tick),
            ],
            1..150,
        )
    ) {
        let mut kv = KvStore::new();
        // Reference: no watermark, expiry recomputed from scratch at every
        // step. lease id → (deadline, ttl); key → owning lease id.
        let mut ref_leases: HashMap<u64, (SimTime, SimDuration)> = HashMap::new();
        let mut ref_keys: HashMap<String, u64> = HashMap::new();
        let mut granted: Vec<gemini_kvstore::LeaseId> = Vec::new();
        let mut now = SimTime::ZERO;

        for op in ops {
            // The reference sweeps unconditionally — the behavior the
            // watermark fast path must be indistinguishable from.
            ref_leases.retain(|_, (deadline, _)| now < *deadline);
            ref_keys.retain(|_, id| ref_leases.contains_key(id));
            match op {
                LeaseOp::Grant(ttl_s) => {
                    let ttl = SimDuration::from_secs(ttl_s);
                    let id = kv.grant_lease(now, ttl);
                    ref_leases.insert(id.0, (now + ttl, ttl));
                    granted.push(id);
                }
                LeaseOp::KeepAlive(which) => {
                    if let Some(id) = granted.get(which % granted.len().max(1)) {
                        let res = kv.keep_alive(now, *id);
                        match ref_leases.get_mut(&id.0) {
                            Some((deadline, ttl)) => {
                                prop_assert!(res.is_ok());
                                *deadline = now + *ttl;
                            }
                            None => prop_assert!(res.is_err()),
                        }
                    }
                }
                LeaseOp::Revoke(which) => {
                    if let Some(id) = granted.get(which % granted.len().max(1)) {
                        let res = kv.revoke(now, *id);
                        if ref_leases.remove(&id.0).is_some() {
                            prop_assert!(res.is_ok());
                            ref_keys.retain(|_, owner| *owner != id.0);
                        } else {
                            prop_assert!(res.is_err());
                        }
                    }
                }
                LeaseOp::PutLeased { which, key } => {
                    if let Some(id) = granted.get(which % granted.len().max(1)) {
                        let k = format!("lk/{key}");
                        let res = kv.put(now, &k, "v", Some(*id));
                        if ref_leases.contains_key(&id.0) {
                            prop_assert!(res.is_ok());
                            ref_keys.insert(k, id.0);
                        } else {
                            prop_assert!(res.is_err());
                        }
                    }
                }
                LeaseOp::Advance(secs) => now += SimDuration::from_secs(secs),
                LeaseOp::Tick => kv.tick(now),
            }
            // Observational equivalence after every step: lease liveness
            // and leased-key visibility agree with the sweep-every-time
            // reference.
            ref_leases.retain(|_, (deadline, _)| now < *deadline);
            ref_keys.retain(|_, id| ref_leases.contains_key(id));
            for id in &granted {
                prop_assert_eq!(
                    kv.lease_alive(now, *id),
                    ref_leases.contains_key(&id.0),
                    "lease {} at {}", id, now
                );
            }
            for key in 0..4u8 {
                let k = format!("lk/{key}");
                prop_assert_eq!(
                    kv.get(now, &k).is_some(),
                    ref_keys.contains_key(&k),
                    "key {} at {}", k, now
                );
            }
        }
    }

    /// A leader that keeps campaigning within the TTL is never deposed.
    #[test]
    fn stable_leader_retains_leadership(steps in 1u64..50) {
        let mut kv = KvStore::new();
        let election = Election::new("root", SimDuration::from_secs(10));
        let mut now = SimTime::ZERO;
        let first = election.campaign(&mut kv, now, "c0", None).unwrap();
        let lease = match first {
            gemini_kvstore::Campaign::Leader(l) => l,
            _ => unreachable!("first campaigner leads"),
        };
        for _ in 0..steps {
            now += SimDuration::from_secs(5); // within the 10 s TTL
            let r = election.campaign(&mut kv, now, "c0", Some(lease)).unwrap();
            prop_assert_eq!(r, gemini_kvstore::Campaign::Leader(lease));
            // A challenger never wins while the leader is live.
            let challenger = election.campaign(&mut kv, now, "c1", None).unwrap();
            let is_follower =
                matches!(challenger, gemini_kvstore::Campaign::Follower { .. });
            prop_assert!(is_follower);
        }
    }
}
