//! Watches: revisioned change feeds over key prefixes.
//!
//! Consumers poll their [`Watcher`] for events — a natural fit for the
//! discrete-event loop, where agents wake on their heartbeat timer and
//! drain whatever changed since their last visit.

use crate::store::Revision;
use serde::{Deserialize, Serialize};

/// What happened to a key.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum EventKind {
    /// The key was created or updated.
    Put,
    /// The key was deleted explicitly.
    Delete,
    /// The key was deleted because its lease expired.
    Expired,
}

/// One change event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchEvent {
    /// Store revision at which the change happened.
    pub revision: Revision,
    /// The key that changed.
    pub key: String,
    /// The kind of change.
    pub kind: EventKind,
    /// The new value for puts, the old value for deletions.
    pub value: String,
}

/// A registered watch over a key prefix.
#[derive(Clone, Debug, Default)]
pub struct Watcher {
    pub(crate) prefix: String,
    pub(crate) pending: Vec<WatchEvent>,
}

impl Watcher {
    /// The watched prefix.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// Number of undelivered events.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Drains all pending events in revision order.
    pub fn drain(&mut self) -> Vec<WatchEvent> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_empties_pending() {
        let mut w = Watcher {
            prefix: "health/".into(),
            pending: vec![WatchEvent {
                revision: Revision(3),
                key: "health/0".into(),
                kind: EventKind::Put,
                value: "ok".into(),
            }],
        };
        assert_eq!(w.pending_len(), 1);
        let evs = w.drain();
        assert_eq!(evs.len(), 1);
        assert_eq!(w.pending_len(), 0);
        assert_eq!(evs[0].kind, EventKind::Put);
    }
}
