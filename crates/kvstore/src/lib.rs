//! An etcd-like distributed key-value store for failure-recovery
//! coordination.
//!
//! GEMINI's failure-recovery module (paper §3.2) coordinates through a
//! distributed key-value store: worker agents publish their machine's
//! health status under a lease, the root agent scans those statuses, and
//! root-machine failover uses the store's leader-election primitive. This
//! crate reproduces the API surface that machinery needs — revisioned
//! puts/gets, compare-and-swap, TTL leases with keep-alives, watches and
//! lease-based leader election — driven entirely by simulated time.
//!
//! The store itself is modelled as always available (etcd runs replicated
//! on machines outside the training fleet); what fails are the *clients*,
//! whose leases then expire and whose keys disappear, which is exactly the
//! failure-detection signal the agents consume.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod election;
pub mod lease;
pub mod retry;
pub mod store;
pub mod watch;

pub use election::{Campaign, Election};
pub use lease::{Lease, LeaseId};
pub use retry::RetryPolicy;
pub use store::{KvError, KvStore, Revision, VersionedValue, WatcherId};
pub use watch::{EventKind, WatchEvent, Watcher};
