//! Bounded retry with deterministic exponential backoff.
//!
//! Recovery paths that talk to the KV store or the cloud operator must not
//! spin forever when the dependency is down (chaos: KV-node crashes,
//! replacement exhaustion). `RetryPolicy` gives them a shared, fully
//! deterministic schedule: attempt `i` (0-based) backs off for
//! `base * 2^i`, capped at `max_backoff`, for at most `max_attempts`
//! attempts. No jitter — byte-identical reruns per seed are a chaos-engine
//! invariant, so randomized backoff would have to be seeded anyway and
//! deterministic truncated-exponential keeps traces legible.

use gemini_sim::SimDuration;

/// A bounded exponential-backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (>= 1). The first attempt is immediate;
    /// the policy is exhausted after `max_attempts` failures.
    pub max_attempts: u32,
    /// Backoff before the second attempt (doubles each retry).
    pub base: SimDuration,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    /// 6 attempts, 1 s base, 30 s cap: 1 + 2 + 4 + 8 + 16 (+ give up)
    /// ≈ 31 s of patience — comfortably above one health TTL (15 s) so a
    /// single KV hiccup is absorbed, but bounded so recovery terminates.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts, backoff starting at `base`
    /// and capped at `max_backoff`.
    pub fn new(max_attempts: u32, base: SimDuration, max_backoff: SimDuration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            max_backoff,
        }
    }

    /// The backoff to wait after failed attempt `attempt` (0-based), or
    /// `None` when the policy is exhausted and the caller must give up.
    pub fn backoff(&self, attempt: u32) -> Option<SimDuration> {
        if attempt + 1 >= self.max_attempts {
            return None;
        }
        // base * 2^attempt, saturating, capped.
        let shift = attempt.min(30);
        let nanos = self.base.as_nanos().saturating_mul(1u64 << shift);
        let capped = nanos.min(self.max_backoff.as_nanos());
        Some(SimDuration::from_nanos(capped))
    }

    /// Total time spent backing off if every attempt fails (the worst-case
    /// added latency before the caller reports a timeout).
    pub fn worst_case_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0;
        while let Some(b) = self.backoff(attempt) {
            total = total + b;
            attempt += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new(
            8,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
        );
        let seq: Vec<u64> = (0..7)
            .map(|i| p.backoff(i).unwrap().as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 10, 10, 10]);
        assert_eq!(p.backoff(7), None);
    }

    #[test]
    fn single_attempt_never_backs_off() {
        let p = RetryPolicy::new(1, SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(p.backoff(0), None);
    }

    #[test]
    fn worst_case_is_sum_of_backoffs() {
        let p = RetryPolicy::default();
        // 1 + 2 + 4 + 8 + 16 = 31 s.
        assert_eq!(p.worst_case_backoff(), SimDuration::from_secs(31));
    }

    #[test]
    fn deterministic_across_calls() {
        let p = RetryPolicy::default();
        for i in 0..10 {
            assert_eq!(p.backoff(i), p.backoff(i));
        }
    }
}
