//! Bounded retry with deterministic exponential backoff.
//!
//! Recovery paths that talk to the KV store or the cloud operator must not
//! spin forever when the dependency is down (chaos: KV-node crashes,
//! replacement exhaustion). `RetryPolicy` gives them a shared, fully
//! deterministic schedule: attempt `i` (0-based) backs off for
//! `base * 2^i`, capped at `max_backoff`, for at most `max_attempts`
//! attempts. No jitter — byte-identical reruns per seed are a chaos-engine
//! invariant, so randomized backoff would have to be seeded anyway and
//! deterministic truncated-exponential keeps traces legible.

use gemini_sim::SimDuration;

/// A bounded exponential-backoff schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of attempts (>= 1). The first attempt is immediate;
    /// the policy is exhausted after `max_attempts` failures.
    pub max_attempts: u32,
    /// Backoff before the second attempt (doubles each retry).
    pub base: SimDuration,
    /// Ceiling on any single backoff.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    /// 6 attempts, 1 s base, 30 s cap: 1 + 2 + 4 + 8 + 16 (+ give up)
    /// ≈ 31 s of patience — comfortably above one health TTL (15 s) so a
    /// single KV hiccup is absorbed, but bounded so recovery terminates.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: SimDuration::from_secs(1),
            max_backoff: SimDuration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts, backoff starting at `base`
    /// and capped at `max_backoff`.
    pub fn new(max_attempts: u32, base: SimDuration, max_backoff: SimDuration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            max_backoff,
        }
    }

    /// The backoff to wait after failed attempt `attempt` (0-based), or
    /// `None` when the policy is exhausted and the caller must give up.
    pub fn backoff(&self, attempt: u32) -> Option<SimDuration> {
        // `attempt + 1` wraps to 0 at `attempt = u32::MAX` in release
        // builds (and panics in debug), which would hand the caller a
        // backoff after the policy was exhausted; saturate instead.
        if attempt.saturating_add(1) >= self.max_attempts {
            return None;
        }
        // base * 2^attempt, saturating, capped.
        let shift = attempt.min(30);
        let nanos = self.base.as_nanos().saturating_mul(1u64 << shift);
        let capped = nanos.min(self.max_backoff.as_nanos());
        Some(SimDuration::from_nanos(capped))
    }

    /// Total time spent backing off if every attempt fails (the worst-case
    /// added latency before the caller reports a timeout).
    pub fn worst_case_backoff(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        let mut attempt = 0;
        while let Some(b) = self.backoff(attempt) {
            total = total + b;
            attempt += 1;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_then_caps() {
        let p = RetryPolicy::new(
            8,
            SimDuration::from_secs(1),
            SimDuration::from_secs(10),
        );
        let seq: Vec<u64> = (0..7)
            .map(|i| p.backoff(i).unwrap().as_nanos() / 1_000_000_000)
            .collect();
        assert_eq!(seq, vec![1, 2, 4, 8, 10, 10, 10]);
        assert_eq!(p.backoff(7), None);
    }

    #[test]
    fn single_attempt_never_backs_off() {
        let p = RetryPolicy::new(1, SimDuration::from_secs(1), SimDuration::from_secs(1));
        assert_eq!(p.backoff(0), None);
    }

    #[test]
    fn worst_case_is_sum_of_backoffs() {
        let p = RetryPolicy::default();
        // 1 + 2 + 4 + 8 + 16 = 31 s.
        assert_eq!(p.worst_case_backoff(), SimDuration::from_secs(31));
    }

    #[test]
    fn deterministic_across_calls() {
        let p = RetryPolicy::default();
        for i in 0..10 {
            assert_eq!(p.backoff(i), p.backoff(i));
        }
    }

    /// Regression: `attempt + 1` used to wrap at `attempt = u32::MAX`,
    /// returning `Some(backoff)` long after the policy was exhausted
    /// (release builds; debug builds panicked on the overflow). Failed
    /// before the saturating comparison, passes after.
    #[test]
    fn exhausted_at_u32_max_attempt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(u32::MAX), None);
        assert_eq!(p.backoff(u32::MAX - 1), None);
        let unbounded = RetryPolicy::new(
            u32::MAX,
            SimDuration::from_secs(1),
            SimDuration::from_secs(30),
        );
        // Still within budget at MAX-1 failures, exhausted at MAX.
        assert!(unbounded.backoff(u32::MAX - 2).is_some());
        assert_eq!(unbounded.backoff(u32::MAX), None);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Never panics and never hands out a backoff at or past the
            /// attempt budget, for ANY (attempt, max_attempts) pair —
            /// including the u32::MAX corner that used to overflow.
            #[test]
            fn backoff_total_and_bounded(
                attempt in any::<u32>(),
                max_attempts in any::<u32>(),
                base_ms in 1u64..10_000,
                cap_ms in 1u64..120_000,
            ) {
                let p = RetryPolicy::new(
                    max_attempts,
                    SimDuration::from_millis(base_ms),
                    SimDuration::from_millis(cap_ms),
                );
                match p.backoff(attempt) {
                    Some(b) => {
                        prop_assert!(u64::from(attempt) + 1 < u64::from(p.max_attempts));
                        prop_assert!(b.as_nanos() <= p.max_backoff.as_nanos().max(p.base.as_nanos()));
                    }
                    None => prop_assert!(u64::from(attempt) + 1 >= u64::from(p.max_attempts)),
                }
            }

            /// The schedule is monotone non-decreasing up to the cap.
            #[test]
            fn backoff_monotone_up_to_cap(
                max_attempts in 1u32..64,
                base_ms in 1u64..10_000,
                cap_ms in 1u64..120_000,
            ) {
                let p = RetryPolicy::new(
                    max_attempts,
                    SimDuration::from_millis(base_ms),
                    SimDuration::from_millis(cap_ms),
                );
                let mut prev = SimDuration::ZERO;
                let mut attempt = 0;
                while let Some(b) = p.backoff(attempt) {
                    prop_assert!(b >= prev, "backoff shrank at attempt {attempt}");
                    prev = b;
                    attempt += 1;
                }
            }

            /// `worst_case_backoff` is exactly the sum of every
            /// per-attempt backoff the policy will ever grant.
            #[test]
            fn worst_case_equals_sum(
                max_attempts in 1u32..64,
                base_ms in 1u64..10_000,
                cap_ms in 1u64..120_000,
            ) {
                let p = RetryPolicy::new(
                    max_attempts,
                    SimDuration::from_millis(base_ms),
                    SimDuration::from_millis(cap_ms),
                );
                let mut total = SimDuration::ZERO;
                for attempt in 0..p.max_attempts {
                    if let Some(b) = p.backoff(attempt) {
                        total = total + b;
                    }
                }
                prop_assert_eq!(p.worst_case_backoff(), total);
            }
        }
    }
}
