//! TTL leases, the liveness primitive of the store.
//!
//! A client grants a lease with a time-to-live, attaches keys to it (its
//! health-status key, its election candidacy) and must keep it alive with
//! periodic heartbeats. When the client dies, the keep-alives stop, the
//! lease expires and every attached key is deleted — which is how the root
//! agent notices a worker is gone, and how workers notice the root is gone.

use gemini_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Identifies a lease.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LeaseId(pub u64);

impl core::fmt::Display for LeaseId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lease-{}", self.0)
    }
}

/// A granted lease.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// The lease's id.
    pub id: LeaseId,
    /// Its time-to-live; each keep-alive pushes the deadline `ttl` ahead.
    pub ttl: SimDuration,
    /// The instant at which it expires unless refreshed.
    pub deadline: SimTime,
    /// Keys attached to this lease (deleted on expiry/revocation).
    pub keys: Vec<String>,
}

impl Lease {
    /// Creates a lease granted at `now`.
    pub fn granted(id: LeaseId, now: SimTime, ttl: SimDuration) -> Self {
        Lease {
            id,
            ttl,
            deadline: now + ttl,
            keys: Vec::new(),
        }
    }

    /// Whether the lease is expired at `now`.
    pub fn is_expired(&self, now: SimTime) -> bool {
        now >= self.deadline
    }

    /// Refreshes the deadline to `now + ttl`.
    pub fn keep_alive(&mut self, now: SimTime) {
        self.deadline = now + self.ttl;
    }

    /// Attaches a key (idempotent).
    pub fn attach(&mut self, key: &str) {
        if !self.keys.iter().any(|k| k == key) {
            self.keys.push(key.to_string());
        }
    }

    /// Detaches a key.
    pub fn detach(&mut self, key: &str) {
        self.keys.retain(|k| k != key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_expires_after_ttl() {
        let l = Lease::granted(
            LeaseId(1),
            SimTime::from_secs(10),
            SimDuration::from_secs(5),
        );
        assert!(!l.is_expired(SimTime::from_secs(14)));
        assert!(l.is_expired(SimTime::from_secs(15)));
    }

    #[test]
    fn keep_alive_extends_deadline() {
        let mut l = Lease::granted(LeaseId(1), SimTime::ZERO, SimDuration::from_secs(5));
        l.keep_alive(SimTime::from_secs(4));
        assert!(!l.is_expired(SimTime::from_secs(8)));
        assert!(l.is_expired(SimTime::from_secs(9)));
    }

    #[test]
    fn attach_is_idempotent() {
        let mut l = Lease::granted(LeaseId(1), SimTime::ZERO, SimDuration::from_secs(5));
        l.attach("a");
        l.attach("a");
        l.attach("b");
        assert_eq!(l.keys, vec!["a", "b"]);
        l.detach("a");
        assert_eq!(l.keys, vec!["b"]);
    }
}
