//! Lease-based leader election (paper §3.2).
//!
//! GEMINI promotes an alive worker machine to root when the root machine
//! fails, "relying on the leader election method in the distributed
//! key-value store". We implement etcd's recipe: candidates create the
//! election key with compare-and-swap under their own lease; whoever
//! creates it is the leader; when the leader's lease expires the key
//! vanishes and the next campaigner wins.
//!
//! Safety invariant (tested): at any instant at most one candidate
//! considers itself leader.

use crate::lease::LeaseId;
use crate::store::{KvError, KvStore};
use gemini_sim::{SimDuration, SimTime};

/// A leader election over one key.
#[derive(Clone, Debug)]
pub struct Election {
    key: String,
    ttl: SimDuration,
}

/// The outcome of a campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Campaign {
    /// The caller is now (or still) the leader, holding this lease.
    Leader(LeaseId),
    /// Another candidate currently leads.
    Follower {
        /// The current leader's identity.
        leader: String,
    },
}

impl Election {
    /// An election at `key` whose leadership lease has the given TTL.
    pub fn new(key: &str, ttl: SimDuration) -> Self {
        Election {
            key: key.to_string(),
            ttl,
        }
    }

    /// The election key.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Attempts to become leader as `candidate`. If the candidate already
    /// holds the leadership (same identity), its existing lease is renewed
    /// instead of re-campaigning.
    pub fn campaign(
        &self,
        kv: &mut KvStore,
        now: SimTime,
        candidate: &str,
        existing_lease: Option<LeaseId>,
    ) -> Result<Campaign, KvError> {
        // Renew if we already lead.
        if let Some(current) = kv.get(now, &self.key) {
            if current.value == candidate {
                if let Some(lease) = current.lease {
                    kv.keep_alive(now, lease)?;
                    return Ok(Campaign::Leader(lease));
                }
            }
            return Ok(Campaign::Follower {
                leader: current.value,
            });
        }
        // Key absent: race to create it under our lease. Track whether the
        // lease was freshly granted for this round: if the CAS loses the
        // race, a freshly granted lease must be revoked, or every losing
        // campaign strands a live lease in the store until its TTL lapses
        // (a slow leak under contested elections).
        let (lease, fresh) = match existing_lease {
            Some(l) if kv.lease_alive(now, l) => (l, false),
            _ => (kv.grant_lease(now, self.ttl), true),
        };
        kv.telemetry().counter_add("kv.election_rounds", 1);
        match kv.compare_and_swap(now, &self.key, None, candidate, Some(lease)) {
            Ok(_) => {
                let sink = kv.telemetry().clone();
                sink.event(now, || gemini_telemetry::TelemetryEvent::LeaderElected {
                    key: self.key.clone(),
                    leader: candidate.to_string(),
                });
                Ok(Campaign::Leader(lease))
            }
            Err(KvError::CasFailed { actual, .. }) => {
                if fresh {
                    // Nothing is attached to the fresh lease yet, so revoke
                    // only drops the lease record. Ignore LeaseNotFound:
                    // `compare_and_swap`'s internal tick may already have
                    // retired it.
                    let _ = kv.revoke(now, lease);
                    kv.telemetry().counter_add("kv.election_lease_revoked", 1);
                }
                Ok(Campaign::Follower {
                    leader: actual.unwrap_or_default(),
                })
            }
            Err(e) => Err(e),
        }
    }

    /// The current leader, if any.
    pub fn leader(&self, kv: &mut KvStore, now: SimTime) -> Option<String> {
        kv.get(now, &self.key).map(|v| v.value)
    }

    /// Voluntarily steps down (revokes the leadership lease).
    pub fn resign(&self, kv: &mut KvStore, now: SimTime, lease: LeaseId) -> Result<(), KvError> {
        kv.revoke(now, lease)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn election() -> Election {
        Election::new("gemini/root", SimDuration::from_secs(10))
    }

    #[test]
    fn first_campaigner_wins() {
        let mut kv = KvStore::new();
        let e = election();
        let r = e.campaign(&mut kv, t(0), "machine-0", None).unwrap();
        assert!(matches!(r, Campaign::Leader(_)));
        assert_eq!(e.leader(&mut kv, t(0)), Some("machine-0".into()));
    }

    #[test]
    fn second_campaigner_follows() {
        let mut kv = KvStore::new();
        let e = election();
        e.campaign(&mut kv, t(0), "machine-0", None).unwrap();
        let r = e.campaign(&mut kv, t(1), "machine-1", None).unwrap();
        assert_eq!(
            r,
            Campaign::Follower {
                leader: "machine-0".into()
            }
        );
    }

    #[test]
    fn leadership_passes_after_lease_expiry() {
        let mut kv = KvStore::new();
        let e = election();
        e.campaign(&mut kv, t(0), "machine-0", None).unwrap();
        // machine-0 dies: no keep-alives. TTL is 10 s.
        assert_eq!(e.leader(&mut kv, t(9)), Some("machine-0".into()));
        assert_eq!(e.leader(&mut kv, t(10)), None);
        let r = e.campaign(&mut kv, t(11), "machine-3", None).unwrap();
        assert!(matches!(r, Campaign::Leader(_)));
        assert_eq!(e.leader(&mut kv, t(11)), Some("machine-3".into()));
    }

    #[test]
    fn leader_renews_by_recampaigning() {
        let mut kv = KvStore::new();
        let e = election();
        let Campaign::Leader(lease) = e.campaign(&mut kv, t(0), "m0", None).unwrap() else {
            panic!("should lead");
        };
        for s in (5..60).step_by(5) {
            let r = e.campaign(&mut kv, t(s), "m0", Some(lease)).unwrap();
            assert_eq!(r, Campaign::Leader(lease));
        }
        assert_eq!(e.leader(&mut kv, t(60)), Some("m0".into()));
    }

    #[test]
    fn resign_hands_over_immediately() {
        let mut kv = KvStore::new();
        let e = election();
        let Campaign::Leader(lease) = e.campaign(&mut kv, t(0), "m0", None).unwrap() else {
            panic!("should lead");
        };
        e.resign(&mut kv, t(1), lease).unwrap();
        assert_eq!(e.leader(&mut kv, t(1)), None);
        let r = e.campaign(&mut kv, t(1), "m1", None).unwrap();
        assert!(matches!(r, Campaign::Leader(_)));
    }

    #[test]
    fn losing_campaigns_do_not_leak_leases() {
        // Under repeated contested campaigns the live-lease count must stay
        // bounded by the number of lease holders, not grow per round. (The
        // agent-level regression — a live lease dropped on follow — is
        // covered in `gemini_core::agents`; here we pin the store-level
        // invariant.)
        let mut kv = KvStore::new();
        let e = election();
        let Campaign::Leader(leader_lease) = e.campaign(&mut kv, t(0), "m0", None).unwrap() else {
            panic!("m0 should lead");
        };
        let challengers = ["m1", "m2", "m3", "m4", "m5"];
        for s in 0..100u64 {
            // Leader renews; everyone else campaigns (without retaining a
            // lease across rounds, like a fresh candidate each time) and
            // loses.
            let r = e.campaign(&mut kv, t(s), "m0", Some(leader_lease)).unwrap();
            assert_eq!(r, Campaign::Leader(leader_lease));
            for c in challengers {
                let r = e.campaign(&mut kv, t(s), c, None).unwrap();
                assert!(matches!(r, Campaign::Follower { .. }));
            }
            // Only the leader's lease may be live. Pre-fix this grows by
            // |challengers| per round until TTL catches up (≈ ttl *
            // |challengers| in steady state = 50 here).
            assert_eq!(
                kv.live_leases(t(s)),
                1,
                "leaked leases at t={s}: {}",
                kv.live_leases(t(s))
            );
        }
    }

    #[test]
    fn losing_campaign_retains_existing_live_lease() {
        // A candidate that brings its own still-live lease to a losing
        // campaign keeps it (it may be attached to other keys, e.g. the
        // worker's health key) — only *freshly granted* leases are revoked.
        let mut kv = KvStore::new();
        let e = election();
        e.campaign(&mut kv, t(0), "m0", None).unwrap();
        let own = kv.grant_lease(t(0), SimDuration::from_secs(30));
        kv.put(t(0), "gemini/health/1", "1:0:0", Some(own)).unwrap();
        let r = e.campaign(&mut kv, t(1), "m1", Some(own)).unwrap();
        assert!(matches!(r, Campaign::Follower { .. }));
        assert!(kv.lease_alive(t(1), own), "existing lease must survive");
        assert!(kv.get(t(1), "gemini/health/1").is_some());
    }

    #[test]
    fn at_most_one_leader_at_any_instant() {
        // Safety check under interleaved campaigns and failures.
        let mut kv = KvStore::new();
        let e = election();
        let candidates = ["m0", "m1", "m2", "m3"];
        let mut leaders_at: Vec<(u64, String)> = Vec::new();
        for s in 0..100u64 {
            // Every candidate campaigns every second, except the current
            // leader "fails" (stops campaigning) every 20 s.
            for c in candidates {
                let blackout = (s / 20) % candidates.len() as u64;
                if c == candidates[blackout as usize] {
                    continue;
                }
                let _ = e.campaign(&mut kv, t(s), c, None);
            }
            let mut count = 0;
            for _c in candidates {
                if let Some(l) = e.leader(&mut kv, t(s)) {
                    assert!(candidates.contains(&l.as_str()));
                    count = 1;
                    leaders_at.push((s, l));
                    break;
                }
            }
            assert!(count <= 1);
        }
        // Leadership did change hands at least once across blackouts.
        let distinct: std::collections::HashSet<&str> =
            leaders_at.iter().map(|(_, l)| l.as_str()).collect();
        assert!(distinct.len() > 1, "leaders: {distinct:?}");
    }
}
