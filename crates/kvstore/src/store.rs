//! The revisioned key-value store.
//!
//! Semantics follow etcd: every mutation bumps a global revision; keys may
//! be attached to leases; leases expire lazily as simulated time advances
//! (every public operation takes `now` and first retires anything overdue);
//! watchers receive every change to their prefix in revision order.

use crate::lease::{Lease, LeaseId};
use crate::watch::{EventKind, WatchEvent, Watcher};
use gemini_sim::{SimDuration, SimTime};
use gemini_telemetry::{TelemetryEvent, TelemetrySink};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// A store revision (monotonically increasing with every mutation).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Revision(pub u64);

/// A stored value with its version metadata.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct VersionedValue {
    /// The value.
    pub value: String,
    /// Revision at which the key was created.
    pub create_revision: Revision,
    /// Revision of the last modification.
    pub mod_revision: Revision,
    /// The lease the key is attached to, if any.
    pub lease: Option<LeaseId>,
}

/// Errors from store operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KvError {
    /// The key does not exist.
    KeyNotFound(String),
    /// The lease does not exist (or already expired).
    LeaseNotFound(LeaseId),
    /// A compare-and-swap found a different current value.
    CasFailed {
        /// The key the CAS targeted.
        key: String,
        /// The value actually present (`None` if the key was absent).
        actual: Option<String>,
    },
    /// The watcher id is unknown.
    WatcherNotFound(usize),
}

impl core::fmt::Display for KvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            KvError::KeyNotFound(k) => write!(f, "key not found: {k}"),
            KvError::LeaseNotFound(id) => write!(f, "lease not found: {id}"),
            KvError::CasFailed { key, actual } => {
                write!(f, "compare-and-swap failed on {key} (actual: {actual:?})")
            }
            KvError::WatcherNotFound(id) => write!(f, "watcher not found: {id}"),
        }
    }
}

impl std::error::Error for KvError {}

/// Handle to a registered watcher.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WatcherId(usize);

/// The store.
///
/// # Examples
///
/// ```
/// use gemini_kvstore::KvStore;
/// use gemini_sim::{SimDuration, SimTime};
///
/// let mut kv = KvStore::new();
/// let lease = kv.grant_lease(SimTime::ZERO, SimDuration::from_secs(15));
/// kv.put(SimTime::ZERO, "gemini/health/3", "healthy", Some(lease))?;
///
/// // Without keep-alives the key lapses after the TTL — the failure
/// // detection signal GEMINI's root agent watches for.
/// assert!(kv.get(SimTime::from_secs(14), "gemini/health/3").is_some());
/// assert!(kv.get(SimTime::from_secs(15), "gemini/health/3").is_none());
/// # Ok::<(), gemini_kvstore::KvError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct KvStore {
    map: BTreeMap<String, VersionedValue>,
    revision: u64,
    leases: HashMap<u64, Lease>,
    next_lease: u64,
    watchers: Vec<Watcher>,
    telemetry: TelemetrySink,
    /// Lower bound on the earliest lease deadline: while `now` stays below
    /// it, no lease can be expired and [`KvStore::tick`] returns without
    /// scanning. Keep-alives only push deadlines later (the bound stays
    /// valid, merely conservative); grants lower it; sweeps recompute it
    /// exactly. `SimTime` defaults to zero, so a fresh store sweeps (and
    /// tightens the bound) on its first operation.
    next_expiry: SimTime,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        KvStore::default()
    }

    /// Attaches a telemetry sink; lease expiries and election outcomes are
    /// reported through it. A disabled sink (the default) costs nothing.
    pub fn with_telemetry(mut self, sink: TelemetrySink) -> Self {
        self.telemetry = sink;
        self
    }

    /// The store's telemetry sink (cheap to clone).
    pub fn telemetry(&self) -> &TelemetrySink {
        &self.telemetry
    }

    /// The current revision.
    pub fn revision(&self) -> Revision {
        Revision(self.revision)
    }

    fn bump(&mut self) -> Revision {
        self.revision += 1;
        Revision(self.revision)
    }

    fn notify(&mut self, ev: WatchEvent) {
        for w in &mut self.watchers {
            if ev.key.starts_with(&w.prefix) {
                w.pending.push(ev.clone());
            }
        }
    }

    /// Retires every lease overdue at `now`, deleting attached keys.
    /// Called implicitly by all time-taking operations; public so agents
    /// can force expiry processing on their heartbeat.
    pub fn tick(&mut self, now: SimTime) {
        // Fast path: nothing can have expired yet. Without this, every
        // store operation scans the full lease table — O(leases) per
        // heartbeat, which is what made 10k-machine fleet runs quadratic.
        if now < self.next_expiry {
            return;
        }
        let mut expired: Vec<u64> = self
            .leases
            .iter()
            .filter(|(_, l)| l.is_expired(now))
            .map(|(id, _)| *id)
            .collect();
        // Retire in id order so watcher deliveries, revisions and telemetry
        // are independent of `HashMap` iteration order.
        expired.sort_unstable();
        for id in expired {
            if let Some(lease) = self.leases.remove(&id) {
                self.telemetry.counter_add("kv.leases_expired", 1);
                if lease.keys.is_empty() {
                    self.telemetry
                        .event(now, || TelemetryEvent::LeaseExpired { key: String::new() });
                }
                for key in lease.keys {
                    if let Some(old) = self.map.remove(&key) {
                        let revision = self.bump();
                        self.telemetry
                            .event(now, || TelemetryEvent::LeaseExpired { key: key.clone() });
                        self.notify(WatchEvent {
                            revision,
                            key,
                            kind: EventKind::Expired,
                            value: old.value,
                        });
                    }
                }
            }
        }
        self.next_expiry = self
            .leases
            .values()
            .map(|l| l.deadline)
            .min()
            .unwrap_or(SimTime::MAX);
    }

    /// Grants a lease with the given TTL.
    pub fn grant_lease(&mut self, now: SimTime, ttl: SimDuration) -> LeaseId {
        self.tick(now);
        let id = LeaseId(self.next_lease);
        self.next_lease += 1;
        let lease = Lease::granted(id, now, ttl);
        self.next_expiry = self.next_expiry.min(lease.deadline);
        self.leases.insert(id.0, lease);
        self.telemetry.counter_add("kv.leases_granted", 1);
        id
    }

    /// Refreshes a lease; errors if it already expired.
    pub fn keep_alive(&mut self, now: SimTime, id: LeaseId) -> Result<(), KvError> {
        self.tick(now);
        self.leases
            .get_mut(&id.0)
            .map(|l| l.keep_alive(now))
            .ok_or(KvError::LeaseNotFound(id))
    }

    /// Revokes a lease, deleting all attached keys.
    pub fn revoke(&mut self, now: SimTime, id: LeaseId) -> Result<(), KvError> {
        self.tick(now);
        let lease = self
            .leases
            .remove(&id.0)
            .ok_or(KvError::LeaseNotFound(id))?;
        // If the revoked lease carried the watermark, recompute it exactly;
        // leaving it stale-low is safe (a lower bound stays a lower bound)
        // but buys one pointless full sweep at the next tick.
        if lease.deadline <= self.next_expiry {
            self.next_expiry = self
                .leases
                .values()
                .map(|l| l.deadline)
                .min()
                .unwrap_or(SimTime::MAX);
        }
        for key in lease.keys {
            if let Some(old) = self.map.remove(&key) {
                let revision = self.bump();
                self.notify(WatchEvent {
                    revision,
                    key,
                    kind: EventKind::Delete,
                    value: old.value,
                });
            }
        }
        Ok(())
    }

    /// Whether a lease is currently live.
    pub fn lease_alive(&mut self, now: SimTime, id: LeaseId) -> bool {
        self.tick(now);
        self.leases.contains_key(&id.0)
    }

    /// Puts `value` at `key`, optionally attached to a lease.
    pub fn put(
        &mut self,
        now: SimTime,
        key: &str,
        value: &str,
        lease: Option<LeaseId>,
    ) -> Result<Revision, KvError> {
        self.tick(now);
        if let Some(id) = lease {
            let l = self
                .leases
                .get_mut(&id.0)
                .ok_or(KvError::LeaseNotFound(id))?;
            l.attach(key);
        }
        let revision = self.bump();
        match self.map.get_mut(key) {
            Some(existing) => {
                // Re-putting under a different (or no) lease detaches the
                // key from its previous lease, matching etcd semantics —
                // otherwise the old lease's expiry would delete the new
                // value.
                if existing.lease != lease {
                    if let Some(old) = existing.lease {
                        if let Some(l) = self.leases.get_mut(&old.0) {
                            l.detach(key);
                        }
                    }
                }
                existing.value = value.to_string();
                existing.mod_revision = revision;
                existing.lease = lease;
            }
            None => {
                self.map.insert(
                    key.to_string(),
                    VersionedValue {
                        value: value.to_string(),
                        create_revision: revision,
                        mod_revision: revision,
                        lease,
                    },
                );
            }
        }
        self.notify(WatchEvent {
            revision,
            key: key.to_string(),
            kind: EventKind::Put,
            value: value.to_string(),
        });
        Ok(revision)
    }

    /// Reads a key.
    pub fn get(&mut self, now: SimTime, key: &str) -> Option<VersionedValue> {
        self.tick(now);
        self.map.get(key).cloned()
    }

    /// All key/value pairs under a prefix, in key order.
    pub fn range(&mut self, now: SimTime, prefix: &str) -> Vec<(String, VersionedValue)> {
        self.tick(now);
        self.map
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Visits every key/value pair under a prefix in key order without
    /// cloning. [`KvStore::range`] materializes owned pairs, which is fine
    /// for election keys but allocates tens of thousands of strings per
    /// health scan at fleet scale — hot readers (the root agent's
    /// once-a-second sweep over `health/`) use this instead.
    pub fn for_each_in_range(
        &mut self,
        now: SimTime,
        prefix: &str,
        mut f: impl FnMut(&str, &VersionedValue),
    ) {
        self.tick(now);
        for (k, v) in self
            .map
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
        {
            f(k, v);
        }
    }

    /// Deletes a key.
    pub fn delete(&mut self, now: SimTime, key: &str) -> Result<Revision, KvError> {
        self.tick(now);
        let old = self
            .map
            .remove(key)
            .ok_or_else(|| KvError::KeyNotFound(key.to_string()))?;
        if let Some(id) = old.lease {
            if let Some(l) = self.leases.get_mut(&id.0) {
                l.detach(key);
            }
        }
        let revision = self.bump();
        self.notify(WatchEvent {
            revision,
            key: key.to_string(),
            kind: EventKind::Delete,
            value: old.value,
        });
        Ok(revision)
    }

    /// Atomically sets `key` to `new` if its current value equals `expect`
    /// (`None` means "key must be absent").
    pub fn compare_and_swap(
        &mut self,
        now: SimTime,
        key: &str,
        expect: Option<&str>,
        new: &str,
        lease: Option<LeaseId>,
    ) -> Result<Revision, KvError> {
        self.tick(now);
        let actual = self.map.get(key).map(|v| v.value.clone());
        if actual.as_deref() != expect {
            return Err(KvError::CasFailed {
                key: key.to_string(),
                actual,
            });
        }
        self.put(now, key, new, lease)
    }

    /// Registers a watch over `prefix`.
    pub fn watch(&mut self, prefix: &str) -> WatcherId {
        self.watchers.push(Watcher {
            prefix: prefix.to_string(),
            pending: Vec::new(),
        });
        WatcherId(self.watchers.len() - 1)
    }

    /// Drains pending events for a watcher.
    pub fn poll_watch(&mut self, now: SimTime, id: WatcherId) -> Result<Vec<WatchEvent>, KvError> {
        self.tick(now);
        self.watchers
            .get_mut(id.0)
            .map(Watcher::drain)
            .ok_or(KvError::WatcherNotFound(id.0))
    }

    /// Number of live (unexpired) leases at `now`.
    ///
    /// Useful for leak detection: a correct agent population keeps this
    /// bounded by the number of live participants, so tests can assert a
    /// ceiling under repeated contested elections.
    pub fn live_leases(&mut self, now: SimTime) -> usize {
        self.tick(now);
        self.leases.len()
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn put_get_roundtrip_bumps_revision() {
        let mut kv = KvStore::new();
        let r1 = kv.put(t(0), "a", "1", None).unwrap();
        let r2 = kv.put(t(0), "a", "2", None).unwrap();
        assert!(r2 > r1);
        let v = kv.get(t(0), "a").unwrap();
        assert_eq!(v.value, "2");
        assert_eq!(v.mod_revision, r2);
        assert_eq!(v.create_revision, r1);
    }

    #[test]
    fn delete_removes_and_errors_when_absent() {
        let mut kv = KvStore::new();
        kv.put(t(0), "a", "1", None).unwrap();
        kv.delete(t(0), "a").unwrap();
        assert!(kv.get(t(0), "a").is_none());
        assert!(matches!(kv.delete(t(0), "a"), Err(KvError::KeyNotFound(_))));
    }

    #[test]
    fn range_returns_prefix_in_order() {
        let mut kv = KvStore::new();
        kv.put(t(0), "health/2", "ok", None).unwrap();
        kv.put(t(0), "health/0", "ok", None).unwrap();
        kv.put(t(0), "other/x", "no", None).unwrap();
        kv.put(t(0), "health/1", "bad", None).unwrap();
        let keys: Vec<String> = kv
            .range(t(0), "health/")
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec!["health/0", "health/1", "health/2"]);
    }

    #[test]
    fn lease_expiry_deletes_attached_keys() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(10));
        kv.put(t(0), "health/0", "ok", Some(lease)).unwrap();
        assert!(kv.get(t(5), "health/0").is_some());
        // No keep-alive: the key vanishes at t=10.
        assert!(kv.get(t(10), "health/0").is_none());
        assert!(!kv.lease_alive(t(10), lease));
    }

    #[test]
    fn keep_alive_preserves_keys() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(10));
        kv.put(t(0), "health/0", "ok", Some(lease)).unwrap();
        for s in (5..50).step_by(5) {
            kv.keep_alive(t(s), lease).unwrap();
        }
        assert!(kv.get(t(50), "health/0").is_some());
    }

    #[test]
    fn keep_alive_after_expiry_errors() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(5));
        assert_eq!(
            kv.keep_alive(t(6), lease),
            Err(KvError::LeaseNotFound(lease))
        );
    }

    #[test]
    fn revoke_deletes_keys_immediately() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(100));
        kv.put(t(0), "a", "1", Some(lease)).unwrap();
        kv.put(t(0), "b", "2", Some(lease)).unwrap();
        kv.revoke(t(1), lease).unwrap();
        assert!(kv.is_empty());
    }

    #[test]
    fn cas_succeeds_on_match_and_fails_otherwise() {
        let mut kv = KvStore::new();
        // Create-if-absent.
        kv.compare_and_swap(t(0), "leader", None, "m0", None)
            .unwrap();
        // Second create-if-absent loses.
        let err = kv
            .compare_and_swap(t(0), "leader", None, "m1", None)
            .unwrap_err();
        assert_eq!(
            err,
            KvError::CasFailed {
                key: "leader".into(),
                actual: Some("m0".into())
            }
        );
        // Swap with correct expectation wins.
        kv.compare_and_swap(t(0), "leader", Some("m0"), "m1", None)
            .unwrap();
        assert_eq!(kv.get(t(0), "leader").unwrap().value, "m1");
    }

    #[test]
    fn watch_sees_puts_deletes_and_expiry() {
        let mut kv = KvStore::new();
        let w = kv.watch("health/");
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(5));
        kv.put(t(0), "health/0", "ok", Some(lease)).unwrap();
        kv.put(t(0), "other/x", "ignored", None).unwrap();
        kv.put(t(1), "health/1", "ok", None).unwrap();
        kv.delete(t(2), "health/1").unwrap();
        // Lease expires at t=5; tick happens on the poll.
        let events = kv.poll_watch(t(6), w).unwrap();
        let kinds: Vec<EventKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Put,
                EventKind::Put,
                EventKind::Delete,
                EventKind::Expired
            ]
        );
        assert!(events.iter().all(|e| e.key.starts_with("health/")));
        // Revisions strictly increase.
        for pair in events.windows(2) {
            assert!(pair[0].revision < pair[1].revision);
        }
    }

    #[test]
    fn poll_watch_unknown_id_errors() {
        let mut kv = KvStore::new();
        let w = kv.watch("x");
        kv.poll_watch(t(0), w).unwrap();
        assert!(matches!(
            kv.poll_watch(t(0), WatcherId(99)),
            Err(KvError::WatcherNotFound(99))
        ));
    }

    #[test]
    fn delete_detaches_from_lease() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(5));
        kv.put(t(0), "a", "1", Some(lease)).unwrap();
        kv.delete(t(1), "a").unwrap();
        // Re-create without lease; expiry must not delete it.
        kv.put(t(2), "a", "2", None).unwrap();
        assert!(kv.get(t(10), "a").is_some());
    }

    #[test]
    fn put_with_dead_lease_errors() {
        let mut kv = KvStore::new();
        let lease = kv.grant_lease(t(0), SimDuration::from_secs(1));
        assert_eq!(
            kv.put(t(5), "a", "1", Some(lease)),
            Err(KvError::LeaseNotFound(lease))
        );
    }
}
