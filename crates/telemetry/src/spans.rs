//! Begin/end intervals on the simulation clock.
//!
//! A span is a named interval on a subsystem track. The tracker keeps open
//! spans in a small id-keyed map and moves them to the closed list when
//! ended; closed spans are what the Chrome trace exporter consumes.

use gemini_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A completed interval on the simulated clock.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SpanRecord {
    /// The subsystem track (Chrome trace thread) the span belongs to.
    pub track: &'static str,
    /// Human-readable span name.
    pub name: String,
    /// When the span opened.
    pub start: SimTime,
    /// When the span closed (`end >= start`).
    pub end: SimTime,
}

impl SpanRecord {
    /// The span's duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Which leg of a flow arrow a [`FlowRecord`] marks.
///
/// Chrome trace flow events chain `"s"` (start) → `"t"` (step) → `"f"`
/// (finish) records sharing an id into one arrow across tracks — exactly
/// how an incident's causal chain renders in `chrome://tracing`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FlowPhase {
    /// The arrow's origin (`"ph":"s"`).
    Start,
    /// An intermediate hop (`"ph":"t"`).
    Step,
    /// The arrow's terminus (`"ph":"f"`).
    End,
}

impl FlowPhase {
    /// The Chrome trace `ph` value.
    pub fn ph(&self) -> &'static str {
        match self {
            FlowPhase::Start => "s",
            FlowPhase::Step => "t",
            FlowPhase::End => "f",
        }
    }
}

/// One hop of a flow arrow: a named point on a track at a time, tied to
/// other hops by `id`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FlowRecord {
    /// The subsystem track (Chrome trace thread) the hop sits on.
    pub track: &'static str,
    /// Human-readable hop name (constant across a flow for clean arrows).
    pub name: String,
    /// The flow id shared by every hop of one arrow.
    pub id: u64,
    /// When the hop happened.
    pub at: SimTime,
    /// Which leg this hop is.
    pub phase: FlowPhase,
}

/// An open span awaiting its end time.
#[derive(Clone, Debug)]
struct OpenSpan {
    track: &'static str,
    name: String,
    start: SimTime,
}

/// Tracks open and closed spans; owned by the sink's inner state.
#[derive(Clone, Debug, Default)]
pub(crate) struct SpanTracker {
    open: BTreeMap<u64, OpenSpan>,
    closed: Vec<SpanRecord>,
    next_id: u64,
}

impl SpanTracker {
    /// Opens a span and returns its id.
    pub(crate) fn begin(&mut self, track: &'static str, name: String, start: SimTime) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.open.insert(id, OpenSpan { track, name, start });
        id
    }

    /// Closes the span with the given id at `end`. Unknown ids are ignored
    /// (a span may be closed at most once).
    pub(crate) fn end(&mut self, id: u64, end: SimTime) {
        if let Some(open) = self.open.remove(&id) {
            let end = if end.as_nanos() < open.start.as_nanos() {
                open.start
            } else {
                end
            };
            self.closed.push(SpanRecord {
                track: open.track,
                name: open.name,
                start: open.start,
                end,
            });
        }
    }

    /// Records an already-complete interval directly.
    pub(crate) fn complete(
        &mut self,
        track: &'static str,
        name: String,
        start: SimTime,
        end: SimTime,
    ) {
        let end = if end.as_nanos() < start.as_nanos() {
            start
        } else {
            end
        };
        self.closed.push(SpanRecord {
            track,
            name,
            start,
            end,
        });
    }

    /// All closed spans, in completion order.
    pub(crate) fn closed(&self) -> &[SpanRecord] {
        &self.closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gemini_sim::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn begin_end_produces_a_closed_span() {
        let mut tr = SpanTracker::default();
        let id = tr.begin("ckpt", "flush".to_string(), t(10));
        assert!(tr.closed().is_empty());
        tr.end(id, t(25));
        assert_eq!(tr.closed().len(), 1);
        let s = &tr.closed()[0];
        assert_eq!(s.track, "ckpt");
        assert_eq!(s.name, "flush");
        assert_eq!(s.duration(), gemini_sim::SimDuration::from_micros(15));
    }

    #[test]
    fn double_end_is_ignored() {
        let mut tr = SpanTracker::default();
        let id = tr.begin("net", "xfer".to_string(), t(0));
        tr.end(id, t(5));
        tr.end(id, t(9));
        assert_eq!(tr.closed().len(), 1);
    }

    #[test]
    fn end_before_start_clamps() {
        let mut tr = SpanTracker::default();
        let id = tr.begin("kv", "lease".to_string(), t(100));
        tr.end(id, t(50));
        assert_eq!(tr.closed()[0].start, tr.closed()[0].end);
    }

    #[test]
    fn complete_records_directly() {
        let mut tr = SpanTracker::default();
        tr.complete("recovery", "retrieval".to_string(), t(1), t(4));
        assert_eq!(tr.closed().len(), 1);
        assert_eq!(
            tr.closed()[0].duration(),
            gemini_sim::SimDuration::from_micros(3)
        );
    }
}
