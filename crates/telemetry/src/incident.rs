//! The incident flight recorder: a causal event alphabet for recovery
//! incidents plus a bounded ring buffer holding them.
//!
//! A chaos run (or any failure-recovery pipeline) narrates each recovery
//! as a chain of [`CausalEvent`]s sharing an incident id: fault injected →
//! confirmed by the detection streak → wave opened (possibly merged) →
//! serialization done → replacements ready → retrieval per tier → rollback
//! → training resumed — plus background events (policy decisions with
//! their full signal snapshot, persistent-upload charges) that carry no
//! incident id. The harness stitches these into `Incident` records,
//! computes the critical path over the causal DAG and attributes every
//! nanosecond of the wasted-time ledger to an (incident, phase,
//! machine-group, policy-epoch) key; this module only defines the shared
//! vocabulary and the sink-side [`FlightRecorder`] ring buffer so the
//! types stay usable from every layer (core emits, harness stitches,
//! bench renders).
//!
//! Everything here is plain data with deterministic rendering
//! ([`CausalEvent::render_line`]): two runs of the same seeded simulation
//! produce byte-identical traces, with the sink enabled or not.

use crate::event::{FailureClass, Tier};
use gemini_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default capacity of a sink's [`FlightRecorder`] ring buffer.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4_096;

/// A recovery phase, the unit of critical-path analysis and wasted-time
/// attribution. The first five partition an incident's detect→resume
/// window; [`Phase::Rework`] and [`Phase::Overhead`] account the ledger's
/// other two categories (re-training rolled-back iterations, and
/// training-visible checkpoint/persist interference).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum Phase {
    /// Fault injected → confirmed by the detection streak.
    Detect,
    /// Alive ranks serializing their checkpoint replicas.
    Serialize,
    /// Waiting on cloud-operator machine replacements (the part that
    /// outlasted serialization).
    Replace,
    /// Checkpoint retrieval from the assigned tiers.
    Retrieve,
    /// Restart warm-up before training resumes.
    Warmup,
    /// Re-training the rolled-back iterations.
    Rework,
    /// Checkpoint/persist overhead visible to training.
    Overhead,
}

impl Phase {
    /// Stable label for metric labels, attribution keys and rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::Detect => "detect",
            Phase::Serialize => "serialize",
            Phase::Replace => "replace",
            Phase::Retrieve => "retrieve",
            Phase::Warmup => "warmup",
            Phase::Rework => "rework",
            Phase::Overhead => "overhead",
        }
    }

    /// Every phase, in pipeline order.
    pub fn all() -> [Phase; 7] {
        [
            Phase::Detect,
            Phase::Serialize,
            Phase::Replace,
            Phase::Retrieve,
            Phase::Warmup,
            Phase::Rework,
            Phase::Overhead,
        ]
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A frozen copy of the policy engine's input signals, attached to every
/// [`CausalKind::PolicyDecision`] so a postmortem can answer *why* the
/// knobs moved (telemetry-local mirror of `gemini_core::PolicySignals`;
/// lower layers must not depend on the core crate).
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct PolicySignalsSnapshot {
    /// Last committed in-memory checkpoint iteration.
    pub committed: u64,
    /// Current training iteration time.
    pub iteration_time: SimDuration,
    /// Visible per-checkpoint overhead.
    pub ckpt_overhead: SimDuration,
    /// Estimated remote-CPU retrieval time (degradation included).
    pub retrieval_remote: SimDuration,
    /// Estimated persistent-tier retrieval time.
    pub retrieval_persistent: SimDuration,
    /// Persistent upload duration.
    pub persist_upload: SimDuration,
    /// Iteration of the durable persistent anchor, if any.
    pub persist_anchor: Option<u64>,
    /// Machines currently healthy.
    pub healthy_machines: u64,
    /// Cluster size.
    pub machines: u64,
}

/// What happened at one point of an incident's causal chain.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum CausalKind {
    /// A fault was injected against `rank`.
    FaultInjected {
        /// The victim rank.
        rank: usize,
        /// Hardware or software.
        class: FailureClass,
    },
    /// The detection streak confirmed `rank` as failed.
    Confirmed {
        /// The confirmed rank.
        rank: usize,
        /// Injection → confirmation.
        latency: SimDuration,
    },
    /// A recovery wave opened over the confirmed ranks.
    WaveOpened {
        /// The ranks the wave handles.
        ranks: Vec<usize>,
        /// Machine-group label (`"g<N>"` when every rank shares one
        /// placement group, `"multi"` otherwise).
        group: String,
        /// The policy epoch (applied-decision count) at detection.
        policy_epoch: u64,
    },
    /// Late confirmations merged into the still-serializing wave.
    WaveMerged {
        /// The merged ranks.
        ranks: Vec<usize>,
        /// Machine-group label of the merged batch.
        group: String,
    },
    /// Checkpoint serialization finished (the last restart, post-merge).
    SerializeDone,
    /// A replacement machine joined for `rank`.
    ReplacementReady {
        /// The replaced rank.
        rank: usize,
    },
    /// Retrieval started per the recovery plan.
    RetrievalStarted {
        /// `Debug` form of the recovery case.
        case: String,
        /// The iteration all ranks roll back to.
        rollback_to: u64,
        /// Sources reading from local CPU memory.
        local: usize,
        /// Sources reading from a peer's CPU memory.
        remote: usize,
        /// Sources reading from persistent storage.
        persistent: usize,
    },
    /// One recovering rank was assigned its retrieval tier.
    TierRead {
        /// The recovering rank.
        rank: usize,
        /// The tier it reads from.
        tier: Tier,
    },
    /// Retrieval finished.
    RetrievalDone,
    /// Training rolled back, wiping progress past the checkpoint.
    RolledBack {
        /// Iteration reached before the failure.
        from: u64,
        /// Iteration rolled back to.
        to: u64,
        /// Exact re-training cost charged to the wasted-time ledger.
        rework: SimDuration,
    },
    /// Training resumed; the incident is closed.
    Resumed {
        /// The iteration training restarts from.
        iteration: u64,
    },
    /// The policy engine applied a knob change (background event).
    PolicyDecision {
        /// The policy epoch this decision opened (1-based).
        epoch: u64,
        /// Why the knobs moved (stable, human-readable).
        reason: String,
        /// The full signal snapshot the engine evaluated.
        signals: PolicySignalsSnapshot,
    },
    /// A persistent upload charged its visible fraction to the ledger
    /// (background event).
    PersistCharged {
        /// Exact overhead charged, as recorded in the ledger.
        amount: SimDuration,
        /// The policy epoch active at the charge.
        epoch: u64,
    },
}

impl CausalKind {
    /// A stable dotted name (the flight-recorder analogue of
    /// [`crate::TelemetryEvent::name`]).
    pub fn name(&self) -> &'static str {
        use CausalKind as K;
        match self {
            K::FaultInjected { .. } => "incident.fault_injected",
            K::Confirmed { .. } => "incident.confirmed",
            K::WaveOpened { .. } => "incident.wave_opened",
            K::WaveMerged { .. } => "incident.wave_merged",
            K::SerializeDone => "incident.serialize_done",
            K::ReplacementReady { .. } => "incident.replacement_ready",
            K::RetrievalStarted { .. } => "incident.retrieval_started",
            K::TierRead { .. } => "incident.tier_read",
            K::RetrievalDone => "incident.retrieval_done",
            K::RolledBack { .. } => "incident.rolled_back",
            K::Resumed { .. } => "incident.resumed",
            K::PolicyDecision { .. } => "incident.policy_decision",
            K::PersistCharged { .. } => "incident.persist_charged",
        }
    }
}

/// One causal event: an incident id (or `None` for background events),
/// a timestamp and what happened.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct CausalEvent {
    /// The incident this event belongs to. `None` for background events
    /// (policy decisions, persist charges) and for faults whose wave has
    /// not opened yet (the recorder patches the id at wave open).
    pub incident: Option<u64>,
    /// When it happened.
    pub at: SimTime,
    /// What happened.
    pub kind: CausalKind,
}

impl CausalEvent {
    /// One deterministic plain-text line, used by report rendering so the
    /// byte-identity invariants cover the whole trace.
    pub fn render_line(&self) -> String {
        let id = match self.incident {
            Some(i) => i.to_string(),
            None => "-".to_string(),
        };
        let secs = self.at.as_secs_f64();
        use CausalKind as K;
        let what = match &self.kind {
            K::FaultInjected { rank, class } => format!("fault_injected rank={rank} class={class}"),
            K::Confirmed { rank, latency } => {
                format!("confirmed rank={rank} latency={:.3}s", latency.as_secs_f64())
            }
            K::WaveOpened {
                ranks,
                group,
                policy_epoch,
            } => format!(
                "wave_opened ranks={ranks:?} group={group} epoch={policy_epoch}"
            ),
            K::WaveMerged { ranks, group } => {
                format!("wave_merged ranks={ranks:?} group={group}")
            }
            K::SerializeDone => "serialize_done".to_string(),
            K::ReplacementReady { rank } => format!("replacement_ready rank={rank}"),
            K::RetrievalStarted {
                case,
                rollback_to,
                local,
                remote,
                persistent,
            } => format!(
                "retrieval_started case={case} rollback_to={rollback_to} \
                 tiers=local:{local},remote:{remote},persistent:{persistent}"
            ),
            K::TierRead { rank, tier } => format!("tier_read rank={rank} tier={tier}"),
            K::RetrievalDone => "retrieval_done".to_string(),
            K::RolledBack { from, to, rework } => format!(
                "rolled_back from={from} to={to} rework={:.3}s",
                rework.as_secs_f64()
            ),
            K::Resumed { iteration } => format!("resumed iteration={iteration}"),
            K::PolicyDecision {
                epoch,
                reason,
                signals,
            } => format!(
                "policy_decision epoch={epoch} reason=\"{reason}\" \
                 committed={} healthy={}/{}",
                signals.committed, signals.healthy_machines, signals.machines
            ),
            K::PersistCharged { amount, epoch } => format!(
                "persist_charged amount={:.3}s epoch={epoch}",
                amount.as_secs_f64()
            ),
        };
        format!("trace t={secs:.3}s incident={id} {what}")
    }
}

/// A bounded ring buffer of [`CausalEvent`]s: the sink-side flight
/// recorder. When full it drops the *oldest* events (and counts them), so
/// a long-running instrumented process keeps the most recent incidents
/// without unbounded growth. Iteration yields events oldest-first.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightRecorder {
    buf: Vec<CausalEvent>,
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_FLIGHT_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            capacity: capacity.max(1),
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: CausalEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<CausalEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// How many events are currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u64) -> CausalEvent {
        CausalEvent {
            incident: Some(i),
            at: SimTime::from_secs(i),
            kind: CausalKind::RetrievalDone,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut r = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().iter().map(|e| e.incident.unwrap()).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn ring_below_capacity_keeps_order() {
        let mut r = FlightRecorder::with_capacity(10);
        for i in 0..4 {
            r.push(ev(i));
        }
        assert_eq!(r.dropped(), 0);
        let kept: Vec<u64> = r.events().iter().map(|e| e.incident.unwrap()).collect();
        assert_eq!(kept, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity_zero_clamps_to_one_instead_of_dividing_by_zero() {
        // Audit note (long-running-process sweep): `with_capacity(0)` is
        // clamped to 1, so the ring's `% capacity` in push() can never
        // divide by zero. The recorder degrades to keep-latest-only.
        let mut r = FlightRecorder::with_capacity(0);
        assert_eq!(r.capacity(), 1);
        for i in 0..100 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 99);
        assert_eq!(r.events()[0].incident, Some(99));
    }

    #[test]
    fn capacity_one_always_holds_the_newest_event() {
        let mut r = FlightRecorder::with_capacity(1);
        assert!(r.is_empty());
        r.push(ev(0));
        assert_eq!(r.dropped(), 0);
        for i in 1..5 {
            r.push(ev(i));
            assert_eq!(r.len(), 1);
            assert_eq!(r.events()[0].incident, Some(i));
        }
        assert_eq!(r.dropped(), 4);
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(Phase::Detect.label(), "detect");
        assert_eq!(Phase::Overhead.label(), "overhead");
        assert_eq!(Phase::all().len(), 7);
    }

    #[test]
    fn render_line_is_deterministic() {
        let e = CausalEvent {
            incident: Some(0),
            at: SimTime::from_secs(522),
            kind: CausalKind::Confirmed {
                rank: 5,
                latency: SimDuration::from_secs(22),
            },
        };
        assert_eq!(
            e.render_line(),
            "trace t=522.000s incident=0 confirmed rank=5 latency=22.000s"
        );
        let bg = CausalEvent {
            incident: None,
            at: SimTime::from_secs(1),
            kind: CausalKind::PersistCharged {
                amount: SimDuration::from_secs(120),
                epoch: 2,
            },
        };
        assert!(bg.render_line().starts_with("trace t=1.000s incident=- persist_charged"));
    }
}
