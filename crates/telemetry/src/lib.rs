//! Observability for the GEMINI reproduction: typed events, simulated-time
//! metrics and trace-viewer export.
//!
//! The simulation stack used to explain itself through free-form trace
//! strings ([`gemini_sim::TraceLog`]). This crate replaces that with three
//! structured pillars behind one cheap handle, [`TelemetrySink`]:
//!
//! * **Typed events** — [`TelemetryEvent`] is a closed enum of everything
//!   noteworthy that happens across the stack (checkpoint chunks leaving
//!   the NIC, heartbeats lapsing, leaders being elected, recovery tiers
//!   being hit, policy knobs moving, …), each carrying a
//!   [`gemini_sim::SimTime`] and typed fields. Tests query events
//!   structurally instead of grepping strings.
//! * **Metrics** — [`MetricsRegistry`] holds counters, gauges and
//!   fixed-bucket histograms keyed by `&'static str` names (plus optional
//!   static labels), driven entirely by simulated time. Snapshots export
//!   as JSON and as Prometheus text exposition.
//! * **Spans** — begin/end pairs on the simulation clock, exported as
//!   Chrome trace-event JSON that loads directly into Perfetto /
//!   `chrome://tracing`, with one track per subsystem.
//!
//! # Zero cost when disabled
//!
//! [`TelemetrySink::disabled`] carries no allocation at all (`Option` is
//! `None`); every recording method takes its payload through a closure
//! that is **never evaluated** on a disabled sink, mirroring `TraceLog`'s
//! contract. Instrumented hot paths therefore cost one branch when
//! telemetry is off.
//!
//! # Determinism
//!
//! All storage iterates in `BTreeMap` order and all exporters format
//! integers (or `f64` via Rust's shortest-roundtrip `Display`), so two
//! runs of the same seeded simulation produce byte-identical exports —
//! guarded by `tests/integration_determinism.rs` at the workspace root.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod export;
pub mod incident;
pub mod metrics;
pub mod probe;
pub mod sink;
pub mod spans;

pub use event::{FailureClass, TelemetryEvent, Tier, TimedEvent};
pub use incident::{
    CausalEvent, CausalKind, FlightRecorder, Phase, PolicySignalsSnapshot,
    DEFAULT_FLIGHT_CAPACITY,
};
pub use metrics::{
    intern_label, FixedHistogram, Key, MetricsRegistry, DEFAULT_TIME_BOUNDS_US,
};
pub use probe::EngineTelemetryProbe;
pub use sink::{SpanHandle, TelemetrySink};
pub use spans::{FlowPhase, FlowRecord, SpanRecord};
