//! The metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Keys are `&'static str` names with an optional single static label, so
//! recording never allocates. Everything is stored in `BTreeMap`s and all
//! exporters iterate in key order, making exports byte-deterministic for
//! deterministic simulations.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::Mutex;

/// Default histogram bucket upper bounds, in microseconds: decades from
/// 10 µs to 1000 s. Everything above the last bound lands in `+Inf`.
pub const DEFAULT_TIME_BOUNDS_US: &[u64] = &[
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// A metric identity: a dotted family name and at most two static labels.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Key {
    /// Dotted family name, e.g. `"recovery.retrieval_us"`.
    pub name: &'static str,
    /// Optional `(label_key, label_value)` pair, e.g. `("tier", "local_cpu")`.
    pub label: Option<(&'static str, &'static str)>,
    /// Optional second label pair, e.g. `("cell", "kill_mid_checkpoint:1")`.
    /// Dynamic values (plan/seed cells) come from [`intern_label`].
    pub label2: Option<(&'static str, &'static str)>,
}

impl Key {
    /// A label-free key.
    pub fn plain(name: &'static str) -> Key {
        Key {
            name,
            label: None,
            label2: None,
        }
    }

    /// A key with one label.
    pub fn labeled(name: &'static str, key: &'static str, value: &'static str) -> Key {
        Key {
            name,
            label: Some((key, value)),
            label2: None,
        }
    }

    /// A key with two labels.
    pub fn labeled2(
        name: &'static str,
        key1: &'static str,
        value1: &'static str,
        key2: &'static str,
        value2: &'static str,
    ) -> Key {
        Key {
            name,
            label: Some((key1, value1)),
            label2: Some((key2, value2)),
        }
    }

    /// All label pairs present, in declaration order.
    pub fn label_pairs(&self) -> Vec<(&'static str, &'static str)> {
        self.label.into_iter().chain(self.label2).collect()
    }

    /// Human-readable form: `name`, `name{key="value"}` or
    /// `name{k1="v1",k2="v2"}`.
    pub fn display(&self) -> String {
        let pairs = self.label_pairs();
        if pairs.is_empty() {
            return self.name.to_string();
        }
        let body: Vec<String> = pairs
            .iter()
            .map(|(k, v)| format!("{k}=\"{v}\""))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

/// Hard cap on distinct interned label values in the process-wide
/// interner. Campaign cells (catalog × seed matrix) stay far below this;
/// a long-running service feeding per-tenant values through
/// [`intern_label`] hits the cap instead of leaking without bound.
pub const INTERN_LABEL_CAP: usize = 4096;

/// The shared value returned for every distinct label past an interner's
/// cap: cardinality collapses instead of memory growing.
pub const INTERN_OVERFLOW_LABEL: &str = "__label_overflow";

/// A bounded `&'static str` interner: each distinct value is leaked once
/// (re-interning returns the identical pointer), but at most `cap` values
/// are ever admitted — the `cap+1`-th distinct value and every later one
/// map to the shared [`INTERN_OVERFLOW_LABEL`]. High-cardinality inputs
/// therefore lose per-value resolution, never stability or memory safety.
pub struct BoundedInterner {
    cap: usize,
    set: Mutex<BTreeSet<&'static str>>,
    overflows: std::sync::atomic::AtomicU64,
}

impl BoundedInterner {
    /// An empty interner admitting at most `cap` distinct values.
    pub const fn new(cap: usize) -> BoundedInterner {
        BoundedInterner {
            cap,
            set: Mutex::new(BTreeSet::new()),
            overflows: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Interns `value`: pointer-stable for values admitted under the cap,
    /// [`INTERN_OVERFLOW_LABEL`] (also pointer-stable) once the table is
    /// full and `value` is new.
    pub fn intern(&self, value: &str) -> &'static str {
        let mut set = self.set.lock().expect("label interner poisoned");
        if let Some(existing) = set.get(value) {
            return existing;
        }
        if set.len() >= self.cap {
            self.overflows
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return INTERN_OVERFLOW_LABEL;
        }
        let leaked: &'static str = Box::leak(value.to_string().into_boxed_str());
        set.insert(leaked);
        leaked
    }

    /// Distinct values currently held; never exceeds the cap.
    pub fn len(&self) -> usize {
        self.set.lock().expect("label interner poisoned").len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many intern calls were turned away to the overflow label.
    pub fn overflow_count(&self) -> u64 {
        self.overflows.load(std::sync::atomic::Ordering::Relaxed)
    }
}

static GLOBAL_INTERNER: BoundedInterner = BoundedInterner::new(INTERN_LABEL_CAP);

/// Interns a dynamic label value (e.g. a `plan:seed` campaign cell) into a
/// `&'static str` usable in a [`Key`], via a process-wide
/// [`BoundedInterner`] capped at [`INTERN_LABEL_CAP`]. Formerly this
/// leaked every distinct value forever — fatal for a long-running service
/// with tenant-supplied labels; the bound makes the worst case a fixed
/// table plus a shared overflow label.
pub fn intern_label(value: &str) -> &'static str {
    GLOBAL_INTERNER.intern(value)
}

/// The number of distinct label values held by the process-wide interner.
/// Monotone, and never exceeds [`INTERN_LABEL_CAP`].
pub fn interned_label_count() -> usize {
    GLOBAL_INTERNER.len()
}

/// A histogram over `u64` samples with caller-fixed bucket bounds.
///
/// Samples, counts and sums are all integers, so merging two histograms is
/// *exactly* equal to recording the concatenated sample streams — the
/// property the crate's proptests pin down.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct FixedHistogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl FixedHistogram {
    /// A histogram with the given strictly-increasing upper bounds; one
    /// extra implicit `+Inf` bucket catches everything beyond the last.
    pub fn new(bounds: &[u64]) -> FixedHistogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        FixedHistogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The bucket bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the `+Inf` bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The mean sample, if any were recorded.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Merges two snapshots taken with identical bounds. Returns `None`
    /// when the bounds differ (the histograms are not mergeable).
    pub fn merged(&self, other: &FixedHistogram) -> Option<FixedHistogram> {
        if self.bounds != other.bounds {
            return None;
        }
        let mut out = self.clone();
        for (c, o) in out.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        out.count += other.count;
        out.sum = out.sum.saturating_add(other.sum);
        Some(out)
    }
}

/// The registry: three metric kinds under [`Key`]s.
#[derive(Clone, Default, Debug)]
pub struct MetricsRegistry {
    counters: BTreeMap<Key, u64>,
    gauges: BTreeMap<Key, f64>,
    histograms: BTreeMap<Key, FixedHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to a counter, creating it at zero first.
    pub fn counter_add(&mut self, key: Key, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    /// Sets a gauge.
    pub fn gauge_set(&mut self, key: Key, value: f64) {
        self.gauges.insert(key, value);
    }

    /// Records into a histogram with [`DEFAULT_TIME_BOUNDS_US`] buckets.
    pub fn observe(&mut self, key: Key, value: u64) {
        self.observe_with(key, value, DEFAULT_TIME_BOUNDS_US);
    }

    /// Records into a histogram created with the given bounds on first use.
    pub fn observe_with(&mut self, key: Key, value: u64, bounds: &[u64]) {
        self.histograms
            .entry(key)
            .or_insert_with(|| FixedHistogram::new(bounds))
            .record(value);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, key: Key) -> u64 {
        self.counters.get(&key).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, key: Key) -> Option<f64> {
        self.gauges.get(&key).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, key: Key) -> Option<&FixedHistogram> {
        self.histograms.get(&key)
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The distinct dotted family prefixes present (`"ckpt"`, `"kv"`, …).
    pub fn families(&self) -> Vec<&'static str> {
        let mut fams: Vec<&'static str> = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.name.split('.').next().unwrap_or(k.name))
            .collect();
        fams.sort_unstable();
        fams.dedup();
        fams
    }

    /// Renders the Prometheus text exposition format (`# TYPE` comments,
    /// one sample per line, histograms as `_bucket`/`_sum`/`_count`).
    /// Dots in names become underscores to satisfy the metric-name grammar.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(String, &'static str)> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &'static str| {
            if last_type.as_ref().map(|(n, k)| (n.as_str(), *k)) != Some((name, kind)) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some((name.to_string(), kind));
            }
        };
        for (key, value) in &self.counters {
            let name = sanitize(key.name);
            type_line(&mut out, &name, "counter");
            let _ = writeln!(out, "{name}{} {value}", labels(key, None));
        }
        for (key, value) in &self.gauges {
            let name = sanitize(key.name);
            type_line(&mut out, &name, "gauge");
            let _ = writeln!(out, "{name}{} {value}", labels(key, None));
        }
        for (key, hist) in &self.histograms {
            let name = sanitize(key.name);
            type_line(&mut out, &name, "histogram");
            let mut cumulative = 0u64;
            for (i, c) in hist.bucket_counts().iter().enumerate() {
                cumulative += c;
                let le = hist
                    .bounds()
                    .get(i)
                    .map(|b| b.to_string())
                    .unwrap_or_else(|| "+Inf".to_string());
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    labels(key, Some(("le", &le)))
                );
            }
            let _ = writeln!(out, "{name}_sum{} {}", labels(key, None), hist.sum());
            let _ = writeln!(out, "{name}_count{} {}", labels(key, None), hist.count());
        }
        out
    }

    /// Renders the whole registry as a JSON object (hand-rolled, so the
    /// output is identical whether or not `serde_json` is available).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_map(
            &mut out,
            self.counters
                .iter()
                .map(|(k, v)| (k.display(), v.to_string())),
        );
        out.push_str("},\n  \"gauges\": {");
        push_map(
            &mut out,
            self.gauges
                .iter()
                .map(|(k, v)| (k.display(), format_f64(*v))),
        );
        out.push_str("},\n  \"histograms\": {");
        push_map(
            &mut out,
            self.histograms.iter().map(|(k, h)| {
                let mut body = format!(
                    "{{\"count\": {}, \"sum\": {}, \"buckets\": [",
                    h.count(),
                    h.sum()
                );
                for (i, c) in h.bucket_counts().iter().enumerate() {
                    if i > 0 {
                        body.push_str(", ");
                    }
                    match h.bounds().get(i) {
                        Some(b) => {
                            let _ = write!(body, "[{b}, {c}]");
                        }
                        None => {
                            let _ = write!(body, "[null, {c}]");
                        }
                    }
                }
                body.push_str("]}");
                (k.display(), body)
            }),
        );
        out.push_str("}\n}\n");
        out
    }
}

fn push_map(out: &mut String, entries: impl Iterator<Item = (String, String)>) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "\n    \"{}\": {v}", crate::export::escape_json(&k));
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{:.1}", v)
    } else {
        format!("{v}")
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn labels(key: &Key, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<(&str, &str)> = key
        .label_pairs()
        .into_iter()
        .map(|(k, v)| (k, v))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push((k, v));
    }
    if pairs.is_empty() {
        return String::new();
    }
    let body: Vec<String> = pairs.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add(Key::plain("kv.puts_total"), 1);
        m.counter_add(Key::plain("kv.puts_total"), 2);
        assert_eq!(m.counter(Key::plain("kv.puts_total")), 3);
        assert_eq!(m.counter(Key::plain("kv.gets_total")), 0);
    }

    #[test]
    fn labeled_keys_are_distinct() {
        let mut m = MetricsRegistry::new();
        let local = Key::labeled("recovery.tier_total", "tier", "local_cpu");
        let remote = Key::labeled("recovery.tier_total", "tier", "remote_cpu");
        m.counter_add(local, 5);
        m.counter_add(remote, 1);
        assert_eq!(m.counter(local), 5);
        assert_eq!(m.counter(remote), 1);
    }

    #[test]
    fn histogram_buckets_and_inf() {
        let mut h = FixedHistogram::new(&[10, 100]);
        for v in [1, 9, 10, 11, 100, 5000] {
            h.record(v);
        }
        assert_eq!(h.bucket_counts(), &[3, 2, 1]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1 + 9 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn merged_equals_concatenated_stream() {
        let mut a = FixedHistogram::new(&[10, 100]);
        let mut b = FixedHistogram::new(&[10, 100]);
        let mut both = FixedHistogram::new(&[10, 100]);
        for v in [1u64, 50, 200] {
            a.record(v);
            both.record(v);
        }
        for v in [3u64, 99, 10_000] {
            b.record(v);
            both.record(v);
        }
        assert_eq!(a.merged(&b).unwrap(), both);
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let a = FixedHistogram::new(&[10]);
        let b = FixedHistogram::new(&[10, 100]);
        assert!(a.merged(&b).is_none());
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut m = MetricsRegistry::new();
        m.counter_add(Key::plain("ckpt.chunks_total"), 7);
        m.gauge_set(Key::plain("net.nic_busy_frac"), 0.25);
        m.observe_with(
            Key::labeled("recovery.retrieval_us", "tier", "remote_cpu"),
            42,
            &[10, 100],
        );
        let text = m.to_prometheus();
        assert!(text.contains("# TYPE ckpt_chunks_total counter"));
        assert!(text.contains("ckpt_chunks_total 7"));
        assert!(text.contains("net_nic_busy_frac 0.25"));
        assert!(text.contains("recovery_retrieval_us_bucket{tier=\"remote_cpu\",le=\"100\"} 1"));
        assert!(text.contains("recovery_retrieval_us_bucket{tier=\"remote_cpu\",le=\"+Inf\"} 1"));
        assert!(text.contains("recovery_retrieval_us_count{tier=\"remote_cpu\"} 1"));
        // Every line is a comment or "name[{labels}] value".
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn two_label_keys_render_everywhere() {
        let cell = intern_label("kill_mid_checkpoint:1");
        assert_eq!(cell, "kill_mid_checkpoint:1");
        // Interning the same value twice returns the same pointer.
        assert!(std::ptr::eq(cell, intern_label("kill_mid_checkpoint:1")));
        let key = Key::labeled2("chaos.replacement_retries", "class", "hardware", "cell", cell);
        assert_eq!(
            key.display(),
            "chaos.replacement_retries{class=\"hardware\",cell=\"kill_mid_checkpoint:1\"}"
        );
        let mut m = MetricsRegistry::new();
        m.counter_add(key, 3);
        m.observe_with(Key::labeled2("a.us", "x", "1", "y", "2"), 5, &[10]);
        let text = m.to_prometheus();
        assert!(text.contains(
            "chaos_replacement_retries{class=\"hardware\",cell=\"kill_mid_checkpoint:1\"} 3"
        ));
        assert!(text.contains("a_us_bucket{x=\"1\",y=\"2\",le=\"10\"} 1"));
        assert!(m.to_json().contains(
            "chaos.replacement_retries{class=\\\"hardware\\\",cell=\\\"kill_mid_checkpoint:1\\\"}"
        ));
    }

    #[test]
    fn interner_holds_bounded_memory_under_label_flood() {
        // Regression for the unbounded `Box::leak`-per-value interner: a
        // million distinct tenant labels must leave the table at its cap,
        // not a million leaked strings. (Pre-fix this loop leaked ~1M
        // strings and the len bound below had no ceiling to hold.)
        let interner = BoundedInterner::new(64);
        let stable = interner.intern("stable-pre-cap");
        let mut buf = String::new();
        for i in 0..1_000_000u32 {
            buf.clear();
            let _ = write!(buf, "tenant-{i}");
            let got = interner.intern(&buf);
            assert!(got == buf || got == INTERN_OVERFLOW_LABEL);
        }
        assert_eq!(interner.len(), 64, "table must stay at its cap");
        // Exactly (1M - 63) distinct post-cap values were turned away.
        assert_eq!(interner.overflow_count(), 1_000_000 - 63);
        // Values admitted under the cap stay pointer-stable after the flood…
        assert!(std::ptr::eq(stable, interner.intern("stable-pre-cap")));
        assert!(std::ptr::eq(
            interner.intern("tenant-0"),
            interner.intern("tenant-0")
        ));
        // …and every rejected value maps to one shared overflow label.
        let o1 = interner.intern("fresh-after-flood-a");
        let o2 = interner.intern("fresh-after-flood-b");
        assert_eq!(o1, INTERN_OVERFLOW_LABEL);
        assert!(std::ptr::eq(o1, o2));
    }

    #[test]
    fn global_interner_is_capped() {
        let before = interned_label_count();
        let a = intern_label("global-intern-cap-probe");
        assert!(std::ptr::eq(a, intern_label("global-intern-cap-probe")));
        assert!(interned_label_count() >= before);
        assert!(interned_label_count() <= INTERN_LABEL_CAP);
    }

    #[test]
    fn families_deduplicate_prefixes() {
        let mut m = MetricsRegistry::new();
        m.counter_add(Key::plain("kv.puts_total"), 1);
        m.counter_add(Key::plain("kv.gets_total"), 1);
        m.gauge_set(Key::plain("net.nic_busy_frac"), 0.5);
        assert_eq!(m.families(), vec!["kv", "net"]);
    }

    #[test]
    fn json_is_deterministic_and_ordered() {
        let mut m = MetricsRegistry::new();
        m.counter_add(Key::plain("z.last"), 1);
        m.counter_add(Key::plain("a.first"), 1);
        let j = m.to_json();
        assert!(j.find("a.first").unwrap() < j.find("z.last").unwrap());
        assert_eq!(j, m.clone().to_json());
    }
}
