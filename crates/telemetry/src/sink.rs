//! The cheap, cloneable handle the whole stack records through.
//!
//! [`TelemetrySink`] is either **disabled** (the default: a `None`, no
//! allocation whatsoever) or **enabled** (an `Arc<Mutex<_>>` around the
//! event log, metrics registry and span tracker). Every recording method
//! takes its payload through a closure that is *never evaluated* on a
//! disabled sink, so instrumented hot paths pay exactly one branch when
//! telemetry is off — the same contract as [`gemini_sim::TraceLog`].

use crate::event::{TelemetryEvent, TimedEvent};
use crate::metrics::{Key, MetricsRegistry};
use crate::spans::{SpanRecord, SpanTracker};
use gemini_sim::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Shared state behind an enabled sink.
#[derive(Debug, Default)]
struct Inner {
    events: Vec<TimedEvent>,
    metrics: MetricsRegistry,
    spans: SpanTracker,
}

/// A handle onto a span opened with [`TelemetrySink::span_begin`].
///
/// On a disabled sink the handle is inert; ending it is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct SpanHandle {
    id: Option<u64>,
}

impl SpanHandle {
    /// A handle that never refers to a real span.
    pub const INERT: SpanHandle = SpanHandle { id: None };
}

/// Records typed events, metrics and spans — or nothing at all.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "TelemetrySink(disabled)"),
            Some(inner) => {
                let g = inner.lock().expect("telemetry lock");
                write!(
                    f,
                    "TelemetrySink(enabled, {} events, {} spans)",
                    g.events.len(),
                    g.spans.closed().len()
                )
            }
        }
    }
}

impl TelemetrySink {
    /// A sink that records nothing and never evaluates payload closures.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    /// A sink that records everything.
    pub fn enabled() -> TelemetrySink {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&mut inner.lock().expect("telemetry lock")))
    }

    // ------------------------------------------------------------ events ----

    /// Records a typed event at `time`. The closure building the event is
    /// only evaluated on an enabled sink.
    pub fn event(&self, time: SimTime, make: impl FnOnce() -> TelemetryEvent) {
        self.with_inner(|inner| {
            inner.events.push(TimedEvent {
                time,
                event: make(),
            });
        });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.with_inner(|inner| inner.events.clone())
            .unwrap_or_default()
    }

    /// Events matching a predicate, in recording order.
    pub fn find(&self, mut pred: impl FnMut(&TelemetryEvent) -> bool) -> Vec<TimedEvent> {
        self.with_inner(|inner| {
            inner
                .events
                .iter()
                .filter(|te| pred(&te.event))
                .cloned()
                .collect()
        })
        .unwrap_or_default()
    }

    // ----------------------------------------------------------- metrics ----

    /// Increments a counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.with_inner(|inner| inner.metrics.counter_add(Key::plain(name), delta));
    }

    /// Increments a labeled counter.
    pub fn counter_add_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        value: &'static str,
        delta: u64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .counter_add(Key::labeled(name, label, value), delta)
        });
    }

    /// Sets a gauge. The closure producing the value is only evaluated on
    /// an enabled sink.
    pub fn gauge_set(&self, name: &'static str, value: impl FnOnce() -> f64) {
        self.with_inner(|inner| inner.metrics.gauge_set(Key::plain(name), value()));
    }

    /// Sets a labeled gauge.
    pub fn gauge_set_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        label_value: &'static str,
        value: impl FnOnce() -> f64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .gauge_set(Key::labeled(name, label, label_value), value())
        });
    }

    /// Records a microsecond sample into a time histogram (default bounds).
    pub fn observe_us(&self, name: &'static str, value: impl FnOnce() -> u64) {
        self.with_inner(|inner| inner.metrics.observe(Key::plain(name), value()));
    }

    /// Records a labeled microsecond sample.
    pub fn observe_us_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        label_value: &'static str,
        value: impl FnOnce() -> u64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .observe(Key::labeled(name, label, label_value), value())
        });
    }

    /// Runs a closure against the metrics registry (enabled sinks only).
    /// Escape hatch for custom bounds or direct reads.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.with_inner(|inner| f(&mut inner.metrics))
    }

    /// A snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.with_inner(|inner| inner.metrics.clone())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------- spans ----

    /// Opens a span at `start`; the name closure is only evaluated on an
    /// enabled sink.
    pub fn span_begin(
        &self,
        track: &'static str,
        name: impl FnOnce() -> String,
        start: SimTime,
    ) -> SpanHandle {
        SpanHandle {
            id: self.with_inner(|inner| inner.spans.begin(track, name(), start)),
        }
    }

    /// Closes a span opened with [`TelemetrySink::span_begin`].
    pub fn span_end(&self, handle: SpanHandle, end: SimTime) {
        if let Some(id) = handle.id {
            self.with_inner(|inner| inner.spans.end(id, end));
        }
    }

    /// Records an already-complete interval.
    pub fn span(
        &self,
        track: &'static str,
        name: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    ) {
        self.with_inner(|inner| inner.spans.complete(track, name(), start, end));
    }

    /// All closed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.with_inner(|inner| inner.spans.closed().to_vec())
            .unwrap_or_default()
    }

    // ----------------------------------------------------------- exports ----

    /// Chrome trace-event JSON covering all closed spans and events.
    pub fn export_chrome_trace(&self) -> String {
        self.with_inner(|inner| crate::export::chrome_trace(inner.spans.closed(), &inner.events))
            .unwrap_or_else(|| crate::export::chrome_trace(&[], &[]))
    }

    /// Prometheus text exposition of the metrics registry.
    pub fn export_prometheus(&self) -> String {
        self.with_inner(|inner| inner.metrics.to_prometheus())
            .unwrap_or_default()
    }

    /// Deterministic JSON snapshot of the metrics registry.
    pub fn export_metrics_json(&self) -> String {
        self.with_inner(|inner| inner.metrics.to_json())
            .unwrap_or_else(|| MetricsRegistry::new().to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn disabled_sink_records_nothing_and_never_evaluates_closures() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.event(t(1), || panic!("event closure evaluated on disabled sink"));
        sink.gauge_set("g", || panic!("gauge closure evaluated"));
        sink.observe_us("h", || panic!("observe closure evaluated"));
        let h = sink.span_begin("x", || panic!("span name closure evaluated"), t(0));
        sink.span_end(h, t(5));
        sink.span("x", || panic!("span closure evaluated"), t(0), t(1));
        sink.counter_add("c", 3);
        assert!(sink.events().is_empty());
        assert!(sink.spans().is_empty());
        assert!(sink.metrics_snapshot().is_empty());
        assert_eq!(sink.export_prometheus(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn enabled_sink_records_through_clones() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        clone.event(t(10), || TelemetryEvent::CkptCommitted { iteration: 7 });
        sink.counter_add("ckpt.rounds", 1);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(
            sink.metrics_snapshot()
                .counter(crate::metrics::Key::plain("ckpt.rounds")),
            1
        );
        assert!(matches!(
            sink.events()[0].event,
            TelemetryEvent::CkptCommitted { iteration: 7 }
        ));
    }

    #[test]
    fn find_filters_structurally() {
        let sink = TelemetrySink::enabled();
        sink.event(t(1), || TelemetryEvent::HeartbeatMissed { rank: 3 });
        sink.event(t(2), || TelemetryEvent::RetrievalFinished);
        sink.event(t(3), || TelemetryEvent::HeartbeatMissed { rank: 5 });
        let missed = sink.find(|e| matches!(e, TelemetryEvent::HeartbeatMissed { .. }));
        assert_eq!(missed.len(), 2);
        assert!(matches!(
            missed[1].event,
            TelemetryEvent::HeartbeatMissed { rank: 5 }
        ));
    }

    #[test]
    fn span_lifecycle_round_trips_into_chrome_trace() {
        let sink = TelemetrySink::enabled();
        let h = sink.span_begin("recovery", || "retrieval".to_string(), t(100));
        sink.span_end(h, t(400));
        sink.span("ckpt", || "flush".to_string(), t(50), t(90));
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        let doc = sink.export_chrome_trace();
        assert!(doc.contains("\"name\":\"retrieval\""));
        assert!(doc.contains("\"name\":\"flush\""));
    }

    #[test]
    fn disabled_exports_are_still_well_formed() {
        let sink = TelemetrySink::disabled();
        let doc = sink.export_chrome_trace();
        assert!(doc.contains("traceEvents"));
        assert!(sink.export_metrics_json().contains('{'));
    }
}
