//! The cheap, cloneable handle the whole stack records through.
//!
//! [`TelemetrySink`] is either **disabled** (the default: a `None`, no
//! allocation whatsoever) or **enabled** (an `Arc<Mutex<_>>` around the
//! event log, metrics registry and span tracker). Every recording method
//! takes its payload through a closure that is *never evaluated* on a
//! disabled sink, so instrumented hot paths pay exactly one branch when
//! telemetry is off — the same contract as [`gemini_sim::TraceLog`].

use crate::event::{TelemetryEvent, TimedEvent};
use crate::incident::{CausalEvent, FlightRecorder};
use crate::metrics::{Key, MetricsRegistry};
use crate::spans::{FlowPhase, FlowRecord, SpanRecord, SpanTracker};
use gemini_sim::SimTime;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Shared state behind an enabled sink.
#[derive(Debug, Default)]
struct Inner {
    events: Vec<TimedEvent>,
    metrics: MetricsRegistry,
    spans: SpanTracker,
    flows: Vec<FlowRecord>,
    flight: FlightRecorder,
}

/// A handle onto a span opened with [`TelemetrySink::span_begin`].
///
/// On a disabled sink the handle is inert; ending it is a no-op.
#[derive(Clone, Copy, Debug)]
pub struct SpanHandle {
    id: Option<u64>,
}

impl SpanHandle {
    /// A handle that never refers to a real span.
    pub const INERT: SpanHandle = SpanHandle { id: None };
}

/// Records typed events, metrics and spans — or nothing at all.
#[derive(Clone, Default)]
pub struct TelemetrySink {
    inner: Option<Arc<Mutex<Inner>>>,
}

impl fmt::Debug for TelemetrySink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => write!(f, "TelemetrySink(disabled)"),
            Some(inner) => {
                let g = inner.lock().expect("telemetry lock");
                write!(
                    f,
                    "TelemetrySink(enabled, {} events, {} spans)",
                    g.events.len(),
                    g.spans.closed().len()
                )
            }
        }
    }
}

impl TelemetrySink {
    /// A sink that records nothing and never evaluates payload closures.
    pub fn disabled() -> TelemetrySink {
        TelemetrySink { inner: None }
    }

    /// A sink that records everything.
    pub fn enabled() -> TelemetrySink {
        TelemetrySink {
            inner: Some(Arc::new(Mutex::new(Inner::default()))),
        }
    }

    /// Whether this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn with_inner<R>(&self, f: impl FnOnce(&mut Inner) -> R) -> Option<R> {
        self.inner
            .as_ref()
            .map(|inner| f(&mut inner.lock().expect("telemetry lock")))
    }

    // ------------------------------------------------------------ events ----

    /// Records a typed event at `time`. The closure building the event is
    /// only evaluated on an enabled sink.
    pub fn event(&self, time: SimTime, make: impl FnOnce() -> TelemetryEvent) {
        self.with_inner(|inner| {
            inner.events.push(TimedEvent {
                time,
                event: make(),
            });
        });
    }

    /// All recorded events, in recording order.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.with_inner(|inner| inner.events.clone())
            .unwrap_or_default()
    }

    /// Events matching a predicate, in recording order.
    pub fn find(&self, mut pred: impl FnMut(&TelemetryEvent) -> bool) -> Vec<TimedEvent> {
        self.with_inner(|inner| {
            inner
                .events
                .iter()
                .filter(|te| pred(&te.event))
                .cloned()
                .collect()
        })
        .unwrap_or_default()
    }

    // ----------------------------------------------------------- metrics ----

    /// Increments a counter.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        self.with_inner(|inner| inner.metrics.counter_add(Key::plain(name), delta));
    }

    /// Increments a labeled counter.
    pub fn counter_add_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        value: &'static str,
        delta: u64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .counter_add(Key::labeled(name, label, value), delta)
        });
    }

    /// Sets a gauge. The closure producing the value is only evaluated on
    /// an enabled sink.
    pub fn gauge_set(&self, name: &'static str, value: impl FnOnce() -> f64) {
        self.with_inner(|inner| inner.metrics.gauge_set(Key::plain(name), value()));
    }

    /// Sets a labeled gauge.
    pub fn gauge_set_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        label_value: &'static str,
        value: impl FnOnce() -> f64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .gauge_set(Key::labeled(name, label, label_value), value())
        });
    }

    /// Records a microsecond sample into a time histogram (default bounds).
    pub fn observe_us(&self, name: &'static str, value: impl FnOnce() -> u64) {
        self.with_inner(|inner| inner.metrics.observe(Key::plain(name), value()));
    }

    /// Records a labeled microsecond sample.
    pub fn observe_us_labeled(
        &self,
        name: &'static str,
        label: &'static str,
        label_value: &'static str,
        value: impl FnOnce() -> u64,
    ) {
        self.with_inner(|inner| {
            inner
                .metrics
                .observe(Key::labeled(name, label, label_value), value())
        });
    }

    /// Increments a counter under an arbitrary [`Key`] (use for two-label
    /// or interned-label keys).
    pub fn counter_add_key(&self, key: Key, delta: u64) {
        self.with_inner(|inner| inner.metrics.counter_add(key, delta));
    }

    /// Records a microsecond sample under an arbitrary [`Key`], with
    /// caller-chosen bucket bounds. The closure is only evaluated on an
    /// enabled sink.
    pub fn observe_us_key(&self, key: Key, bounds: &[u64], value: impl FnOnce() -> u64) {
        self.with_inner(|inner| inner.metrics.observe_with(key, value(), bounds));
    }

    /// Runs a closure against the metrics registry (enabled sinks only).
    /// Escape hatch for custom bounds or direct reads.
    pub fn with_metrics<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> Option<R> {
        self.with_inner(|inner| f(&mut inner.metrics))
    }

    /// A snapshot of the metrics registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsRegistry {
        self.with_inner(|inner| inner.metrics.clone())
            .unwrap_or_default()
    }

    // ------------------------------------------------------------- spans ----

    /// Opens a span at `start`; the name closure is only evaluated on an
    /// enabled sink.
    pub fn span_begin(
        &self,
        track: &'static str,
        name: impl FnOnce() -> String,
        start: SimTime,
    ) -> SpanHandle {
        SpanHandle {
            id: self.with_inner(|inner| inner.spans.begin(track, name(), start)),
        }
    }

    /// Closes a span opened with [`TelemetrySink::span_begin`].
    pub fn span_end(&self, handle: SpanHandle, end: SimTime) {
        if let Some(id) = handle.id {
            self.with_inner(|inner| inner.spans.end(id, end));
        }
    }

    /// Records an already-complete interval.
    pub fn span(
        &self,
        track: &'static str,
        name: impl FnOnce() -> String,
        start: SimTime,
        end: SimTime,
    ) {
        self.with_inner(|inner| inner.spans.complete(track, name(), start, end));
    }

    /// All closed spans, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.with_inner(|inner| inner.spans.closed().to_vec())
            .unwrap_or_default()
    }

    // ---------------------------------------- flows & flight recorder ----

    /// Records one hop of a flow arrow (rendered in `chrome://tracing` as
    /// an arrow chaining hops that share `id`). The name closure is only
    /// evaluated on an enabled sink.
    pub fn flow(
        &self,
        track: &'static str,
        name: impl FnOnce() -> String,
        id: u64,
        at: SimTime,
        phase: FlowPhase,
    ) {
        self.with_inner(|inner| {
            inner.flows.push(FlowRecord {
                track,
                name: name(),
                id,
                at,
                phase,
            });
        });
    }

    /// All recorded flow hops, in recording order.
    pub fn flows(&self) -> Vec<FlowRecord> {
        self.with_inner(|inner| inner.flows.clone())
            .unwrap_or_default()
    }

    /// Appends a causal event to the flight recorder's ring buffer. The
    /// closure building the event is only evaluated on an enabled sink.
    pub fn causal(&self, make: impl FnOnce() -> CausalEvent) {
        self.with_inner(|inner| inner.flight.push(make()));
    }

    /// The flight recorder's current contents, oldest first.
    pub fn causal_events(&self) -> Vec<CausalEvent> {
        self.with_inner(|inner| inner.flight.events())
            .unwrap_or_default()
    }

    /// Causal events evicted from the ring so far.
    pub fn causal_dropped(&self) -> u64 {
        self.with_inner(|inner| inner.flight.dropped())
            .unwrap_or(0)
    }

    // ----------------------------------------------------------- exports ----

    /// Chrome trace-event JSON covering all closed spans, instant events
    /// and flow arrows.
    pub fn export_chrome_trace(&self) -> String {
        self.with_inner(|inner| {
            crate::export::chrome_trace(inner.spans.closed(), &inner.events, &inner.flows)
        })
        .unwrap_or_else(|| crate::export::chrome_trace(&[], &[], &[]))
    }

    /// Prometheus text exposition of the metrics registry.
    pub fn export_prometheus(&self) -> String {
        self.with_inner(|inner| inner.metrics.to_prometheus())
            .unwrap_or_default()
    }

    /// Deterministic JSON snapshot of the metrics registry.
    pub fn export_metrics_json(&self) -> String {
        self.with_inner(|inner| inner.metrics.to_json())
            .unwrap_or_else(|| MetricsRegistry::new().to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn disabled_sink_records_nothing_and_never_evaluates_closures() {
        let sink = TelemetrySink::disabled();
        assert!(!sink.is_enabled());
        sink.event(t(1), || panic!("event closure evaluated on disabled sink"));
        sink.gauge_set("g", || panic!("gauge closure evaluated"));
        sink.observe_us("h", || panic!("observe closure evaluated"));
        let h = sink.span_begin("x", || panic!("span name closure evaluated"), t(0));
        sink.span_end(h, t(5));
        sink.span("x", || panic!("span closure evaluated"), t(0), t(1));
        sink.counter_add("c", 3);
        assert!(sink.events().is_empty());
        assert!(sink.spans().is_empty());
        assert!(sink.metrics_snapshot().is_empty());
        assert_eq!(sink.export_prometheus(), "");
    }

    #[test]
    fn default_is_disabled() {
        assert!(!TelemetrySink::default().is_enabled());
    }

    #[test]
    fn enabled_sink_records_through_clones() {
        let sink = TelemetrySink::enabled();
        let clone = sink.clone();
        clone.event(t(10), || TelemetryEvent::CkptCommitted { iteration: 7 });
        sink.counter_add("ckpt.rounds", 1);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(
            sink.metrics_snapshot()
                .counter(crate::metrics::Key::plain("ckpt.rounds")),
            1
        );
        assert!(matches!(
            sink.events()[0].event,
            TelemetryEvent::CkptCommitted { iteration: 7 }
        ));
    }

    #[test]
    fn find_filters_structurally() {
        let sink = TelemetrySink::enabled();
        sink.event(t(1), || TelemetryEvent::HeartbeatMissed { rank: 3 });
        sink.event(t(2), || TelemetryEvent::RetrievalFinished);
        sink.event(t(3), || TelemetryEvent::HeartbeatMissed { rank: 5 });
        let missed = sink.find(|e| matches!(e, TelemetryEvent::HeartbeatMissed { .. }));
        assert_eq!(missed.len(), 2);
        assert!(matches!(
            missed[1].event,
            TelemetryEvent::HeartbeatMissed { rank: 5 }
        ));
    }

    #[test]
    fn span_lifecycle_round_trips_into_chrome_trace() {
        let sink = TelemetrySink::enabled();
        let h = sink.span_begin("recovery", || "retrieval".to_string(), t(100));
        sink.span_end(h, t(400));
        sink.span("ckpt", || "flush".to_string(), t(50), t(90));
        let spans = sink.spans();
        assert_eq!(spans.len(), 2);
        let doc = sink.export_chrome_trace();
        assert!(doc.contains("\"name\":\"retrieval\""));
        assert!(doc.contains("\"name\":\"flush\""));
    }

    #[test]
    fn flows_and_causal_events_ride_the_sink() {
        use crate::incident::{CausalEvent, CausalKind};
        let sink = TelemetrySink::enabled();
        sink.flow(
            "incident",
            || "incident-0".to_string(),
            0,
            t(100),
            FlowPhase::Start,
        );
        sink.flow(
            "incident",
            || "incident-0".to_string(),
            0,
            t(200),
            FlowPhase::End,
        );
        sink.causal(|| CausalEvent {
            incident: Some(0),
            at: t(150),
            kind: CausalKind::RetrievalDone,
        });
        assert_eq!(sink.flows().len(), 2);
        assert_eq!(sink.causal_events().len(), 1);
        assert_eq!(sink.causal_dropped(), 0);
        let doc = sink.export_chrome_trace();
        assert!(doc.contains("\"ph\":\"s\""));
        assert!(doc.contains("\"ph\":\"f\""));

        let off = TelemetrySink::disabled();
        off.flow("incident", || panic!("flow closure evaluated"), 0, t(0), FlowPhase::Start);
        off.causal(|| panic!("causal closure evaluated"));
        assert!(off.flows().is_empty());
        assert!(off.causal_events().is_empty());
    }

    #[test]
    fn key_based_metrics_record_two_label_series() {
        let sink = TelemetrySink::enabled();
        let key = Key::labeled2("chaos.replacement_retries", "class", "hardware", "cell", "p:1");
        sink.counter_add_key(key, 2);
        sink.observe_us_key(Key::labeled("chaos.detection_latency_us", "plan", "p"), &[10], || 5);
        let m = sink.metrics_snapshot();
        assert_eq!(m.counter(key), 2);
        assert_eq!(
            m.histogram(Key::labeled("chaos.detection_latency_us", "plan", "p"))
                .unwrap()
                .count(),
            1
        );
    }

    #[test]
    fn disabled_exports_are_still_well_formed() {
        let sink = TelemetrySink::disabled();
        let doc = sink.export_chrome_trace();
        assert!(doc.contains("traceEvents"));
        assert!(sink.export_metrics_json().contains('{'));
    }
}
