//! Adapter plugging a [`TelemetrySink`] into the simulation engine.
//!
//! [`gemini_sim::Engine`] exposes an [`EngineProbe`] hook so external
//! observers can watch the event loop without the kernel depending on them.
//! [`EngineTelemetryProbe`] is that observer: it counts processed events
//! into `sim.events_processed` and, when the run ends, records the final
//! clock as `sim.run_end_us`.

use crate::sink::TelemetrySink;
use gemini_sim::{EngineProbe, SimTime};

/// Feeds engine-loop statistics into a [`TelemetrySink`].
#[derive(Clone, Debug)]
pub struct EngineTelemetryProbe {
    sink: TelemetrySink,
    batch: u64,
    since_flush: u64,
}

impl EngineTelemetryProbe {
    /// Creates a probe recording into `sink`. Event counts are flushed to
    /// the `sim.events_processed` counter in batches of `batch` (clamped to
    /// at least 1) to keep per-event overhead negligible.
    pub fn new(sink: TelemetrySink, batch: u64) -> EngineTelemetryProbe {
        EngineTelemetryProbe {
            sink,
            batch: batch.max(1),
            since_flush: 0,
        }
    }

    /// Boxes the probe for [`gemini_sim::Engine::with_probe`].
    pub fn boxed(sink: TelemetrySink, batch: u64) -> Box<EngineTelemetryProbe> {
        Box::new(EngineTelemetryProbe::new(sink, batch))
    }
}

impl EngineProbe for EngineTelemetryProbe {
    fn on_event(&mut self, _now: SimTime, _processed: u64) {
        self.since_flush += 1;
        if self.since_flush >= self.batch {
            self.sink
                .counter_add("sim.events_processed", self.since_flush);
            self.since_flush = 0;
        }
    }

    fn on_run_end(&mut self, now: SimTime, processed: u64) {
        if self.since_flush > 0 {
            self.sink
                .counter_add("sim.events_processed", self.since_flush);
            self.since_flush = 0;
        }
        self.sink
            .gauge_set("sim.run_end_us", || (now.as_nanos() / 1_000) as f64);
        self.sink.gauge_set("sim.total_events", || processed as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Key;

    #[test]
    fn probe_counts_events_and_records_run_end() {
        let sink = TelemetrySink::enabled();
        let mut probe = EngineTelemetryProbe::new(sink.clone(), 2);
        let t = SimTime::from_secs(1);
        probe.on_event(t, 1);
        // Below batch size: not yet flushed.
        assert_eq!(
            sink.metrics_snapshot()
                .counter(Key::plain("sim.events_processed")),
            0
        );
        probe.on_event(t, 2);
        assert_eq!(
            sink.metrics_snapshot()
                .counter(Key::plain("sim.events_processed")),
            2
        );
        probe.on_event(t, 3);
        probe.on_run_end(SimTime::from_secs(2), 3);
        let snap = sink.metrics_snapshot();
        assert_eq!(snap.counter(Key::plain("sim.events_processed")), 3);
        assert_eq!(snap.gauge(Key::plain("sim.total_events")), Some(3.0));
        assert_eq!(snap.gauge(Key::plain("sim.run_end_us")), Some(2_000_000.0));
    }

    #[test]
    fn disabled_sink_probe_is_harmless() {
        let sink = TelemetrySink::disabled();
        let mut probe = EngineTelemetryProbe::new(sink.clone(), 1);
        probe.on_event(SimTime::ZERO, 1);
        probe.on_run_end(SimTime::ZERO, 1);
        assert!(sink.metrics_snapshot().is_empty());
    }
}
