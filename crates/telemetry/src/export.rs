//! Exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`).
//!
//! The Chrome trace-event format is a JSON object with a `traceEvents`
//! array. We emit:
//!
//! * one `"M"` (metadata) event naming the process, plus one per track
//!   naming its thread;
//! * one `"X"` (complete) event per closed [`SpanRecord`], with `ts` and
//!   `dur` in **integer microseconds** (`as_nanos() / 1000`) so the output
//!   is deterministic and diff-friendly;
//! * one `"i"` (instant) event per [`TimedEvent`], carrying the typed
//!   event's `Debug` form under `args.message`;
//! * one `"s"`/`"t"`/`"f"` (flow) event per [`FlowRecord`] hop, so causal
//!   chains — e.g. a recovery incident's fault → detect → retrieve →
//!   resume path — render as arrows across tracks.
//!
//! Tracks map to Chrome "threads": pid is always 1 and each distinct track
//! gets a tid in first-use order (spans first, then events), so a given
//! simulation always yields byte-identical output.

use crate::event::TimedEvent;
use crate::spans::{FlowRecord, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes a string for embedding inside a JSON string literal (without the
/// surrounding quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Assigns tids to tracks in first-use order (spans, then instants, then
/// flow hops).
fn track_ids<'a>(
    spans: &'a [SpanRecord],
    events: &'a [TimedEvent],
    flows: &'a [FlowRecord],
) -> (Vec<&'a str>, BTreeMap<&'a str, usize>) {
    let mut order: Vec<&str> = Vec::new();
    let mut ids: BTreeMap<&str, usize> = BTreeMap::new();
    let intern = |track: &'a str, order: &mut Vec<&'a str>, ids: &mut BTreeMap<&'a str, usize>| {
        if !ids.contains_key(track) {
            ids.insert(track, order.len());
            order.push(track);
        }
    };
    for s in spans {
        intern(s.track, &mut order, &mut ids);
    }
    for e in events {
        intern(e.event.track(), &mut order, &mut ids);
    }
    for f in flows {
        intern(f.track, &mut order, &mut ids);
    }
    (order, ids)
}

/// Renders spans, instant events and flow arrows as a Chrome trace-event
/// JSON document.
pub fn chrome_trace(spans: &[SpanRecord], events: &[TimedEvent], flows: &[FlowRecord]) -> String {
    let (order, ids) = track_ids(spans, events, flows);
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, item: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str("\n  ");
        out.push_str(&item);
    };

    push(
        &mut out,
        &mut first,
        "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\
         \"args\":{\"name\":\"gemini-sim\"}}"
            .to_string(),
    );
    for (tid, track) in order.iter().enumerate() {
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(track)
            ),
        );
    }

    for s in spans {
        let tid = ids[s.track];
        let ts = s.start.as_nanos() / 1_000;
        let dur = s.duration().as_nanos() / 1_000;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"cat\":\"{}\",\"name\":\"{}\"}}",
                escape_json(s.track),
                escape_json(&s.name)
            ),
        );
    }

    for e in events {
        let tid = ids[e.event.track()];
        let ts = e.time.as_nanos() / 1_000;
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
                 \"cat\":\"{}\",\"name\":\"{}\",\
                 \"args\":{{\"message\":\"{}\"}}}}",
                escape_json(e.event.track()),
                escape_json(e.event.name()),
                escape_json(&format!("{:?}", e.event))
            ),
        );
    }

    for fl in flows {
        let tid = ids[fl.track];
        let ts = fl.at.as_nanos() / 1_000;
        // "f" (finish) hops carry `"bp":"e"` so the arrow binds to the
        // enclosing slice, matching what chrome://tracing expects.
        let bp = match fl.phase.ph() {
            "f" => ",\"bp\":\"e\"",
            _ => "",
        };
        push(
            &mut out,
            &mut first,
            format!(
                "{{\"ph\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"id\":{}{bp},\
                 \"cat\":\"{}\",\"name\":\"{}\"}}",
                fl.phase.ph(),
                fl.id,
                escape_json(fl.track),
                escape_json(&fl.name)
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TelemetryEvent;
    use gemini_sim::SimTime;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn chrome_trace_shape() {
        let spans = vec![SpanRecord {
            track: "ckpt",
            name: "flush".to_string(),
            start: t(100),
            end: t(250),
        }];
        let events = vec![TimedEvent {
            time: t(300),
            event: TelemetryEvent::CkptCommitted { iteration: 1 },
        }];
        let doc = chrome_trace(&spans, &events, &[]);
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"M\""));
        assert!(doc.contains("\"name\":\"gemini-sim\""));
        assert!(doc.contains("\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":100,\"dur\":150"));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"name\":\"ckpt.committed\""));
        assert!(doc.contains("CkptCommitted { iteration: 1 }"));
        assert!(doc.trim_end().ends_with("]}"));
    }

    #[test]
    fn distinct_tracks_get_distinct_tids() {
        let events = vec![
            TimedEvent {
                time: t(1),
                event: TelemetryEvent::HeartbeatMissed { rank: 0 },
            },
            TimedEvent {
                time: t(2),
                event: TelemetryEvent::RetrievalFinished,
            },
        ];
        let doc = chrome_trace(&[], &events, &[]);
        assert!(doc.contains("\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"kv\"}"));
        assert!(doc.contains("\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"recovery\"}"));
    }

    #[test]
    fn empty_inputs_still_form_valid_document() {
        let doc = chrome_trace(&[], &[], &[]);
        assert!(doc.contains("traceEvents"));
        assert!(doc.contains("process_name"));
    }

    #[test]
    fn flow_hops_render_as_arrows_with_shared_ids() {
        use crate::spans::{FlowPhase, FlowRecord};
        let flows = vec![
            FlowRecord {
                track: "incident",
                name: "incident-0".to_string(),
                id: 7,
                at: t(100),
                phase: FlowPhase::Start,
            },
            FlowRecord {
                track: "recovery",
                name: "incident-0".to_string(),
                id: 7,
                at: t(250),
                phase: FlowPhase::Step,
            },
            FlowRecord {
                track: "incident",
                name: "incident-0".to_string(),
                id: 7,
                at: t(400),
                phase: FlowPhase::End,
            },
        ];
        let doc = chrome_trace(&[], &[], &flows);
        assert!(doc.contains("\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":100,\"id\":7"));
        assert!(doc.contains("\"ph\":\"t\",\"pid\":1,\"tid\":1,\"ts\":250,\"id\":7"));
        assert!(doc.contains("\"ph\":\"f\",\"pid\":1,\"tid\":0,\"ts\":400,\"id\":7,\"bp\":\"e\""));
        // Flow tracks get thread-name metadata like any other track.
        assert!(doc.contains("\"args\":{\"name\":\"incident\"}"));
    }
}
