//! The typed event alphabet of the whole stack.
//!
//! One enum, one variant per noteworthy occurrence. Variants carry typed
//! fields (ranks, byte counts, tiers) so tests and tools can match on them
//! structurally. The legacy free-form `render()` shim (PR 1's bridge from
//! the `gemini_sim::TraceLog` era) has been removed: every consumer now
//! asserts on typed events.

use gemini_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A failure classification mirroring `gemini_cluster::FailureKind`
/// (redefined here so lower layers need not depend on the cluster crate).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum FailureClass {
    /// The machine is gone; its CPU memory is lost.
    Hardware,
    /// The process died; the machine and its CPU memory survive.
    Software,
}

impl fmt::Display for FailureClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailureClass::Hardware => write!(f, "Hardware"),
            FailureClass::Software => write!(f, "Software"),
        }
    }
}

/// The storage tier a recovering rank reads its checkpoint from
/// (telemetry-local mirror of `gemini_core::ckpt::StorageTier`).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Tier {
    /// The machine's own CPU memory.
    LocalCpu,
    /// A surviving peer's CPU memory.
    RemoteCpu,
    /// Remote persistent storage.
    Persistent,
}

impl Tier {
    /// Stable label for metric labels and rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::LocalCpu => "local_cpu",
            Tier::RemoteCpu => "remote_cpu",
            Tier::Persistent => "persistent",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Everything the instrumented stack can report.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum TelemetryEvent {
    /// A training iteration finished and its checkpoint committed.
    IterationComplete {
        /// The completed iteration.
        iteration: u64,
    },
    /// One checkpoint chunk finished its network transfer.
    CkptChunkSent {
        /// Chunk index within the iteration's sequence.
        chunk: usize,
        /// Chunk size in bytes.
        bytes: u64,
    },
    /// A checkpoint frame was staged into a host's CPU-memory vault.
    CkptFlushStaged {
        /// Receiving host.
        host: usize,
        /// Rank whose shard the frame holds.
        owner: usize,
        /// Frame size in bytes.
        bytes: u64,
    },
    /// A full checkpoint round became durable in CPU memory.
    CkptCommitted {
        /// The checkpointed iteration.
        iteration: u64,
    },
    /// A worker's health key lapsed past its TTL.
    HeartbeatMissed {
        /// The silent rank.
        rank: usize,
    },
    /// A lease expired in the KV store, deleting its keys.
    LeaseExpired {
        /// One of the deleted keys (empty if the lease held none).
        key: String,
    },
    /// A candidate won a leader election.
    LeaderElected {
        /// The election key.
        key: String,
        /// The winning candidate's identity.
        leader: String,
    },
    /// A failure was injected into the cluster.
    FailureInjected {
        /// The failed rank.
        rank: usize,
        /// Hardware or software.
        kind: FailureClass,
    },
    /// The root agent noticed lapsed health keys.
    FailureDetected {
        /// The ranks declared failed.
        ranks: Vec<usize>,
        /// Identity of the detecting root.
        by: String,
    },
    /// Alive agents started serializing their checkpoint replicas.
    SerializationStarted {
        /// Number of serializing ranks.
        ranks: usize,
    },
    /// Checkpoint serialization finished.
    SerializationFinished,
    /// A replacement machine was requested from the cloud operator.
    ReplacementRequested {
        /// The rank being replaced.
        rank: usize,
        /// Whether a standby machine serves the request.
        standby: bool,
        /// When the replacement will be ready.
        ready_at: SimTime,
    },
    /// The cloud operator provisioned a machine (rank-agnostic view).
    ReplacementProvisioned {
        /// Whether it came from the standby pool.
        standby: bool,
    },
    /// A replacement machine joined the cluster.
    MachineReplaced {
        /// The rank it serves.
        rank: usize,
    },
    /// A recovering rank was assigned its retrieval tier.
    RecoveryTierHit {
        /// The recovering rank.
        rank: usize,
        /// The tier it reads from.
        tier: Tier,
        /// The serving peer for [`Tier::RemoteCpu`].
        from: Option<usize>,
    },
    /// Checkpoint retrieval began per the recovery plan.
    RetrievalStarted {
        /// The recovery case (`Debug` form of `RecoveryCase`).
        case: String,
        /// The iteration all ranks roll back to.
        rollback_to: u64,
    },
    /// Checkpoint retrieval finished.
    RetrievalFinished,
    /// Training resumed after warm-up.
    TrainingResumed {
        /// The iteration training restarts from.
        iteration: u64,
    },
    /// A fluid flow was admitted to the network.
    FlowScheduled {
        /// Flow index.
        flow: usize,
        /// Bytes it moves.
        bytes: u64,
        /// Its max-min fair completion time.
        completes_in: SimDuration,
    },
    /// The chaos engine injected (or lifted) a fault.
    ChaosFault {
        /// Human-readable fault description (e.g. `"kill rank 3"`,
        /// `"kv outage start"`).
        fault: String,
    },
    /// A coordination operation failed and is backing off before retrying.
    RetryAttempt {
        /// What is being retried (e.g. `"replacement"`, `"kv.put"`).
        operation: String,
        /// 0-based attempt number that just failed.
        attempt: u32,
        /// How long the caller backs off before the next attempt.
        backoff: SimDuration,
    },
    /// The recovery planner could not use its preferred tier and degraded.
    RecoveryDegraded {
        /// Why (e.g. remote-CPU sources unreachable).
        reason: String,
    },
    /// The fault-tolerance policy engine applied a knob change.
    PolicyDecision {
        /// Commit an in-memory checkpoint every `k` iterations.
        ckpt_every_iters: u64,
        /// Persistent-checkpoint interval in seconds (`None` = never).
        persist_interval_secs: Option<u64>,
        /// Placement-group replica count the policy wants.
        replicas: u64,
        /// Retrieval-tier preference label (`cpu_first`/`persistent_first`).
        tier_preference: String,
        /// Why the knobs moved (stable, human-readable).
        reason: String,
    },
    /// The policy engine switched the active fault-tolerance scheme.
    SchemeSwitch {
        /// Scheme label being left (e.g. `"cpu_interleaved"`).
        from: String,
        /// Scheme label now active (e.g. `"sharded_hybrid"`).
        to: String,
        /// Why the scheme moved (stable, human-readable).
        reason: String,
    },
    /// Free-form annotation (escape hatch; prefer a typed variant).
    Note {
        /// The message.
        message: String,
    },
}

impl TelemetryEvent {
    /// A stable dotted name for grouping (Chrome trace event names).
    pub fn name(&self) -> &'static str {
        use TelemetryEvent as E;
        match self {
            E::IterationComplete { .. } => "training.iteration_complete",
            E::CkptChunkSent { .. } => "ckpt.chunk_sent",
            E::CkptFlushStaged { .. } => "ckpt.flush_staged",
            E::CkptCommitted { .. } => "ckpt.committed",
            E::HeartbeatMissed { .. } => "kv.heartbeat_missed",
            E::LeaseExpired { .. } => "kv.lease_expired",
            E::LeaderElected { .. } => "kv.leader_elected",
            E::FailureInjected { .. } => "failure.injected",
            E::FailureDetected { .. } => "failure.detected",
            E::SerializationStarted { .. } => "recovery.serialization_started",
            E::SerializationFinished => "recovery.serialization_finished",
            E::ReplacementRequested { .. } => "recovery.replacement_requested",
            E::ReplacementProvisioned { .. } => "cluster.replacement_provisioned",
            E::MachineReplaced { .. } => "cluster.machine_replaced",
            E::RecoveryTierHit { .. } => "recovery.tier_hit",
            E::RetrievalStarted { .. } => "recovery.retrieval_started",
            E::RetrievalFinished => "recovery.retrieval_finished",
            E::TrainingResumed { .. } => "training.resumed",
            E::FlowScheduled { .. } => "net.flow_scheduled",
            E::ChaosFault { .. } => "chaos.fault",
            E::RetryAttempt { .. } => "recovery.retry_attempt",
            E::RecoveryDegraded { .. } => "recovery.degraded",
            E::PolicyDecision { .. } => "policy.decision",
            E::SchemeSwitch { .. } => "policy.scheme_switch",
            E::Note { .. } => "note",
        }
    }

    /// The subsystem track the event belongs to (Chrome trace category).
    pub fn track(&self) -> &'static str {
        self.name().split('.').next().unwrap_or("note")
    }
}

/// An event stamped with the simulated time at which it occurred.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct TimedEvent {
    /// When the event occurred.
    pub time: SimTime,
    /// The event.
    pub event: TelemetryEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_decision_carries_its_track() {
        let e = TelemetryEvent::PolicyDecision {
            ckpt_every_iters: 1,
            persist_interval_secs: Some(480),
            replicas: 2,
            tier_preference: "cpu_first".to_string(),
            reason: "persist 10800s→480s".to_string(),
        };
        assert_eq!(e.name(), "policy.decision");
        assert_eq!(e.track(), "policy");
    }

    #[test]
    fn names_carry_their_track_prefix() {
        let e = TelemetryEvent::RetrievalFinished;
        assert_eq!(e.name(), "recovery.retrieval_finished");
        assert_eq!(e.track(), "recovery");
        let e = TelemetryEvent::HeartbeatMissed { rank: 1 };
        assert_eq!(e.track(), "kv");
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(Tier::LocalCpu.label(), "local_cpu");
        assert_eq!(Tier::RemoteCpu.label(), "remote_cpu");
        assert_eq!(Tier::Persistent.label(), "persistent");
    }
}
