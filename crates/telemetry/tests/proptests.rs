//! Property-based tests for the telemetry crate: histogram-merge
//! equivalence and well-formedness of the Prometheus text exposition.

use gemini_telemetry::{FixedHistogram, Key, MetricsRegistry};
use proptest::prelude::*;

/// Strictly-increasing bucket bounds.
fn bounds_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::btree_set(1u64..1_000_000, 1..8).prop_map(|s| s.into_iter().collect())
}

proptest! {
    /// Merging two histograms is exactly recording the concatenated sample
    /// stream — counts, sum and every bucket agree.
    #[test]
    fn histogram_merge_equals_concatenated_stream(
        bounds in bounds_strategy(),
        a in proptest::collection::vec(0u64..2_000_000, 0..60),
        b in proptest::collection::vec(0u64..2_000_000, 0..60),
    ) {
        let mut ha = FixedHistogram::new(&bounds);
        let mut hb = FixedHistogram::new(&bounds);
        let mut hboth = FixedHistogram::new(&bounds);
        for &v in &a {
            ha.record(v);
            hboth.record(v);
        }
        for &v in &b {
            hb.record(v);
            hboth.record(v);
        }
        let merged = ha.merged(&hb).expect("same bounds merge");
        prop_assert_eq!(&merged, &hboth);
        // Merge is symmetric.
        prop_assert_eq!(hb.merged(&ha).expect("same bounds merge"), hboth);
        // Invariants: total count equals the stream length, buckets sum to
        // the count.
        prop_assert_eq!(merged.count(), (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.bucket_counts().iter().sum::<u64>(), merged.count());
    }

    /// The Prometheus exposition stays line-by-line parseable for any mix
    /// of recorded metrics: every line is either a `# TYPE name kind`
    /// comment or `name[{labels}] value` with a numeric value, names use
    /// only legal characters, and every sample line's family was declared
    /// by a preceding TYPE comment.
    #[test]
    fn prometheus_exposition_parses_line_by_line(
        counters in proptest::collection::vec((0usize..4, 0u64..1_000), 0..12),
        gauges in proptest::collection::vec((0usize..4, -1e9f64..1e9), 0..12),
        samples in proptest::collection::vec((0usize..4, 0u64..10_000_000), 0..40),
    ) {
        const COUNTER_NAMES: [&str; 4] =
            ["ckpt.chunks", "kv.heartbeats", "net.transfers", "recovery.plans"];
        const GAUGE_NAMES: [&str; 4] = [
            "net.nic_busy_frac",
            "kv.alive_workers",
            "ckpt.remaining_idle_us",
            "sim.run_end_us",
        ];
        const HIST_KEYS: [Key; 4] = [
            Key {
                name: "recovery.retrieval_us",
                label: Some(("tier", "local_cpu")),
                label2: None,
            },
            Key {
                name: "recovery.retrieval_us",
                label: Some(("tier", "remote_cpu")),
                label2: Some(("cell", "kill_mid_checkpoint:1")),
            },
            Key {
                name: "ckpt.stall_us",
                label: None,
                label2: None,
            },
            Key {
                name: "net.transfer_queue_us",
                label: None,
                label2: None,
            },
        ];
        let mut m = MetricsRegistry::new();
        for (i, delta) in counters {
            m.counter_add(Key::plain(COUNTER_NAMES[i]), delta);
        }
        for (i, value) in gauges {
            m.gauge_set(Key::plain(GAUGE_NAMES[i]), value);
        }
        for (i, value) in samples {
            m.observe(HIST_KEYS[i], value);
        }

        let text = m.to_prometheus();
        let mut declared: Vec<String> = Vec::new();
        for line in text.lines() {
            prop_assert!(!line.is_empty(), "blank line in exposition");
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().expect("type name");
                let kind = it.next().expect("type kind");
                prop_assert!(it.next().is_none());
                prop_assert!(["counter", "gauge", "histogram"].contains(&kind));
                declared.push(name.to_string());
                continue;
            }
            // Sample line: name[{labels}] value.
            let (series, value) = line.rsplit_once(' ').expect("sample line");
            prop_assert!(
                value.parse::<f64>().is_ok(),
                "non-numeric value {value:?} in {line:?}"
            );
            let name = series.split('{').next().unwrap();
            prop_assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "illegal metric name {name:?}"
            );
            // The family (histogram suffixes stripped) must have been
            // declared by a TYPE line earlier in the text.
            let family = name
                .strip_suffix("_bucket")
                .or_else(|| name.strip_suffix("_sum"))
                .or_else(|| name.strip_suffix("_count"))
                .unwrap_or(name);
            prop_assert!(
                declared.iter().any(|d| d == family || d == name),
                "sample {name:?} has no preceding TYPE declaration"
            );
            // Labels, when present, are balanced and quoted.
            if let Some(idx) = series.find('{') {
                prop_assert!(series.ends_with('}'), "unbalanced labels in {series:?}");
                let body = &series[idx + 1..series.len() - 1];
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label pair");
                    prop_assert!(!k.is_empty());
                    prop_assert!(v.starts_with('"') && v.ends_with('"'), "{v:?}");
                }
            }
        }
        // Histogram invariant in the exposition: cumulative +Inf bucket
        // equals the series count.
        if m.histogram(HIST_KEYS[2]).is_some() {
            let h = m.histogram(HIST_KEYS[2]).unwrap();
            let needle = format!("ckpt_stall_us_count {}", h.count());
            prop_assert!(text.contains(&needle), "{needle:?} missing");
        }
    }

    /// JSON export round-trips deterministically: rendering twice (and
    /// rendering a clone) yields byte-identical output.
    #[test]
    fn json_export_is_deterministic(
        counters in proptest::collection::vec((0usize..3, 1u64..100), 0..10),
    ) {
        const NAMES: [&str; 3] = ["a.one", "b.two", "c.three"];
        let mut m = MetricsRegistry::new();
        for (i, delta) in counters {
            m.counter_add(Key::plain(NAMES[i]), delta);
        }
        let once = m.to_json();
        prop_assert_eq!(&once, &m.to_json());
        prop_assert_eq!(&once, &m.clone().to_json());
    }
}
