//! Property-based tests for the simulation kernel: timeline algebra,
//! statistics, random streams and the event loop.

use gemini_sim::{DetRng, Engine, Model, OnlineStats, SimDuration, SimTime, Span, Timeline};
use proptest::prelude::*;

fn span_strategy() -> impl Strategy<Value = Span> {
    (0u64..100_000, 0u64..10_000).prop_map(|(start, len)| {
        Span::new(SimTime::from_nanos(start), SimTime::from_nanos(start + len))
    })
}

fn timeline_strategy() -> impl Strategy<Value = (Vec<Span>, Timeline)> {
    proptest::collection::vec(span_strategy(), 0..40)
        .prop_map(|spans| (spans.clone(), Timeline::from_spans(spans)))
}

proptest! {
    #[test]
    fn timeline_always_normalized((_, tl) in timeline_strategy()) {
        prop_assert!(tl.check_invariants());
    }

    #[test]
    fn timeline_total_bounded_by_hull((spans, tl) in timeline_strategy()) {
        let hull: u64 = spans
            .iter()
            .map(|s| s.end.as_nanos())
            .max()
            .unwrap_or(0);
        prop_assert!(tl.total().as_nanos() <= hull);
        // Total is at least the longest single span.
        let longest = spans.iter().map(|s| s.len().as_nanos()).max().unwrap_or(0);
        prop_assert!(tl.total().as_nanos() >= longest);
    }

    #[test]
    fn gaps_and_busy_partition_the_window((_, tl) in timeline_strategy()) {
        let window = Span::new(SimTime::ZERO, SimTime::from_nanos(200_000));
        let gaps = Timeline::from_spans(tl.gaps(window));
        let busy_in_window = tl.intersection(&Timeline::from_spans([window]));
        // Disjoint...
        prop_assert!(gaps.overlap(&tl).is_zero());
        // ...and together they cover the whole window exactly.
        let covered = gaps.total() + busy_in_window.total();
        prop_assert_eq!(covered, window.len());
    }

    #[test]
    fn adding_a_covered_span_is_a_noop((spans, tl) in timeline_strategy()) {
        prop_assume!(!spans.is_empty());
        let mut tl2 = tl.clone();
        // Re-add the first original span: already covered.
        tl2.add(spans[0]);
        prop_assert_eq!(tl, tl2);
    }

    #[test]
    fn union_is_commutative_and_contains_both(
        (_, a) in timeline_strategy(),
        (_, b) in timeline_strategy(),
    ) {
        let ab = a.union(&b);
        let ba = b.union(&a);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.overlap(&a), a.total());
        prop_assert_eq!(ab.overlap(&b), b.total());
    }

    #[test]
    fn intersection_is_symmetric_and_bounded(
        (_, a) in timeline_strategy(),
        (_, b) in timeline_strategy(),
    ) {
        let i = a.intersection(&b);
        prop_assert_eq!(i.total(), b.intersection(&a).total());
        prop_assert!(i.total() <= a.total().min(b.total()));
        prop_assert!(i.check_invariants());
    }

    #[test]
    fn contains_agrees_with_spans((_, tl) in timeline_strategy(), t in 0u64..120_000) {
        let t = SimTime::from_nanos(t);
        let expected = tl.spans().iter().any(|s| s.contains(t));
        prop_assert_eq!(tl.contains(t), expected);
    }

    #[test]
    fn stats_merge_equals_sequential(xs in proptest::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut all = OnlineStats::new();
        for &x in &xs { all.push(x); }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..split] { a.push(x); }
        for &x in &xs[split..] { b.push(x); }
        a.merge(&b);
        prop_assert_eq!(a.count(), all.count());
        prop_assert!((a.mean() - all.mean()).abs() < 1e-6);
        prop_assert!((a.variance() - all.variance()).abs() / (all.variance() + 1.0) < 1e-6);
    }

    #[test]
    fn stats_mean_within_bounds(xs in proptest::collection::vec(-1e9f64..1e9, 1..100)) {
        let mut s = OnlineStats::new();
        for &x in &xs { s.push(x); }
        prop_assert!(s.mean() >= s.min() - 1e-9);
        prop_assert!(s.mean() <= s.max() + 1e-9);
    }

    #[test]
    fn rng_sample_distinct_properties(seed in any::<u64>(), n in 1usize..200, k in 0usize..50) {
        let mut rng = DetRng::new(seed);
        let sample = rng.sample_distinct(n, k);
        prop_assert_eq!(sample.len(), k.min(n));
        for w in sample.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(sample.iter().all(|&x| x < n));
    }

    #[test]
    fn rng_fork_deterministic(seed in any::<u64>(), label in "[a-z]{1,12}") {
        let root = DetRng::new(seed);
        let mut a = root.fork(&label);
        let mut b = root.fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn duration_arithmetic_saturates_not_wraps(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a.saturating_add(b));
        prop_assert_eq!((da - db).as_nanos(), a.saturating_sub(b));
        prop_assert_eq!(da.max(db).as_nanos(), a.max(b));
    }
}

/// The engine fires randomly scheduled events in non-decreasing time
/// order, ties by insertion order.
#[derive(Default)]
struct Collector {
    fired: Vec<(SimTime, usize)>,
}

impl Model for Collector {
    type Event = usize;
    fn handle(&mut self, ctx: &mut gemini_sim::Context<'_, usize>, event: usize) {
        self.fired.push((ctx.now(), event));
    }
}

proptest! {
    #[test]
    fn engine_fires_in_time_order(times in proptest::collection::vec(0u64..1_000, 1..100)) {
        let mut engine = Engine::new(0);
        for (i, &t) in times.iter().enumerate() {
            engine.prime_at(SimTime::from_nanos(t), i);
        }
        let mut m = Collector::default();
        engine.run(&mut m, None, 1_000_000);
        prop_assert_eq!(m.fired.len(), times.len());
        for w in m.fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                // Ties fire in insertion (index) order.
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }
}

// --- Floyd's-algorithm subset sampling (DetRng::sample_distinct family) ---

proptest! {
    /// Determinism: for any seed and (n, k), re-running from the same
    /// stream state yields the same subset — including the legacy seeds
    /// the unit tests use (11, 13, 42).
    #[test]
    fn sample_distinct_is_deterministic(seed in 0u64..1_000, n in 1usize..200, k in 0usize..200) {
        let a = DetRng::new(seed).sample_distinct(n, k);
        let b = DetRng::new(seed).sample_distinct(n, k);
        prop_assert_eq!(a, b);
    }

    /// The three encodings (allocating, scratch, bitmask) select identical
    /// subsets from identical stream states.
    #[test]
    fn sample_encodings_agree(seed in 0u64..1_000, n in 1usize..128, k in 0usize..128) {
        let list = DetRng::new(seed).sample_distinct(n, k);
        let mut scratch = vec![999usize; 4];
        DetRng::new(seed).sample_distinct_into(n, k, &mut scratch);
        prop_assert_eq!(&list, &scratch);
        let mask = DetRng::new(seed).sample_mask(n, k);
        let from_mask: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
        prop_assert_eq!(&list, &from_mask);
    }

    /// Structural invariants: k·min(n) distinct sorted elements below n.
    #[test]
    fn sample_distinct_invariants(seed in 0u64..1_000, n in 1usize..300, k in 0usize..300) {
        let s = DetRng::new(seed).sample_distinct(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        prop_assert!(s.iter().all(|&x| x < n));
        for w in s.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Distribution is unchanged by the Floyd rewrite: single-element
    /// inclusion frequency stays ≈ k/n (uniform subsets), checked with a
    /// coarse tolerance so the test is seed-robust.
    #[test]
    fn sample_distinct_is_uniform_enough(seed in 0u64..50) {
        let mut rng = DetRng::new(seed.wrapping_mul(0x9e3779b97f4a7c15));
        let (n, k, trials) = (8usize, 3usize, 4_000usize);
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            let mask = rng.sample_mask(n, k);
            for (i, c) in counts.iter_mut().enumerate() {
                if mask >> i & 1 == 1 { *c += 1; }
            }
        }
        let expected = trials as f64 * k as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64 - expected).abs() < expected * 0.12,
                "index {} count {} vs expected {}", i, c, expected
            );
        }
    }
}
