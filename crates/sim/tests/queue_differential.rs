//! Differential proptests: the timing-wheel engine backend must be
//! observationally **byte-identical** to the reference binary heap across
//! randomized schedule/cancel/run-resume interleavings — same pop order,
//! same final clock, same processed count, same trace output, same RNG
//! stream positions. This is the equivalence proof ISSUE 4 demands before
//! the wheel may carry every drill, chaos plan and DES campaign.

use gemini_sim::queue::EventQueue;
use gemini_sim::{
    Context, Engine, EventHandle, Model, QueueBackend, ReferenceHeapQueue, SimDuration, SimTime,
    TimingWheelQueue,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Raw queue differential: identical op scripts → identical pop streams.
// ---------------------------------------------------------------------------

/// One scripted queue operation.
#[derive(Clone, Debug)]
enum QueueOp {
    /// Schedule an event `dt` nanoseconds after the last popped time.
    Schedule { dt: u64 },
    /// Cancel the `back`-th most recently issued handle.
    Cancel { back: usize },
    /// Pop up to `n` events.
    Pop { n: usize },
}

fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![
        4 => (0u64..5_000).prop_map(|dt| QueueOp::Schedule { dt }),
        // Occasional far-future events exercise the coarse wheel levels.
        1 => (0u64..(1 << 45)).prop_map(|dt| QueueOp::Schedule { dt }),
        2 => (0usize..8).prop_map(|back| QueueOp::Cancel { back }),
        2 => (1usize..6).prop_map(|n| QueueOp::Pop { n }),
    ]
}

/// Replays `ops` against one queue backend, returning the full observable
/// history: every pop as `(time, seq, payload)` plus every cancel result.
fn replay<Q: EventQueue<u64>>(mut q: Q, ops: &[QueueOp]) -> (Vec<(u64, u64, u64)>, Vec<bool>) {
    let mut pops = Vec::new();
    let mut cancels = Vec::new();
    let mut handles: Vec<EventHandle> = Vec::new();
    let mut seq = 0u64;
    let mut last_time = 0u64;
    for op in ops {
        match *op {
            QueueOp::Schedule { dt } => {
                let at = SimTime::from_nanos(last_time.saturating_add(dt));
                let h = q.schedule(at, seq, seq * 31);
                handles.push(h);
                seq += 1;
            }
            QueueOp::Cancel { back } => {
                if back < handles.len() {
                    let h = handles[handles.len() - 1 - back];
                    cancels.push(q.cancel(h));
                }
            }
            QueueOp::Pop { n } => {
                for _ in 0..n {
                    match q.pop() {
                        Some((t, s, payload)) => {
                            last_time = t.as_nanos();
                            pops.push((t.as_nanos(), s, payload));
                        }
                        None => break,
                    }
                }
            }
        }
    }
    // Drain whatever is left so the comparison covers the full stream.
    while let Some((t, s, payload)) = q.pop() {
        pops.push((t.as_nanos(), s, payload));
    }
    (pops, cancels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The wheel and the heap agree on every pop and every cancel verdict
    /// for arbitrary schedule/cancel/pop interleavings.
    #[test]
    fn queues_are_observationally_identical(ops in proptest::collection::vec(queue_op(), 1..120)) {
        let (wheel_pops, wheel_cancels) = replay(TimingWheelQueue::new(), &ops);
        let (heap_pops, heap_cancels) = replay(ReferenceHeapQueue::new(), &ops);
        prop_assert_eq!(&wheel_pops, &heap_pops);
        prop_assert_eq!(&wheel_cancels, &heap_cancels);
        // The stream respects the (time, seq) total order.
        for w in wheel_pops.windows(2) {
            prop_assert!(w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 < w[1].1));
        }
    }

    /// Neither backend retains cancellation bookkeeping once drained.
    #[test]
    fn drained_queues_hold_no_residue(ops in proptest::collection::vec(queue_op(), 1..80)) {
        let mut wheel = TimingWheelQueue::new();
        let mut heap = ReferenceHeapQueue::new();
        let _ = replay(&mut wheel, &ops);
        let _ = replay(&mut heap, &ops);
        prop_assert_eq!(wheel.len(), 0);
        prop_assert_eq!(heap.len(), 0);
        prop_assert_eq!(wheel.cancelled_backlog(), 0);
        prop_assert_eq!(heap.cancelled_backlog(), 0);
    }
}

// ---------------------------------------------------------------------------
// Whole-engine differential: a scripted model under randomized run/resume
// segments must leave both backends in byte-identical states.
// ---------------------------------------------------------------------------

/// A reaction an event performs when it fires.
#[derive(Clone, Debug)]
enum Action {
    /// Schedule a follow-up event `dt` nanoseconds from now.
    Spawn { dt: u64 },
    /// Cancel the `back`-th most recently issued handle.
    CancelBack { back: usize },
    /// Draw from the engine RNG (stream positions must stay in lockstep).
    Draw,
}

fn action() -> impl Strategy<Value = Action> {
    prop_oneof![
        4 => (0u64..200_000).prop_map(|dt| Action::Spawn { dt }),
        1 => (0u64..(1 << 40)).prop_map(|dt| Action::Spawn { dt }),
        3 => (0usize..6).prop_map(|back| Action::CancelBack { back }),
        2 => Just(Action::Draw),
    ]
}

/// The scripted model: event `id` executes `reactions[id % reactions.len()]`.
struct Scripted {
    reactions: Vec<Vec<Action>>,
    /// Total events ever created (primed + spawned); also the next id.
    created: usize,
    /// Hard cap on created events so every script terminates.
    cap: usize,
    handles: Vec<EventHandle>,
    fired: Vec<(u64, usize)>,
    draws: Vec<u64>,
}

impl Model for Scripted {
    type Event = usize;

    fn handle(&mut self, ctx: &mut Context<'_, usize>, id: usize) {
        self.fired.push((ctx.now().as_nanos(), id));
        ctx.trace(|| format!("fire {id}"));
        let script = self.reactions[id % self.reactions.len()].clone();
        for act in script {
            match act {
                Action::Spawn { dt } => {
                    if self.created < self.cap {
                        let h = ctx.schedule_after(SimDuration::from_nanos(dt), self.created);
                        self.created += 1;
                        self.handles.push(h);
                    }
                }
                Action::CancelBack { back } => {
                    if back < self.handles.len() {
                        let h = self.handles[self.handles.len() - 1 - back];
                        ctx.cancel(h);
                    }
                }
                Action::Draw => {
                    self.draws.push(ctx.rng().unit().to_bits());
                }
            }
        }
    }
}

/// The observable outcome of one scripted multi-segment engine run.
#[derive(PartialEq, Debug)]
struct Outcome {
    fired: Vec<(u64, usize)>,
    draws: Vec<u64>,
    trace: String,
    /// After every segment: (now, processed, pending).
    segments: Vec<(u64, u64, usize)>,
}

fn drive(
    backend: QueueBackend,
    seed: u64,
    primes: &[u64],
    reactions: &[Vec<Action>],
    segments: &[(Option<u64>, u64)],
) -> Outcome {
    let mut engine = Engine::new_with_backend(seed, backend).with_trace();
    let mut model = Scripted {
        reactions: reactions.to_vec(),
        created: 0,
        cap: 400,
        handles: Vec::new(),
        fired: Vec::new(),
        draws: Vec::new(),
    };
    for &at in primes {
        let id = model.created;
        model.created += 1;
        let h = engine.prime_at(SimTime::from_nanos(at), id);
        model.handles.push(h);
    }
    let mut seg_obs = Vec::new();
    for &(until, budget) in segments {
        let end = engine.run(&mut model, until.map(SimTime::from_nanos), budget);
        seg_obs.push((end.as_nanos(), engine.processed(), engine.pending_events()));
    }
    // Final unbounded drain so every live event is accounted for.
    engine.run(&mut model, None, 1_000_000);
    seg_obs.push((
        engine.now().as_nanos(),
        engine.processed(),
        engine.pending_events(),
    ));
    Outcome {
        fired: model.fired,
        draws: model.draws,
        trace: engine.trace().render(),
        segments: seg_obs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Randomized schedule/cancel/run-resume interleavings leave both
    /// engine backends byte-identical: event order, clock, processed
    /// counts, RNG stream and trace export.
    #[test]
    fn engine_backends_are_byte_identical(
        seed in any::<u64>(),
        primes in proptest::collection::vec(0u64..1_000_000, 1..8),
        reactions in proptest::collection::vec(
            proptest::collection::vec(action(), 0..4),
            1..6,
        ),
        segments in proptest::collection::vec(
            ((0u64..2_000_000).prop_map(Some), 0u64..500),
            0..4,
        ),
    ) {
        // Ensure increasing until-limits so each segment can make progress.
        let mut segs: Vec<(Option<u64>, u64)> = Vec::new();
        let mut floor = 0u64;
        for (until, budget) in segments {
            let u = until.map(|u| {
                floor = floor.saturating_add(u);
                floor
            });
            segs.push((u, budget));
        }
        let wheel = drive(QueueBackend::TimingWheel, seed, &primes, &reactions, &segs);
        let heap = drive(QueueBackend::ReferenceHeap, seed, &primes, &reactions, &segs);
        prop_assert_eq!(&wheel.fired, &heap.fired);
        prop_assert_eq!(&wheel.draws, &heap.draws);
        prop_assert_eq!(&wheel.trace, &heap.trace);
        prop_assert_eq!(&wheel.segments, &heap.segments);
        // Events fire in (time, seq)-consistent order: times non-decreasing.
        for w in wheel.fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }
}
