//! Measurement primitives: counters, online moments and histograms.
//!
//! Used by the harness to accumulate wasted-time distributions, effective
//! training-time ratios, retrieval latencies etc. across simulated campaigns.

use serde::{Deserialize, Serialize};

/// A monotone event counter.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }
    /// Increments by `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current count.
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// Streaming mean/variance/min/max via Welford's algorithm.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard deviation normalized by the mean (the paper reports the
    /// profiled idle-span timeline has normalized stddev < 10%).
    pub fn normalized_stddev(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// Minimum observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64) * (other.n as f64) / n;
        self.n += other.n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A base-2 logarithmic histogram over non-negative values, with a linear
/// scale factor so callers can pick their resolution (e.g. microseconds).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    /// `buckets[i]` counts values `v` with `2^(i-1) <= v/scale < 2^i`
    /// (bucket 0 holds `v/scale < 1`).
    buckets: Vec<u64>,
    scale: f64,
    count: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram whose unit bucket boundary is `scale`.
    pub fn new(scale: f64) -> Self {
        Histogram {
            buckets: vec![0; 64],
            scale: if scale > 0.0 { scale } else { 1.0 },
            count: 0,
            sum: 0.0,
        }
    }

    /// Records a value (negatives clamp to bucket 0).
    pub fn record(&mut self, v: f64) {
        let normalized = (v / self.scale).max(0.0);
        let idx = if normalized < 1.0 {
            0
        } else {
            (normalized.log2().floor() as usize + 1).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v.max(0.0);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile: returns the upper bound of the bucket containing
    /// the `q`-quantile observation (q in `[0,1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.scale * 2f64.powi(i as i32);
            }
        }
        self.scale * 2f64.powi(self.buckets.len() as i32)
    }

    /// Raw bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn online_stats_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert!((s.normalized_stddev() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.normalized_stddev(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 3.0).collect();
        let mut all = OnlineStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.mean();
        a.merge(&OnlineStats::new());
        assert_eq!(a.mean(), before);
        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(1.0);
        for v in [0.5, 1.0, 2.0, 3.0, 4.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        // 0.5 -> bucket 0; 1.0 -> bucket 1; 2,3 -> bucket 2; 4 -> bucket 3;
        // 100 -> bucket 7.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[3], 1);
        assert_eq!(h.buckets()[7], 1);
        assert!(h.quantile(0.5) <= 4.0);
        assert!(h.quantile(1.0) >= 100.0);
    }

    #[test]
    fn histogram_mean() {
        let mut h = Histogram::new(1.0);
        h.record(2.0);
        h.record(4.0);
        assert!((h.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_negative_clamps() {
        let mut h = Histogram::new(1.0);
        h.record(-5.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.mean(), 0.0);
    }
}
