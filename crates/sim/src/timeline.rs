//! Busy/idle span algebra.
//!
//! A [`Timeline`] is a normalized (sorted, disjoint, coalesced) set of
//! half-open spans `[start, end)`. The training-iteration model produces the
//! network-busy timeline of one iteration; inverting it over the iteration
//! window yields the *idle timespans* `T = {t1, …, td}` that GEMINI's
//! checkpoint partition algorithm (paper §5.3, Algorithm 2) packs checkpoint
//! chunks into.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A half-open span of simulated time `[start, end)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Span {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl Span {
    /// Creates a span; `end` is clamped up to `start` so the span is never
    /// negative.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        Span {
            start,
            end: end.max(start),
        }
    }

    /// Creates a span from a start and a length.
    pub fn with_len(start: SimTime, len: SimDuration) -> Self {
        Span {
            start,
            end: start + len,
        }
    }

    /// The span's length.
    pub fn len(&self) -> SimDuration {
        self.end - self.start
    }

    /// Whether the span is empty.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `t` lies inside the span.
    pub fn contains(&self, t: SimTime) -> bool {
        self.start <= t && t < self.end
    }

    /// Whether two spans overlap (share any positive-length interval).
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// The intersection of two spans, if non-empty.
    pub fn intersect(&self, other: &Span) -> Option<Span> {
        let s = self.start.max(other.start);
        let e = self.end.min(other.end);
        (s < e).then(|| Span::new(s, e))
    }

    /// Translates the span later by `d`.
    pub fn shifted(&self, d: SimDuration) -> Span {
        Span {
            start: self.start + d,
            end: self.end + d,
        }
    }
}

/// A normalized set of disjoint spans.
#[derive(Clone, Default, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Timeline {
    spans: Vec<Span>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Builds a timeline from arbitrary spans, normalizing as it goes.
    pub fn from_spans(spans: impl IntoIterator<Item = Span>) -> Self {
        let mut t = Timeline::new();
        for s in spans {
            t.add(s);
        }
        t
    }

    /// Adds a span, merging it with any spans it touches or overlaps.
    pub fn add(&mut self, span: Span) {
        if span.is_empty() {
            return;
        }
        // Find insertion window of spans that touch [start, end].
        let lo = self.spans.partition_point(|s| s.end < span.start);
        let hi = self.spans.partition_point(|s| s.start <= span.end);
        if lo == hi {
            self.spans.insert(lo, span);
        } else {
            let merged = Span::new(
                self.spans[lo].start.min(span.start),
                self.spans[hi - 1].end.max(span.end),
            );
            self.spans.splice(lo..hi, std::iter::once(merged));
        }
    }

    /// The disjoint spans in ascending order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of disjoint spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the timeline has no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total covered duration.
    pub fn total(&self) -> SimDuration {
        self.spans
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.len())
    }

    /// Whether `t` is covered.
    pub fn contains(&self, t: SimTime) -> bool {
        let i = self.spans.partition_point(|s| s.end <= t);
        self.spans.get(i).is_some_and(|s| s.contains(t))
    }

    /// The complement of this timeline within `window`: the *gaps*. For a
    /// network-busy timeline this returns the idle timespans of the paper's
    /// Algorithm 2.
    pub fn gaps(&self, window: Span) -> Vec<Span> {
        let mut out = Vec::new();
        let mut cursor = window.start;
        for s in &self.spans {
            if s.end <= window.start {
                continue;
            }
            if s.start >= window.end {
                break;
            }
            if s.start > cursor {
                out.push(Span::new(cursor, s.start.min(window.end)));
            }
            cursor = cursor.max(s.end);
        }
        if cursor < window.end {
            out.push(Span::new(cursor, window.end));
        }
        out.retain(|s| !s.is_empty());
        out
    }

    /// Union with another timeline.
    pub fn union(&self, other: &Timeline) -> Timeline {
        let mut t = self.clone();
        for s in &other.spans {
            t.add(*s);
        }
        t
    }

    /// Intersection with another timeline.
    pub fn intersection(&self, other: &Timeline) -> Timeline {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            if let Some(x) = self.spans[i].intersect(&other.spans[j]) {
                out.push(x);
            }
            if self.spans[i].end <= other.spans[j].end {
                i += 1;
            } else {
                j += 1;
            }
        }
        Timeline { spans: out }
    }

    /// Total overlap duration with another timeline.
    pub fn overlap(&self, other: &Timeline) -> SimDuration {
        self.intersection(other).total()
    }

    /// Translates every span later by `d`.
    pub fn shifted(&self, d: SimDuration) -> Timeline {
        Timeline {
            spans: self.spans.iter().map(|s| s.shifted(d)).collect(),
        }
    }

    /// The earliest covered instant, if any.
    pub fn first_start(&self) -> Option<SimTime> {
        self.spans.first().map(|s| s.start)
    }

    /// The latest covered instant, if any.
    pub fn last_end(&self) -> Option<SimTime> {
        self.spans.last().map(|s| s.end)
    }

    /// Asserts the internal normalization invariant (used by property tests).
    pub fn check_invariants(&self) -> bool {
        self.spans.windows(2).all(|w| w[0].end < w[1].start)
            && self.spans.iter().all(|s| !s.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn span(a: u64, b: u64) -> Span {
        Span::new(secs(a), secs(b))
    }

    #[test]
    fn add_merges_overlapping() {
        let mut t = Timeline::new();
        t.add(span(0, 2));
        t.add(span(5, 7));
        t.add(span(1, 6));
        assert_eq!(t.spans(), &[span(0, 7)]);
        assert!(t.check_invariants());
    }

    #[test]
    fn add_merges_touching() {
        let mut t = Timeline::new();
        t.add(span(0, 2));
        t.add(span(2, 4));
        assert_eq!(t.spans(), &[span(0, 4)]);
    }

    #[test]
    fn add_keeps_disjoint_separate() {
        let mut t = Timeline::new();
        t.add(span(4, 6));
        t.add(span(0, 2));
        t.add(span(8, 9));
        assert_eq!(t.spans(), &[span(0, 2), span(4, 6), span(8, 9)]);
        assert_eq!(t.total(), SimDuration::from_secs(5));
    }

    #[test]
    fn empty_spans_ignored() {
        let mut t = Timeline::new();
        t.add(span(3, 3));
        assert!(t.is_empty());
    }

    #[test]
    fn gaps_are_the_complement() {
        let t = Timeline::from_spans([span(2, 4), span(6, 8)]);
        let g = t.gaps(span(0, 10));
        assert_eq!(g, vec![span(0, 2), span(4, 6), span(8, 10)]);
    }

    #[test]
    fn gaps_of_empty_timeline_is_window() {
        let t = Timeline::new();
        assert_eq!(t.gaps(span(1, 5)), vec![span(1, 5)]);
    }

    #[test]
    fn gaps_with_span_straddling_window_edges() {
        let t = Timeline::from_spans([span(0, 3), span(9, 12)]);
        assert_eq!(t.gaps(span(2, 10)), vec![span(3, 9)]);
    }

    #[test]
    fn gaps_when_fully_busy_is_empty() {
        let t = Timeline::from_spans([span(0, 10)]);
        assert!(t.gaps(span(2, 8)).is_empty());
    }

    #[test]
    fn contains_uses_half_open_semantics() {
        let t = Timeline::from_spans([span(1, 3)]);
        assert!(t.contains(secs(1)));
        assert!(t.contains(secs(2)));
        assert!(!t.contains(secs(3)));
        assert!(!t.contains(secs(0)));
    }

    #[test]
    fn intersection_and_overlap() {
        let a = Timeline::from_spans([span(0, 5), span(10, 15)]);
        let b = Timeline::from_spans([span(3, 12)]);
        let i = a.intersection(&b);
        assert_eq!(i.spans(), &[span(3, 5), span(10, 12)]);
        assert_eq!(a.overlap(&b), SimDuration::from_secs(4));
    }

    #[test]
    fn union_covers_both() {
        let a = Timeline::from_spans([span(0, 2)]);
        let b = Timeline::from_spans([span(1, 5)]);
        assert_eq!(a.union(&b).spans(), &[span(0, 5)]);
    }

    #[test]
    fn shifted_translates() {
        let a = Timeline::from_spans([span(0, 2)]);
        let s = a.shifted(SimDuration::from_secs(3));
        assert_eq!(s.spans(), &[span(3, 5)]);
    }

    #[test]
    fn span_intersect_empty_is_none() {
        assert!(span(0, 2).intersect(&span(2, 4)).is_none());
        assert_eq!(span(0, 3).intersect(&span(2, 4)), Some(span(2, 3)));
    }
}
