//! Deterministic, forkable random-number streams.
//!
//! Every stochastic element of the simulation (failure arrivals, replacement
//! delays, profiling jitter, Monte Carlo placement trials) draws from a
//! [`DetRng`]. Streams are derived from a root seed plus a textual label, so
//! adding a new consumer never perturbs the draws seen by existing ones — a
//! property the determinism integration tests rely on.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic random-number generator with labelled forking.
#[derive(Clone, Debug)]
pub struct DetRng {
    inner: ChaCha8Rng,
    seed: u64,
}

impl DetRng {
    /// Creates a root stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream from this stream's seed and a
    /// label. Forking is a pure function of `(seed, label)`: it does not
    /// consume state from `self`, so fork order is irrelevant.
    pub fn fork(&self, label: &str) -> DetRng {
        let child_seed = splitmix_combine(self.seed, fnv1a(label.as_bytes()));
        DetRng::new(child_seed)
    }

    /// Derives an independent child stream from an integer index (e.g. a
    /// machine id or trial number).
    pub fn fork_index(&self, index: u64) -> DetRng {
        let child_seed = splitmix_combine(self.seed, index ^ 0x9e37_79b9_7f4a_7c15);
        DetRng::new(child_seed)
    }

    /// A uniform draw in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// A uniform draw in `[lo, hi)`; returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            lo + (hi - lo) * self.unit()
        }
    }

    /// A uniform integer draw in `[lo, hi)`. Returns `lo` when the range is
    /// empty.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }

    /// An exponentially distributed draw with the given rate `λ` (events per
    /// unit). Returns `f64::INFINITY` when `λ <= 0`, i.e. the event never
    /// happens.
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        if lambda <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse CDF; `1 - unit()` avoids ln(0).
        -(1.0 - self.unit()).ln() / lambda
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Samples `k` distinct indices from `0..n` (a uniform random subset),
    /// returned in ascending order. Clamps `k` to `n`.
    ///
    /// Allocates the `k`-element result; the Monte Carlo hot loops use
    /// [`DetRng::sample_distinct_into`] (caller-provided scratch) or
    /// [`DetRng::sample_mask`] (a `u128` bitmask, zero allocation) instead.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.sample_distinct_into(n, k, &mut out);
        out
    }

    /// [`DetRng::sample_distinct`] into a caller-provided scratch vector —
    /// allocation-free once the scratch has warmed to capacity `k`.
    ///
    /// Uses Floyd's algorithm: for `j` in `n−k .. n`, draw `t ∈ [0, j]`
    /// and take `t` unless it was already taken, in which case take `j`.
    /// Exactly `k` uniform draws, each subset equally likely, and no
    /// lazily-materialized permutation (the previous implementation built a
    /// `HashMap` swap table per call; the old clamp-`k` path degenerated to
    /// materializing and sorting the whole range).
    pub fn sample_distinct_into(&mut self, n: usize, k: usize, out: &mut Vec<usize>) {
        let k = k.min(n);
        out.clear();
        out.reserve(k);
        for j in (n - k)..n {
            let t = self.uniform_u64(0, (j + 1) as u64) as usize;
            if out.contains(&t) {
                out.push(j);
            } else {
                out.push(t);
            }
        }
        out.sort_unstable();
    }

    /// Samples a uniform `k`-subset of `0..n` as a `u128` bitmask
    /// (requires `n ≤ 128`; clamps `k` to `n`). Zero heap allocation —
    /// the inner loop of the bitmask Monte Carlo recovery estimator.
    ///
    /// Consumes exactly the same draws as [`DetRng::sample_distinct_into`]
    /// for the same `(n, k)`, so the two select identical subsets from
    /// identical stream states (a property the sim proptests pin down).
    pub fn sample_mask(&mut self, n: usize, k: usize) -> u128 {
        debug_assert!(n <= 128, "sample_mask requires n <= 128, got {n}");
        let k = k.min(n);
        let mut mask: u128 = 0;
        for j in (n - k)..n {
            let t = self.uniform_u64(0, (j + 1) as u64) as usize;
            if mask >> t & 1 == 1 {
                mask |= 1u128 << j;
            } else {
                mask |= 1u128 << t;
            }
        }
        mask
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, (i + 1) as u64) as usize;
            items.swap(i, j);
        }
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// FNV-1a hash for labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// SplitMix64-style finalizer combining a seed with a label hash.
fn splitmix_combine(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_give_different_streams() {
        let root = DetRng::new(7);
        let mut a = root.fork("failures");
        let mut b = root.fork("profiling");
        let same = (0..32).all(|_| a.next_u64() == b.next_u64());
        assert!(!same);
    }

    #[test]
    fn fork_is_order_independent() {
        let root = DetRng::new(9);
        let mut a1 = root.fork("a");
        let _ = root.fork("b");
        let mut a2 = root.fork("a");
        for _ in 0..16 {
            assert_eq!(a1.next_u64(), a2.next_u64());
        }
    }

    #[test]
    fn unit_in_range() {
        let mut rng = DetRng::new(1);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut rng = DetRng::new(5);
        let lambda = 0.25;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn exponential_zero_rate_is_never() {
        let mut rng = DetRng::new(5);
        assert!(rng.exponential(0.0).is_infinite());
        assert!(rng.exponential(-1.0).is_infinite());
    }

    #[test]
    fn sample_distinct_is_distinct_and_sorted() {
        let mut rng = DetRng::new(11);
        for _ in 0..200 {
            let s = rng.sample_distinct(20, 5);
            assert_eq!(s.len(), 5);
            for w in s.windows(2) {
                assert!(w[0] < w[1]);
            }
            assert!(s.iter().all(|&x| x < 20));
        }
    }

    #[test]
    fn sample_distinct_clamps_k() {
        let mut rng = DetRng::new(11);
        let s = rng.sample_distinct(3, 10);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn sample_distinct_is_roughly_uniform() {
        let mut rng = DetRng::new(13);
        let mut counts = [0usize; 6];
        let trials = 30_000;
        for _ in 0..trials {
            for idx in rng.sample_distinct(6, 2) {
                counts[idx] += 1;
            }
        }
        let expected = trials as f64 * 2.0 / 6.0;
        for &c in &counts {
            assert!(
                (c as f64 - expected).abs() < expected * 0.05,
                "counts={counts:?}"
            );
        }
    }

    #[test]
    fn sample_mask_matches_sample_distinct() {
        // Same stream state, same (n, k) → same subset, both encodings.
        for seed in [1u64, 7, 42, 1234] {
            let mut a = DetRng::new(seed);
            let mut b = DetRng::new(seed);
            for (n, k) in [(16, 2), (128, 3), (5, 5), (10, 0), (1, 1)] {
                let list = a.sample_distinct(n, k);
                let mask = b.sample_mask(n, k);
                let from_mask: Vec<usize> = (0..n).filter(|&i| mask >> i & 1 == 1).collect();
                assert_eq!(list, from_mask, "seed={seed} n={n} k={k}");
                assert_eq!(mask.count_ones() as usize, k.min(n));
            }
        }
    }

    #[test]
    fn sample_distinct_into_reuses_scratch() {
        let mut rng = DetRng::new(23);
        let mut scratch = Vec::new();
        rng.sample_distinct_into(100, 10, &mut scratch);
        let cap = scratch.capacity();
        for _ in 0..50 {
            rng.sample_distinct_into(100, 10, &mut scratch);
            assert_eq!(scratch.len(), 10);
            assert_eq!(scratch.capacity(), cap, "scratch must not reallocate");
            for w in scratch.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn uniform_handles_empty_range() {
        let mut rng = DetRng::new(3);
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.uniform_u64(9, 9), 9);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(17);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
